#!/usr/bin/env python
"""Demonstrating the cold-region hypothesis on the Dryad channel workload.

The core claim of the paper (§3.4): in reasonably well-tested programs,
data races occur when a thread executes a *cold* region, so a sampler that
concentrates on each thread's first executions of each function finds most
races at a tiny sampling rate — and a sampler that logs everything *except*
cold regions (UCP) finds few races despite logging almost everything.

This example runs the §5.3 marked methodology on one execution of the
Dryad channel workload and prints, per planted race, which samplers caught
it — making the hypothesis visible race by race.

Run:  python examples/cold_region_hypothesis.py [scale]
"""

import sys

from repro import run_marked, workloads
from repro.core.samplers import SAMPLER_ORDER
from repro.detector import HappensBeforeDetector
from repro.eventlog.events import SyncEvent

SEED = 11


def main(scale: float) -> None:
    program = workloads.build("dryad", seed=SEED, scale=scale)
    marked = run_marked(program, list(SAMPLER_ORDER), seed=SEED)

    full = HappensBeforeDetector()
    full.feed_all(marked.log.events)
    full_races = full.report.static_races

    detected = {}
    for sampler in SAMPLER_ORDER:
        bit = marked.harness.sampler_bit(sampler)
        sub = HappensBeforeDetector()
        sub.feed_all(e for e in marked.log.events
                     if isinstance(e, SyncEvent) or (e.mask & (1 << bit)))
        detected[sampler] = sub.report.static_races & full_races

    print(f"{program.name}: {len(full_races)} static races under full "
          f"logging\n")
    width = max(len(r.name) for r in program.planted_races) + 2
    print("race site".ljust(width) + "kind".ljust(6)
          + "  ".join(s.ljust(6) for s in SAMPLER_ORDER))
    for race in program.planted_races:
        kind = "rare" if race.expect_rare else "freq"
        for key in race.keys:
            if key not in full_races:
                continue
            marks = "  ".join(
                ("yes" if key in detected[s] else ".").ljust(6)
                for s in SAMPLER_ORDER
            )
            print(f"{race.name.ljust(width)}{kind.ljust(6)}{marks}")

    print("\neffective sampling rates:")
    for sampler in SAMPLER_ORDER:
        esr = (marked.sampler_memory_count(sampler)
               / max(1, marked.log.memory_count))
        caught = len(detected[sampler])
        print(f"  {sampler:<7} logged {esr:6.2%} of memory ops, "
              f"found {caught}/{len(full_races)} races")
    print("\nNote how UCP logs nearly everything yet misses exactly the "
          "cold (rare) sites\nthat the thread-local samplers catch at a "
          "fraction of the cost.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
