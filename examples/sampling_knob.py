#!/usr/bin/env python
"""The sampling knob: trading overhead for race coverage on a web server.

The paper's closing argument is that sampling gives users "a knob in the
form of sampling rate, which the programmer can use to trade-off
performance for data-race coverage".  This example turns that knob on the
Apache-1 workload: it sweeps samplers from never-sampling through the
paper's thread-local adaptive default up to full logging, and prints the
coverage/overhead frontier.

Run:  python examples/sampling_knob.py [scale]
"""

import sys

from repro import LiteRace, run_baseline, workloads
from repro.core.samplers import thread_local_adaptive, thread_local_fixed

SEED = 7


def sweep(scale: float) -> None:
    program = workloads.build("apache-1", seed=SEED, scale=scale)
    planted = {key for race in program.planted_races for key in race.keys}
    baseline = run_baseline(program, seed=SEED)
    print(f"workload: {program.name}  "
          f"({baseline.memory_ops:,} memory ops, "
          f"{len(planted)} known races)\n")

    knob = [
        ("Never (no sampling)", "Never"),
        ("TL-Ad floor 0.01%", thread_local_adaptive(
            schedule=(1.0, 0.1, 0.01, 0.001, 0.0001))),
        ("TL-Ad (paper default)", "TL-Ad"),
        ("TL-Fx 5%", "TL-Fx"),
        ("TL-Fx 25%", thread_local_fixed(rate=0.25)),
        ("Full logging", "Full"),
    ]
    header = f"{'setting':<24} {'ESR':>7} {'slowdown':>9} {'races found':>12}"
    print(header)
    print("-" * len(header))
    for label, sampler in knob:
        result = LiteRace(sampler=sampler, seed=SEED).run(program)
        found = len(planted & result.report.static_races)
        slowdown = result.run.clock / baseline.baseline_time
        print(f"{label:<24} {result.effective_sampling_rate:>6.1%} "
              f"{slowdown:>8.2f}x {found:>6}/{len(planted)}")
    print("\nPick the row whose overhead you can afford; coverage follows.")


if __name__ == "__main__":
    sweep(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
