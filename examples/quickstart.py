#!/usr/bin/env python
"""Quickstart: find a data race with LiteRace in ~30 lines.

Builds the paper's Figure 1 examples as TIR programs — two threads writing
a shared variable, once properly locked and once not — then runs the full
LiteRace pipeline (instrument, execute under a seeded scheduler, log,
offline happens-before analysis) on each.

Run:  python examples/quickstart.py
"""

from repro import LiteRace
from repro.workloads import two_thread_racer


def analyze(synchronized: bool) -> None:
    program = two_thread_racer(synchronized=synchronized)
    tool = LiteRace(sampler="TL-Ad", seed=42)
    result = tool.run(program)

    label = "properly locked" if synchronized else "unsynchronized"
    print(f"{program.name} ({label})")
    print(f"  memory ops logged : {result.run.sampled_memory_ops}"
          f" of {result.run.memory_ops}"
          f" ({result.effective_sampling_rate:.0%})")
    print(f"  sync ops logged   : {result.log.sync_count} (always all)")
    print(f"  slowdown          : {result.slowdown:.2f}x")
    if result.report.num_static == 0:
        print("  races             : none")
    for (pc1, pc2), count in result.report.occurrences.items():
        example = result.report.examples[(pc1, pc2)]
        print(f"  RACE at pcs ({pc1}, {pc2}) on address "
              f"{example.addr:#x} — threads {example.first_tid} and "
              f"{example.second_tid}, seen {count}x")
    print()


def main() -> None:
    print("LiteRace quickstart: the two programs of the paper's Figure 1\n")
    analyze(synchronized=True)   # left side: no race
    analyze(synchronized=False)  # right side: a write-write race


if __name__ == "__main__":
    main()
