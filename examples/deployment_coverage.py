#!/usr/bin/env python
"""Coverage accumulates across deployments (§3.1).

The paper's argument for accepting false negatives: "a sampling-based
detector, with its low overhead, would encourage users to widely deploy it
on many more executions of the program, possibly achieving better
coverage."  This example simulates that deployment story: the same
application runs many times (different seeds — different interleavings and
sampling decisions), each run under the cheap TL-Ad sampler, and the union
of detected races grows toward what a single (expensive) full-logging run
finds.

Run:  python examples/deployment_coverage.py [scale] [runs]
"""

import sys

from repro import LiteRace, workloads

WORKLOAD = "apache-1"


def main(scale: float, runs: int) -> None:
    program = workloads.build(WORKLOAD, seed=0, scale=scale)
    planted = {key for race in program.planted_races for key in race.keys}

    full = LiteRace(sampler="Full", seed=0).run(program)
    full_found = full.report.static_races & planted
    print(f"{WORKLOAD}: one full-logging run finds "
          f"{len(full_found)}/{len(planted)} races "
          f"at {full.slowdown:.2f}x overhead\n")

    print(f"{runs} cheap TL-Ad deployments instead:")
    accumulated = set()
    total_overhead = 0.0
    for seed in range(1, runs + 1):
        program = workloads.build(WORKLOAD, seed=seed, scale=scale)
        result = LiteRace(sampler="TL-Ad", seed=seed).run(program)
        new = (result.report.static_races & planted) - accumulated
        accumulated |= result.report.static_races & planted
        total_overhead += result.slowdown
        marker = f"  +{len(new)} new" if new else ""
        print(f"  run {seed:>2}: sampled "
              f"{result.effective_sampling_rate:5.2%}, "
              f"slowdown {result.slowdown:.2f}x, cumulative races "
              f"{len(accumulated)}/{len(planted)}{marker}")

    print(f"\nafter {runs} deployments: {len(accumulated)}/{len(planted)} "
          f"races at an average {total_overhead / runs:.2f}x per run —")
    print("coverage approaches full logging while every individual run "
          "stayed cheap enough to deploy.")


if __name__ == "__main__":
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(scale, runs)
