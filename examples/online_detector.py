#!/usr/bin/env python
"""Online race detection on a spare core (§4.4 / §7).

The paper's implementation writes logs to disk for offline analysis but
anticipates "an online detector that can avoid runtime slowdown by using an
idle core in a many-core processor".  This example plugs the streaming
:class:`~repro.detector.OnlineRaceDetector` directly into the profiling
harness as an event sink: races are detected *while the program runs*, no
log is retained, and we check whether one spare core's analysis budget
keeps up with the profiled application.

It also cross-checks the online result against the offline pipeline
(timestamp merge + happens-before) — they must agree exactly.

Run:  python examples/online_detector.py [scale]
"""

import sys

from repro import LiteRace, workloads
from repro.detector import OnlineRaceDetector

SEED = 5


def main(scale: float) -> None:
    program = workloads.build("firefox-render", seed=SEED, scale=scale)
    tool = LiteRace(sampler="TL-Ad", seed=SEED)

    online = OnlineRaceDetector()
    run, log = tool.profile(program, sink=online)

    offline_report, inconsistencies = tool.analyze_log(log)

    print(f"workload: {program.name}")
    print(f"  events streamed    : {online.events_consumed:,}")
    print(f"  races found online : {online.report.num_static}")
    print(f"  addresses tracked  : {online.addresses_tracked:,} "
          f"(the online detector's whole memory footprint)")
    print(f"  analysis cycles    : {online.analysis_cycles:,} vs "
          f"application {run.clock:,}")
    print(f"  one spare core keeps up: "
          f"{online.keeps_up_with(run.clock, spare_cores=1)}")

    # Which PC pair gets reported can differ between processing orders
    # (only the first race per address is guaranteed); the set of racy
    # addresses is order-independent and must agree exactly.
    agree = online.report.addresses == offline_report.addresses
    print(f"\n  offline (merge + HB) found {offline_report.num_static} "
          f"races, {inconsistencies} timestamp inconsistencies")
    print(f"  online and offline agree on racy addresses: {agree}")
    if not agree:
        raise SystemExit("online and offline detectors disagree!")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
