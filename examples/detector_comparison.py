#!/usr/bin/env python
"""Happens-before vs lockset detection: why the paper chose happens-before.

The paper (§2, §4.4) uses happens-before detection because it reports no
false positives and understands every synchronization paradigm, whereas
Eraser-style lockset detection predicts more races but (a) reports false
positives and (b) only understands mutual-exclusion locks.

This example builds three small programs and runs both detectors on the
same full log:

1. a genuine race            — both detectors report it;
2. event-synchronized code   — lockset falsely reports a race, because it
                               cannot see the notify/wait ordering;
3. a lock-protected counter  — neither reports anything.

Run:  python examples/detector_comparison.py
"""

from repro import LiteRace
from repro.detector import LocksetDetector, HappensBeforeDetector
from repro.tir import ProgramBuilder
from repro.workloads import two_thread_racer


def event_synced_program():
    """Producer/consumer ordered by an event — correctly synchronized."""
    b = ProgramBuilder("event-synced")
    data = b.global_addr("data")
    ready = b.global_addr("ready_event")

    with b.function("producer") as f:
        f.write(data)
        f.notify(ready)

    with b.function("consumer") as f:
        f.wait(ready)
        f.read(data)
        f.write(data)  # take ownership of the handed-off record

    with b.function("main", slots=2) as f:
        f.fork("producer", tid_slot=0)
        f.fork("consumer", tid_slot=1)
        f.join(0)
        f.join(1)
    return b.build(entry="main")


def locked_counter_program():
    b = ProgramBuilder("locked-counter")
    counter = b.global_addr("counter")
    lock = b.global_addr("lock")

    with b.function("bump") as f:
        with f.critical(lock):
            f.read(counter)
            f.write(counter)

    with b.function("worker") as f:
        with f.loop(10):
            f.call("bump")

    with b.function("main", slots=2) as f:
        f.fork("worker", tid_slot=0)
        f.fork("worker", tid_slot=1)
        f.join(0)
        f.join(1)
    return b.build(entry="main")


def compare(program) -> None:
    _, log = LiteRace(sampler="Full", seed=3).profile(program)
    hb = HappensBeforeDetector().feed_all(log.events).report
    ls = LocksetDetector().feed_all(log.events).report
    print(f"{program.name:<16} happens-before: {hb.num_static:>2} race(s)   "
          f"lockset: {ls.num_static:>2} race(s)")
    return hb.num_static, ls.num_static


def main() -> None:
    print("detector comparison on identical full logs\n")
    racy = compare(two_thread_racer(synchronized=False))
    evented = compare(event_synced_program())
    locked = compare(locked_counter_program())

    assert racy == (1, 1), "both should find the real race"
    assert evented[0] == 0 and evented[1] >= 1, \
        "lockset should false-positive on event synchronization"
    assert locked == (0, 0), "neither should flag the locked counter"
    print("\nlockset flags the event-synchronized program — a false "
          "positive.\nhappens-before stays precise, which is why LiteRace "
          "uses it (§3.2, §4.4).")


if __name__ == "__main__":
    main()
