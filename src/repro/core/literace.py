"""The LiteRace tool facade: instrument, run, log, analyze.

This module packages the pipeline of the paper into one object::

    from repro import LiteRace, workloads

    program = workloads.build("apache-1", seed=1)
    tool = LiteRace(sampler="TL-Ad", seed=1)
    result = tool.run(program)

    print(result.report.num_static, "static races")
    print(f"slowdown {result.run.slowdown:.2f}x, "
          f"log {result.log_mb_per_second:.1f} MB/s")

``run`` executes the instrumented program under a seeded scheduler, collects
the event log, reconstructs the processing order from per-thread streams
using the logical timestamps (as the offline detector must), and runs the
happens-before detector.  Helper entry points build the other
configurations of the evaluation: the uninstrumented baseline, full
logging, dispatch-check-only, and the §5.3 *marked* run that evaluates many
samplers on one interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, FrozenSet, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..staticpass import StaticReport

from ..detector.hb import HappensBeforeDetector
from ..detector.merge import merge_thread_logs
from ..detector.races import RaceReport
from ..eventlog.encode import encoded_size
from ..eventlog.log import EventLog
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.executor import Executor, RunResult
from ..runtime.scheduler import RandomInterleaver, Scheduler
from ..tir.program import Program
from .harness import MarkedHarness, ProfilingHarness
from .instrument import InstrumentedProgram, instrument
from .samplers import Sampler, make_sampler
from .tracker import TimestampTracker

__all__ = [
    "LiteRace",
    "AnalysisResult",
    "MarkedRun",
    "run_baseline",
    "run_marked",
]


def _as_sampler(sampler: Union[str, Sampler]) -> Sampler:
    return make_sampler(sampler) if isinstance(sampler, str) else sampler


@dataclass
class AnalysisResult:
    """Outcome of one profiled-and-analyzed execution."""

    run: RunResult
    log: EventLog
    report: RaceReport
    #: Sync events the offline merge had to force out of timestamp order
    #: (nonzero only with broken timestamping; see §4.2 / the ablation).
    merge_inconsistencies: int
    #: Wire size of the log in bytes.
    log_bytes: int
    cost_model: CostModel
    #: The static pass's verdicts when ``static_prune`` was on.
    static_report: Optional["StaticReport"] = None

    @property
    def slowdown(self) -> float:
        return self.run.slowdown

    @property
    def effective_sampling_rate(self) -> float:
        return self.run.effective_sampling_rate

    @property
    def log_mb_per_second(self) -> float:
        """Log production rate in MB/s of *baseline* execution time.

        Table 5 reports the data rate a tester must provision for; like the
        paper we normalize by how long the run takes, using virtual seconds
        from the cost model.
        """
        seconds = self.run.clock / self.cost_model.cycles_per_second
        if seconds <= 0:
            return 0.0
        return self.log_bytes / 1e6 / seconds


@dataclass
class MarkedRun:
    """Outcome of a §5.3 full-logging run with per-sampler marks."""

    run: RunResult
    log: EventLog
    harness: MarkedHarness

    def sampler_log(self, short_name: str) -> EventLog:
        """The sub-log the named sampler would have produced."""
        return self.log.filtered(self.harness.sampler_bit(short_name))

    def sampler_memory_count(self, short_name: str) -> int:
        return self.log.memory_logged_by(self.harness.sampler_bit(short_name))


class LiteRace:
    """The tool: a sampler plus the machinery to profile and analyze runs."""

    def __init__(
        self,
        sampler: Union[str, Sampler] = "TL-Ad",
        cost_model: CostModel = DEFAULT_COST_MODEL,
        num_counters: int = 128,
        atomic_timestamps: bool = True,
        alloc_as_sync: bool = True,
        log_sync: bool = True,
        seed: int = 0,
        static_prune: bool = False,
    ):
        self.sampler = _as_sampler(sampler)
        self.cost_model = cost_model
        self.num_counters = num_counters
        self.atomic_timestamps = atomic_timestamps
        self.alloc_as_sync = alloc_as_sync
        self.log_sync = log_sync
        self.seed = seed
        self.static_prune = static_prune

    # -- the static passes -------------------------------------------------
    def static_report(self, program: Program) -> Optional["StaticReport"]:
        """The race-freedom analysis result, when pruning is enabled."""
        if not self.static_prune:
            return None
        from ..staticpass import analyze
        return analyze(program)

    def _prune_set(self, program: Program,
                   report: Optional["StaticReport"]) -> FrozenSet[int]:
        if report is None:
            report = self.static_report(program)
        return report.prune_set() if report is not None else frozenset()

    def instrument(self, program: Program) -> InstrumentedProgram:
        """Apply the Figure-3 rewriting (clones + dispatch sites)."""
        return instrument(program, prune_pcs=self._prune_set(program, None))

    # -- profiling -----------------------------------------------------------
    def _make_tracker(self) -> TimestampTracker:
        return TimestampTracker(
            num_counters=self.num_counters,
            atomic=self.atomic_timestamps,
            seed=self.seed,
        )

    def profile(self, program: Program,
                scheduler: Optional[Scheduler] = None,
                sink=None,
                static_report: Optional["StaticReport"] = None
                ) -> Tuple[RunResult, EventLog]:
        """Execute under instrumentation; return measurements and the log."""
        harness = ProfilingHarness(
            self.sampler,
            cost_model=self.cost_model,
            tracker=self._make_tracker(),
            log_sync=self.log_sync,
            seed=self.seed,
            sink=sink,
        )
        executor = Executor(
            program,
            scheduler=scheduler or RandomInterleaver(self.seed),
            cost_model=self.cost_model,
            harness=harness,
            pruned_pcs=self._prune_set(program, static_report),
        )
        run = executor.run()
        return run, harness.log

    # -- offline analysis ---------------------------------------------------
    def analyze_log(self, log: EventLog) -> Tuple[RaceReport, int]:
        """Offline detection: timestamp-merge per-thread streams, then HB.

        Returns the race report and the number of timestamp inconsistencies
        the merge encountered (0 for correctly stamped logs).
        """
        merged = merge_thread_logs(log)
        detector = HappensBeforeDetector(alloc_as_sync=self.alloc_as_sync)
        detector.feed_all(merged.events)
        return detector.report, merged.inconsistencies

    # -- end to end -----------------------------------------------------------
    def run(self, program: Program,
            scheduler: Optional[Scheduler] = None,
            sink=None) -> AnalysisResult:
        """Profile ``program`` and analyze its log offline.

        ``sink`` is forwarded to :meth:`profile` — an online detector or a
        :class:`~repro.service.client.TelemetrySink` receives every logged
        event live, in addition to the offline analysis below.
        """
        static_report = self.static_report(program)
        run, log = self.profile(program, scheduler, sink=sink,
                                static_report=static_report)
        report, inconsistencies = self.analyze_log(log)
        return AnalysisResult(
            run=run,
            log=log,
            report=report,
            merge_inconsistencies=inconsistencies,
            log_bytes=encoded_size(log),
            cost_model=self.cost_model,
            static_report=static_report,
        )


def run_baseline(program: Program,
                 scheduler: Optional[Scheduler] = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 seed: int = 0) -> RunResult:
    """Execute ``program`` with no instrumentation at all (Figure 6 config 1)."""
    executor = Executor(
        program,
        scheduler=scheduler or RandomInterleaver(seed),
        cost_model=cost_model,
        harness=None,
    )
    return executor.run()


def run_marked(program: Program,
               samplers: Sequence[Union[str, Sampler]],
               scheduler: Optional[Scheduler] = None,
               cost_model: CostModel = DEFAULT_COST_MODEL,
               seed: int = 0) -> MarkedRun:
    """The §5.3 methodology: full logging + side-by-side sampler marking."""
    harness = MarkedHarness(
        [_as_sampler(s) for s in samplers],
        cost_model=cost_model,
        tracker=TimestampTracker(seed=seed),
        seed=seed,
    )
    executor = Executor(
        program,
        scheduler=scheduler or RandomInterleaver(seed),
        cost_model=cost_model,
        harness=harness,
    )
    run = executor.run()
    return MarkedRun(run=run, log=harness.log, harness=harness)
