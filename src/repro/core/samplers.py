"""The samplers of Table 3: LiteRace's thread-local adaptive bursty sampler
and the alternatives it is evaluated against.

A *sampler* is a policy; calling :meth:`Sampler.make_state` yields the
mutable per-run state consulted by the dispatch check at every function
entry.  ``should_sample(tid, func) -> bool`` decides which copy of the
function runs: ``True`` selects the instrumented copy (memory accesses are
logged), ``False`` the uninstrumented copy (only synchronization is logged).

The bursty samplers follow SWAT's structure (§3.4): when a code region is
chosen for sampling, it is sampled for ``burst_length`` *consecutive*
executions; between bursts, a gap of unsampled executions realizes the
current sampling rate.  Adaptive samplers decrease the rate after each
completed burst until it reaches a floor; LiteRace's key extension is
keeping this state **per thread** as well as per function, so a region that
is hot globally is still treated as cold the first time each new thread
executes it.

Paper's Table 3, reproduced by ``repro.experiments.table3``:

================  =============================================================
TL-Ad             adaptive back-off per function / per thread
                  (100%, 10%, 1%, 0.1%); bursty
TL-Fx             fixed 5% per function / per thread; bursty
G-Ad              adaptive back-off per function globally
                  (100%, 50%, 25%, ..., 0.1%); bursty
G-Fx              fixed 10% per function globally; bursty
Rnd10 / Rnd25     random 10% / 25% of dynamic calls, not bursty
UCP               "un-cold region": first 10 calls per function per thread
                  are NOT sampled, all remaining calls are
================  =============================================================
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Optional, Sequence, Tuple

__all__ = [
    "Sampler",
    "SamplerState",
    "BurstySampler",
    "RandomSampler",
    "UnColdRegionSampler",
    "FullSampler",
    "NeverSampler",
    "thread_local_adaptive",
    "thread_local_fixed",
    "global_adaptive",
    "global_fixed",
    "random_sampler",
    "un_cold_region",
    "make_sampler",
    "SAMPLER_ORDER",
    "BURST_LENGTH",
    "TL_AD_SCHEDULE",
    "G_AD_SCHEDULE",
]

#: Consecutive sampled executions per burst (§5.2: "ten consecutive
#: executions").
BURST_LENGTH = 10

#: TL-Ad back-off schedule (Table 3): 100%, 10%, 1%, floor 0.1%.
TL_AD_SCHEDULE: Tuple[float, ...] = (1.0, 0.1, 0.01, 0.001)

#: G-Ad back-off schedule (Table 3): 100%, 50%, 25%, ... halving to a 0.1%
#: floor.
G_AD_SCHEDULE: Tuple[float, ...] = (
    1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625,
    0.0078125, 0.00390625, 0.001953125, 0.001,
)


class SamplerState:
    """Mutable per-run dispatch state.  Subclasses implement the decision."""

    #: Cycles the dispatch check costs at each function entry (§4.1's
    #: "8 instructions with 3 memory references and 1 branch").
    dispatch_cost = 8

    def should_sample(self, tid: int, func: str) -> bool:
        raise NotImplementedError


class Sampler:
    """A sampling policy: immutable description plus a state factory."""

    def __init__(self, short_name: str, description: str,
                 state_factory: Callable[[int], SamplerState]):
        self.short_name = short_name
        self.description = description
        self._state_factory = state_factory

    def make_state(self, seed: int = 0) -> SamplerState:
        """Fresh per-run dispatch state (seed matters for random samplers)."""
        return self._state_factory(seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sampler({self.short_name!r})"


# ----------------------------------------------------------------------
# Bursty samplers (TL-Ad, TL-Fx, G-Ad, G-Fx)
# ----------------------------------------------------------------------
class _BurstRecord:
    """Counters for one sampling key — the thread-local buffer of §4.1.

    ``bursts_completed`` plays the role of the paper's *frequency counter*
    (it determines the current sampling rate); ``burst_remaining`` /
    ``gap_remaining`` realize the *sampling counter* (when to sample next).
    """

    __slots__ = ("burst_remaining", "gap_remaining", "bursts_completed")

    def __init__(self, burst_length: int):
        self.burst_remaining = burst_length  # start sampling immediately
        self.gap_remaining = 0
        self.bursts_completed = 0


def _gap_for_rate(rate: float, burst_length: int,
                  rng: Optional[random.Random] = None,
                  jitter: float = 0.25) -> int:
    """Unsampled executions between bursts so that sampled/total ≈ rate.

    The gap is jittered by ±``jitter`` (seeded, reproducible).  Without
    jitter the sampling pattern is exactly periodic, and loop trip counts
    that happen to be ≡ 0 (mod period) systematically align every thread's
    post-loop code with a burst — a sampling-bias artifact profilers avoid
    by randomizing the next-sample countdown (cf. Arnold & Ryder).
    """
    if rate >= 1.0:
        return 0
    gap = burst_length * (1.0 - rate) / rate
    if rng is not None and jitter > 0:
        gap *= 1.0 + rng.uniform(-jitter, jitter)
    return max(1, round(gap))


class BurstySampler(SamplerState):
    """Shared machinery for the four bursty samplers.

    ``thread_local=True`` keys state by (thread, function); ``False`` keys
    by function alone (the SWAT-style global sampler the paper compares
    against).  ``schedule`` maps completed-burst count to a sampling rate;
    fixed-rate samplers use a single-element schedule.
    """

    def __init__(self, schedule: Sequence[float], thread_local: bool,
                 burst_length: int = BURST_LENGTH, seed: int = 0,
                 jitter: float = 0.25):
        if not schedule:
            raise ValueError("schedule must not be empty")
        if any(not 0.0 < r <= 1.0 for r in schedule):
            raise ValueError("sampling rates must be in (0, 1]")
        self.schedule = tuple(schedule)
        self.thread_local = thread_local
        self.burst_length = burst_length
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._records: Dict[Hashable, _BurstRecord] = {}

    def _key(self, tid: int, func: str) -> Hashable:
        return (tid, func) if self.thread_local else func

    def _rate_after(self, bursts_completed: int) -> float:
        index = min(bursts_completed, len(self.schedule) - 1)
        return self.schedule[index]

    def current_rate(self, tid: int, func: str) -> float:
        """The sampling rate currently in force for this key (for tests)."""
        record = self._records.get(self._key(tid, func))
        if record is None:
            return self.schedule[0]
        return self._rate_after(record.bursts_completed)

    def should_sample(self, tid: int, func: str) -> bool:
        key = self._key(tid, func)
        record = self._records.get(key)
        if record is None:
            record = _BurstRecord(self.burst_length)
            self._records[key] = record
        if record.burst_remaining > 0:
            record.burst_remaining -= 1
            if record.burst_remaining == 0:
                record.bursts_completed += 1
                rate = self._rate_after(record.bursts_completed)
                gap = _gap_for_rate(rate, self.burst_length, self._rng,
                                    self.jitter)
                if gap == 0:
                    record.burst_remaining = self.burst_length
                else:
                    record.gap_remaining = gap
            return True
        record.gap_remaining -= 1
        if record.gap_remaining <= 0:
            record.burst_remaining = self.burst_length
        return False


# ----------------------------------------------------------------------
# Non-bursty samplers
# ----------------------------------------------------------------------
class RandomSampler(SamplerState):
    """Each dynamic call is sampled independently with probability ``rate``."""

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate
        self._rng = random.Random(seed)

    def should_sample(self, tid: int, func: str) -> bool:
        return self._rng.random() < self.rate


class UnColdRegionSampler(SamplerState):
    """Log everything *except* the cold region (§5.2's UCP control).

    The first ``skip`` calls of each function per thread are NOT sampled;
    every later call is.  Its poor detection rate despite logging ~99% of
    memory operations is the paper's direct validation of the cold-region
    hypothesis.
    """

    def __init__(self, skip: int = 10):
        self.skip = skip
        self._counts: Dict[Tuple[int, str], int] = {}

    def should_sample(self, tid: int, func: str) -> bool:
        key = (tid, func)
        seen = self._counts.get(key, 0) + 1
        self._counts[key] = seen
        return seen > self.skip


class FullSampler(SamplerState):
    """Always instrumented — the full-logging configuration of Table 5.

    The paper's full-logging build "did not have the overhead for any
    dispatch checks or cloned code", hence ``dispatch_cost = 0``.
    """

    dispatch_cost = 0

    def should_sample(self, tid: int, func: str) -> bool:
        return True


class NeverSampler(SamplerState):
    """Never instrumented, but the dispatch check still runs.

    This is Figure 6's "dispatch check only" configuration.
    """

    def should_sample(self, tid: int, func: str) -> bool:
        return False


# ----------------------------------------------------------------------
# Named constructors (Table 3)
# ----------------------------------------------------------------------
def thread_local_adaptive(schedule: Sequence[float] = TL_AD_SCHEDULE,
                          burst_length: int = BURST_LENGTH) -> Sampler:
    """TL-Ad: LiteRace's sampler — per-thread adaptive bursty back-off."""
    return Sampler(
        "TL-Ad",
        "Adaptive back-off per function / per thread "
        "(100%, 10%, 1%, 0.1%); bursty",
        lambda seed: BurstySampler(schedule, thread_local=True,
                                   burst_length=burst_length, seed=seed),
    )


def thread_local_fixed(rate: float = 0.05,
                       burst_length: int = BURST_LENGTH) -> Sampler:
    """TL-Fx: fixed-rate per-thread bursty sampler (default 5%)."""
    return Sampler(
        "TL-Fx",
        f"Fixed {rate:.0%} per function / per thread; bursty",
        lambda seed: BurstySampler((rate,), thread_local=True,
                                   burst_length=burst_length, seed=seed),
    )


def global_adaptive(schedule: Sequence[float] = G_AD_SCHEDULE,
                    burst_length: int = BURST_LENGTH) -> Sampler:
    """G-Ad: SWAT-style global adaptive bursty sampler."""
    return Sampler(
        "G-Ad",
        "Adaptive back-off per function globally "
        "(100%, 50%, 25%, ..., 0.1%); bursty",
        lambda seed: BurstySampler(schedule, thread_local=False,
                                   burst_length=burst_length, seed=seed),
    )


def global_fixed(rate: float = 0.10,
                 burst_length: int = BURST_LENGTH) -> Sampler:
    """G-Fx: fixed-rate global bursty sampler (default 10%)."""
    return Sampler(
        "G-Fx",
        f"Fixed {rate:.0%} per function globally; bursty",
        lambda seed: BurstySampler((rate,), thread_local=False,
                                   burst_length=burst_length, seed=seed),
    )


def random_sampler(rate: float) -> Sampler:
    """Rnd: sample each dynamic call independently (not bursty)."""
    return Sampler(
        f"Rnd{round(rate * 100)}",
        f"Random {rate:.0%} of dynamic calls chosen for sampling",
        lambda seed: RandomSampler(rate, seed),
    )


def un_cold_region(skip: int = 10) -> Sampler:
    """UCP: log all but the first ``skip`` calls per function per thread."""
    return Sampler(
        "UCP",
        f"First {skip} calls per function / per thread are NOT sampled, "
        "all remaining calls are sampled",
        lambda seed: UnColdRegionSampler(skip),
    )


def full_sampler() -> Sampler:
    """Full logging: every call instrumented, no dispatch checks."""
    return Sampler("Full", "Log all memory operations (no dispatch checks)",
                   lambda seed: FullSampler())


def never_sampler() -> Sampler:
    """Dispatch checks only: no call is ever instrumented."""
    return Sampler("Never", "Dispatch check only; nothing sampled",
                   lambda seed: NeverSampler())


#: Sampler display order used throughout the paper's figures.
SAMPLER_ORDER = ("TL-Ad", "TL-Fx", "G-Ad", "G-Fx", "Rnd10", "Rnd25", "UCP")

_FACTORIES: Dict[str, Callable[[], Sampler]] = {
    "TL-Ad": thread_local_adaptive,
    "TL-Fx": thread_local_fixed,
    "G-Ad": global_adaptive,
    "G-Fx": global_fixed,
    "Rnd10": lambda: random_sampler(0.10),
    "Rnd25": lambda: random_sampler(0.25),
    "UCP": un_cold_region,
    "Full": full_sampler,
    "Never": never_sampler,
}


def make_sampler(short_name: str) -> Sampler:
    """Build a sampler by its Table-3 short name (e.g. ``"TL-Ad"``)."""
    try:
        return _FACTORIES[short_name]()
    except KeyError:
        raise ValueError(
            f"unknown sampler {short_name!r}; known: {sorted(_FACTORIES)}"
        ) from None
