"""Race triage reports: turning a run's race report into developer output.

The paper's second design goal — no false positives — exists because "data
races are very difficult to debug and triage".  This module renders the
other half of that story: a readable triage document for one analyzed run,
with racing instructions symbolized to ``function+offset``, occurrence
counts, rare/frequent classification, example addresses and threads, and
the sampling context needed to judge coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.tables import format_percent, format_slowdown
from ..detector.races import RaceReport
from ..tir.program import Program
from .literace import AnalysisResult

__all__ = ["TriagedRace", "triage", "render_triage"]


@dataclass(frozen=True)
class TriagedRace:
    """One static race, symbolized and classified."""

    first: str
    second: str
    rare: bool
    occurrences: int
    example_addr: int
    threads: tuple
    kinds: str  # "write-write" or "read-write"

    def headline(self) -> str:
        kind = "rare" if self.rare else "frequent"
        return (f"{self.first} <-> {self.second} "
                f"[{self.kinds}, {kind}, {self.occurrences}x]")


def triage(program: Program, report: RaceReport,
           nonstack_memory_ops: int) -> List[TriagedRace]:
    """Symbolize and classify every static race, most frequent first."""
    rare, _ = report.classify(nonstack_memory_ops)
    races: List[TriagedRace] = []
    for pc1, pc2, count in report.summary_rows():
        example = report.examples[(pc1, pc2)]
        both_write = example.first_is_write and example.second_is_write
        races.append(TriagedRace(
            first=program.symbolize(pc1),
            second=program.symbolize(pc2),
            rare=(pc1, pc2) in rare,
            occurrences=count,
            example_addr=example.addr,
            threads=(example.first_tid, example.second_tid),
            kinds="write-write" if both_write else "read-write",
        ))
    return races


def render_triage(program: Program, result: AnalysisResult,
                  title: Optional[str] = None,
                  verdicts: Optional[Dict[Tuple[int, int], str]] = None
                  ) -> str:
    """A complete triage document for one LiteRace run.

    ``verdicts`` optionally maps race keys to validation verdict strings
    (:mod:`repro.validate`) — confirmed races are labeled as proven, with
    a replayable witness, instead of merely observed.
    """
    lines: List[str] = []
    heading = title or f"LiteRace triage report: {program.name}"
    lines.append(heading)
    lines.append("=" * len(heading))
    run = result.run
    lines.append(
        f"coverage : {run.sampled_memory_ops:,} of {run.memory_ops:,} "
        f"memory ops logged ({format_percent(result.effective_sampling_rate)}); "
        f"all {result.log.sync_count:,} synchronization ops logged"
    )
    lines.append(
        f"overhead : {format_slowdown(run.slowdown)} over the "
        f"uninstrumented baseline; log {result.log_bytes:,} bytes"
    )
    if result.merge_inconsistencies:
        lines.append(
            f"WARNING  : {result.merge_inconsistencies} timestamp "
            f"inconsistencies during order reconstruction — races below "
            f"may include false positives (see §4.2)"
        )
    races = triage(program, result.report, run.nonstack_memory_ops)
    keys = [(pc1, pc2) for pc1, pc2, _ in result.report.summary_rows()]
    if not races:
        lines.append("")
        lines.append("No data races detected.  (Sampling can miss races; "
                     "a clean report is not a proof of absence — rerun "
                     "with more tests or a higher sampling rate.)")
        return "\n".join(lines)

    lines.append("")
    lines.append(f"{len(races)} static data race(s), "
                 f"{result.report.num_dynamic} dynamic occurrence(s):")
    for index, (race, key) in enumerate(zip(races, keys), 1):
        lines.append(f"\n[{index}] {race.headline()}")
        lines.append(f"    example: address {race.example_addr:#x}, "
                     f"threads {race.threads[0]} and {race.threads[1]}")
        verdict = (verdicts or {}).get(key)
        if verdict == "confirmed":
            lines.append("    validated: CONFIRMED — directed scheduling "
                         "reproduced this race; witness schedule attached")
        elif verdict == "infeasible":
            lines.append("    validated: INFEASIBLE — ordering provably "
                         "blocked by synchronization; safe to suppress")
        elif verdict == "unconfirmed":
            lines.append("    validated: UNCONFIRMED — not reproduced "
                         "within the attempt budget")
        if race.rare:
            lines.append("    note: manifested rarely — exactly the class "
                         "of race sampling-based detection targets (§3.4)")
    return "\n".join(lines)
