"""Profiling harnesses: the glue between the executor and the event log.

A harness implements the :class:`repro.runtime.Harness` hook interface.  Two
are provided:

* :class:`ProfilingHarness` — a production run with one sampler: the
  dispatch check consults the sampler state, memory events from
  instrumented activations and *all* sync events are appended to the log,
  and every hook returns its cycle cost for the executor's Figure-6 buckets.
  An optional online sink (e.g. :class:`repro.detector.OnlineRaceDetector`)
  receives events as they are produced.

* :class:`MarkedHarness` — the §5.3 comparison methodology: full logging
  with the dispatch logic of *several* samplers executed side by side at
  every function entry, marking each memory event with the bitmask of
  samplers that would have logged it.  One marked run therefore yields, for
  every evaluated sampler, exactly the sub-log it would have produced on
  this precise interleaving — the only fair way to compare samplers, since
  two separate executions of a multithreaded program need not interleave
  identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..eventlog.events import SyncKind, SyncVar
from ..eventlog.log import EventLog
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL
from ..runtime.executor import Harness
from .samplers import Sampler, SamplerState
from .tracker import TimestampTracker

__all__ = ["ProfilingHarness", "MarkedHarness"]


class ProfilingHarness(Harness):
    """Single-sampler profiling: what a deployed LiteRace run does."""

    def __init__(
        self,
        sampler: Sampler,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        tracker: Optional[TimestampTracker] = None,
        log_sync: bool = True,
        seed: int = 0,
        sink=None,
    ):
        self.sampler = sampler
        self.state: SamplerState = sampler.make_state(seed)
        self.cost = cost_model
        self.tracker = tracker if tracker is not None else TimestampTracker()
        self.log_sync = log_sync
        self.log = EventLog()
        self.sink = sink

    def enter_function(self, tid: int, func_name: str) -> Tuple[bool, int]:
        decision = self.state.should_sample(tid, func_name)
        return decision, self.state.dispatch_cost

    def memory_event(self, tid: int, addr: int, pc: int, is_write: bool) -> int:
        event = self.log.append_memory(tid, addr, pc, is_write)
        if self.sink is not None:
            self.sink.feed(event)
        return self.cost.log_memory

    def sync_event(self, tid: int, kind: SyncKind, var: SyncVar, pc: int,
                   active_threads: int) -> int:
        if not self.log_sync:
            return 0
        may_tear = kind is SyncKind.ATOMIC
        timestamp = self.tracker.stamp(var, may_tear=may_tear)
        event = self.log.append_sync(tid, kind, var, timestamp, pc)
        if self.sink is not None:
            self.sink.feed(event)
        cycles = self.cost.log_sync
        cycles += self.cost.contention_cost(active_threads,
                                            self.tracker.num_counters)
        if may_tear and self.tracker.atomic:
            # The critical section wrapped around atomic machine ops (§4.2).
            cycles += self.cost.log_atomic_extra
        return cycles


class MarkedHarness(Harness):
    """Full logging plus side-by-side dispatch simulation of many samplers."""

    def __init__(
        self,
        samplers: Sequence[Sampler],
        cost_model: CostModel = DEFAULT_COST_MODEL,
        tracker: Optional[TimestampTracker] = None,
        seed: int = 0,
    ):
        if not samplers:
            raise ValueError("at least one sampler is required")
        self.samplers = list(samplers)
        self.states: List[SamplerState] = [
            sampler.make_state(seed + index)
            for index, sampler in enumerate(self.samplers)
        ]
        self.cost = cost_model
        self.tracker = tracker if tracker is not None else TimestampTracker()
        self.log = EventLog()
        self._mask_stacks: Dict[int, List[int]] = {}

    def sampler_bit(self, short_name: str) -> int:
        """The mask bit assigned to the sampler with this short name."""
        for index, sampler in enumerate(self.samplers):
            if sampler.short_name == short_name:
                return index
        raise KeyError(short_name)

    def enter_function(self, tid: int, func_name: str) -> Tuple[bool, int]:
        mask = 0
        for index, state in enumerate(self.states):
            if state.should_sample(tid, func_name):
                mask |= 1 << index
        self._mask_stacks.setdefault(tid, []).append(mask)
        # Full logging: always run the instrumented copy, and (like the
        # paper's full-logging build) charge no dispatch cost — marked runs
        # measure detection, not overhead.
        return True, 0

    def exit_function(self, tid: int) -> None:
        self._mask_stacks[tid].pop()

    def _current_mask(self, tid: int) -> int:
        stack = self._mask_stacks.get(tid)
        return stack[-1] if stack else 0

    def memory_event(self, tid: int, addr: int, pc: int, is_write: bool) -> int:
        self.log.append_memory(tid, addr, pc, is_write,
                               mask=self._current_mask(tid))
        return self.cost.log_memory

    def sync_event(self, tid: int, kind: SyncKind, var: SyncVar, pc: int,
                   active_threads: int) -> int:
        timestamp = self.tracker.stamp(var, may_tear=kind is SyncKind.ATOMIC)
        self.log.append_sync(tid, kind, var, timestamp, pc)
        return self.cost.log_sync
