"""The instrumentation pass: Figure 3 of the paper, for TIR instead of x86.

LiteRace statically rewrites each function into

* an **instrumented** copy that logs all memory operations and all
  synchronization operations,
* an **uninstrumented** copy that logs only synchronization operations, and
* a **dispatch check** at function entry that picks a copy using the
  per-thread sampling state.

:func:`instrument` performs the same transformation on a TIR program.  The
clones are real objects: each instruction in a clone is a structural copy
carrying the *same program counter* as its original, so a race detected
through either copy groups under the same static race.  At run time the
executor consults the dispatch harness at every call and interprets the
chosen clone.

:func:`split_loops` implements §7 (future work): functions dominated by
high-trip-count loops sample poorly at function granularity because one
dispatch decision covers millions of iterations.  Splitting extracts hot
loop bodies into synthetic functions so the dispatch check (and therefore
the adaptive back-off) applies per chunk of iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..tir import ops
from ..tir.addr import AddrExpr, Indexed, Param
from ..tir.ops import Instr
from ..tir.program import Function, Program

__all__ = [
    "FunctionVersions",
    "InstrumentedProgram",
    "instrument",
    "split_loops",
    "profile_loops",
    "split_hot_loops",
    "clone_function",
]


def _clone_instr(instr: Instr) -> Instr:
    """Structurally copy one instruction, preserving its program counter."""
    if isinstance(instr, ops.Read):
        copy = ops.Read(instr.addr)
    elif isinstance(instr, ops.Write):
        copy = ops.Write(instr.addr)
    elif isinstance(instr, ops.Compute):
        copy = ops.Compute(instr.n)
    elif isinstance(instr, ops.Io):
        copy = ops.Io(instr.duration)
    elif isinstance(instr, ops.Lock):
        copy = ops.Lock(instr.var, instr.via_cas)
    elif isinstance(instr, ops.Unlock):
        copy = ops.Unlock(instr.var, instr.via_cas)
    elif isinstance(instr, ops.Wait):
        copy = ops.Wait(instr.var, instr.consume)
    elif isinstance(instr, ops.Notify):
        copy = ops.Notify(instr.var)
    elif isinstance(instr, ops.Fork):
        copy = ops.Fork(instr.func, instr.args, instr.tid_slot)
    elif isinstance(instr, ops.Join):
        copy = ops.Join(instr.tid_slot)
    elif isinstance(instr, ops.AtomicRMW):
        copy = ops.AtomicRMW(instr.addr)
    elif isinstance(instr, ops.Alloc):
        copy = ops.Alloc(instr.size, instr.slot)
    elif isinstance(instr, ops.Free):
        copy = ops.Free(instr.slot)
    elif isinstance(instr, ops.Call):
        copy = ops.Call(instr.func, instr.args)
    elif isinstance(instr, ops.Loop):
        copy = ops.Loop(instr.count, tuple(_clone_instr(i) for i in instr.body))
    else:  # pragma: no cover - exhaustive over the instruction set
        raise TypeError(f"unknown instruction {instr!r}")
    copy.pc = instr.pc
    return copy


def clone_function(func: Function, suffix: str) -> Function:
    """A structural copy of ``func`` named ``func.name + suffix``.

    PCs are preserved so dynamic events from the clone attribute to the
    original instructions.
    """
    return Function(
        name=func.name + suffix,
        body=tuple(_clone_instr(instr) for instr in func.body),
        num_params=func.num_params,
        num_slots=func.num_slots,
    )


@dataclass
class FunctionVersions:
    """The two copies produced for one original function (Figure 3)."""

    original: Function
    #: Logs memory operations and synchronization operations.
    instrumented: Function
    #: Logs only synchronization operations.
    uninstrumented: Function


class InstrumentedProgram:
    """A program after the LiteRace rewriting pass.

    ``program`` remains the executable artifact (the executor picks the
    logging behaviour per activation via the dispatch harness, which is
    semantically identical to branching to a clone); ``versions`` holds the
    materialized clones for inspection and size accounting.
    """

    def __init__(self, program: Program,
                 versions: Dict[str, FunctionVersions],
                 pruned_pcs: Optional[FrozenSet[int]] = None):
        self.program = program
        self.versions = versions
        self.pruned_pcs = frozenset() if pruned_pcs is None \
            else frozenset(pruned_pcs)
        if self.pruned_pcs:
            memory_pcs = {
                instr.pc
                for func in program.functions.values()
                for instr in func.instructions()
                if isinstance(instr, ops.MEMORY_OPS)
            }
            bad = self.pruned_pcs - memory_pcs
            if bad:
                raise ValueError(
                    "prune set may only contain Read/Write PCs (sync ops "
                    "keep the happens-before graph complete and are never "
                    f"pruned); offending PCs: {sorted(bad)}"
                )

    @property
    def num_dispatch_sites(self) -> int:
        """One dispatch check is inserted per original function (§3.3)."""
        return len(self.versions)

    @property
    def num_pruned_sites(self) -> int:
        """Memory-op PCs whose logging the static pass removed."""
        return len(self.pruned_pcs)

    @property
    def original_static_size(self) -> int:
        return sum(v.original.static_size for v in self.versions.values())

    @property
    def rewritten_static_size(self) -> int:
        """Static size after rewriting: both clones plus dispatch stubs.

        Mirrors the binary-size growth of cloning every function; the
        dispatch stub counts as one unit per function.
        """
        return sum(
            v.instrumented.static_size + v.uninstrumented.static_size + 1
            for v in self.versions.values()
        )


def instrument(program: Program,
               prune_pcs: Optional[FrozenSet[int]] = None
               ) -> InstrumentedProgram:
    """Apply the LiteRace rewriting of Figure 3 to ``program``.

    ``prune_pcs`` (from :mod:`repro.staticpass`) lists Read/Write PCs whose
    logging calls are omitted from the instrumented clone because the static
    pass proved them race-free.  Synchronization operations are never
    prunable: the happens-before graph must stay complete for the
    no-false-positive guarantee to hold.
    """
    versions: Dict[str, FunctionVersions] = {}
    for name, func in program.functions.items():
        versions[name] = FunctionVersions(
            original=func,
            instrumented=clone_function(func, "$instr"),
            uninstrumented=clone_function(func, "$uninstr"),
        )
    return InstrumentedProgram(program, versions, pruned_pcs=prune_pcs)


# ----------------------------------------------------------------------
# §7: loop-granularity sampling
# ----------------------------------------------------------------------
def _rewrite_operand(operand, depth_from_split: int, extracted: List[AddrExpr]):
    """Rewrite an operand for extraction into a synthetic loop function.

    Operands that reference the split loop's induction variable (an
    ``Indexed`` whose depth reaches exactly the split loop) become ``Param``
    references; the original expression is appended to ``extracted`` and
    will be evaluated at the call site, where the loop index is in scope.
    Inner-loop references (depth smaller than the split distance) are kept.
    References *beyond* the split loop cannot be preserved and abort the
    split.
    """
    if isinstance(operand, Indexed):
        if not isinstance(operand.base, (int, Param)):
            raise _Unsplittable("nested address expression base")
        if operand.depth == depth_from_split:
            # The call site passes the chunk's base address; inside the
            # helper the same stride walks the helper's chunk loop, which
            # sits at the same nesting distance as the split loop did.
            extracted.append(operand)
            return Indexed(Param(len(extracted) - 1), operand.stride,
                           operand.depth)
        if operand.depth > depth_from_split:
            raise _Unsplittable("operand references a loop outside the split")
        inner_base = _rewrite_operand(operand.base, depth_from_split,
                                      extracted)
        return Indexed(inner_base, operand.stride, operand.depth)
    if isinstance(operand, Param):
        # The enclosing function's parameter is not visible in the synthetic
        # function; pass its value through.
        extracted.append(operand)
        return Param(len(extracted) - 1)
    return operand


class _Unsplittable(Exception):
    """This loop cannot be extracted into a synthetic function."""


def _rewrite_body(body: Tuple[Instr, ...], depth: int,
                  extracted: List[AddrExpr]) -> Tuple[Instr, ...]:
    rewritten: List[Instr] = []
    for instr in body:
        if isinstance(instr, (ops.Read, ops.Write, ops.AtomicRMW)):
            attr = "addr"
        elif isinstance(instr, (ops.Lock, ops.Unlock, ops.Wait, ops.Notify)):
            attr = "var"
        else:
            attr = None
        copy = _clone_instr(instr)
        if attr is not None:
            setattr(copy, attr,
                    _rewrite_operand(getattr(instr, attr), depth, extracted))
        elif isinstance(instr, ops.Loop):
            if not isinstance(instr.count, int):
                raise _Unsplittable("inner loop with dynamic trip count")
            copy = ops.Loop(
                instr.count, _rewrite_body(instr.body, depth + 1, extracted)
            )
            copy.pc = instr.pc
        elif isinstance(instr, (ops.Alloc, ops.Free, ops.Fork, ops.Join,
                                ops.Call)):
            # Slots are frame-local and calls may pass Params; extraction
            # would change their meaning.
            raise _Unsplittable(f"{type(instr).__name__} inside split loop")
        rewritten.append(copy)
    return tuple(rewritten)


def split_loops(program: Program, min_trip_count: int = 1000,
                chunk: int = 100, only_pcs=None) -> Program:
    """Rewrite high-trip-count loops for per-chunk dispatch (§7).

    Every statically-counted loop with ``count >= min_trip_count`` whose
    body is extractable becomes a loop over calls to a synthetic function
    executing ``chunk`` iterations, so the sampler's back-off applies inside
    a single invocation of the enclosing function.  Loops that cannot be
    extracted (frame-local state, dynamic trip counts, references to outer
    loops, or a trip count not divisible by ``chunk``) are left untouched.

    Returns a new finalized :class:`Program`; the input is not modified.
    """
    if min_trip_count < 1 or chunk < 1:
        raise ValueError("min_trip_count and chunk must be >= 1")
    new_functions: List[Function] = []
    synthetic: List[Function] = []
    counter = [0]

    def transform_block(owner: str, body: Tuple[Instr, ...]) -> Tuple[Instr, ...]:
        out: List[Instr] = []
        for instr in body:
            if (
                isinstance(instr, ops.Loop)
                and isinstance(instr.count, int)
                and instr.count >= min_trip_count
                and instr.count % chunk == 0
                and (only_pcs is None or instr.pc in only_pcs)
            ):
                extracted: List[AddrExpr] = []
                try:
                    inner = _rewrite_body(instr.body, 0, extracted)
                except _Unsplittable:
                    out.append(_clone_instr(instr))
                    continue
                counter[0] += 1
                helper_name = f"{owner}$loop{counter[0]}"
                helper_body = ops.Loop(chunk, inner)
                synthetic.append(Function(
                    name=helper_name,
                    body=(helper_body,),
                    num_params=len(extracted),
                    num_slots=0,
                ))
                # Extracted operands are evaluated per call in the *outer*
                # loop, whose induction variable now counts chunks; the
                # stride is scaled so each chunk starts where the previous
                # one ended.
                call_args = tuple(
                    Indexed(e.base, e.stride * chunk, 0)
                    if isinstance(e, Indexed) else e
                    for e in extracted
                )
                outer = ops.Loop(instr.count // chunk,
                                 (ops.Call(helper_name, call_args),))
                out.append(outer)
            elif isinstance(instr, ops.Loop):
                copy = ops.Loop(instr.count,
                                transform_block(owner, instr.body))
                out.append(copy)
            else:
                out.append(_clone_instr(instr))
        return tuple(out)

    for name, func in program.functions.items():
        new_functions.append(Function(
            name=name,
            body=transform_block(name, func.body),
            num_params=func.num_params,
            num_slots=func.num_slots,
        ))
    new_functions.extend(synthetic)

    # Cloned instructions still carry their *original* PCs at this point;
    # record the mapping before Program() re-finalizes, then translate the
    # planted-race ground truth so it survives the rewrite.
    old_pc_to_instr: Dict[int, Instr] = {}
    for func in new_functions:
        for instr in func.instructions():
            if instr.pc >= 0 and instr.pc not in old_pc_to_instr:
                old_pc_to_instr[instr.pc] = instr

    result = Program(new_functions, entry=program.entry,
                     name=f"{program.name}+loopsplit")
    translated = []
    for race in program.planted_races:
        keys = []
        for first, second in race.keys:
            if first in old_pc_to_instr and second in old_pc_to_instr:
                low, high = sorted((old_pc_to_instr[first].pc,
                                    old_pc_to_instr[second].pc))
                keys.append((low, high))
        translated.append(type(race)(name=race.name, keys=tuple(keys),
                                     expect_rare=race.expect_rare))
    result.planted_races = tuple(translated)
    return result


def profile_loops(program: Program, seed: int = 0,
                  scheduler=None) -> Dict[int, int]:
    """§7's offline profiling pass: dynamic iteration count per static loop.

    Runs ``program`` uninstrumented once and returns ``{loop pc: total
    iterations executed}``.  Feed the result to :func:`split_hot_loops`.
    """
    from ..runtime.executor import Executor
    from ..runtime.scheduler import RandomInterleaver

    executor = Executor(
        program,
        scheduler=scheduler or RandomInterleaver(seed),
    )
    return dict(executor.run().loop_iterations)


def split_hot_loops(program: Program, profile: Dict[int, int],
                    hot_iterations: int = 100_000,
                    chunk: int = 100) -> Program:
    """Profile-guided loop splitting (§7, both sentences).

    Where :func:`split_loops` keys on *static* trip counts,
    this variant uses the measured ``profile`` from :func:`profile_loops`:
    a loop is split when its total dynamic iterations exceed
    ``hot_iterations``, regardless of its per-entry trip count — which is
    what identifies the loops that actually dominate a run.  The static
    split machinery is reused, so the same extractability rules apply.
    """
    if hot_iterations < 1:
        raise ValueError("hot_iterations must be >= 1")
    hot_pcs = {pc for pc, iterations in profile.items()
               if iterations >= hot_iterations}
    if not hot_pcs:
        return program
    return split_loops(program, min_trip_count=chunk, chunk=chunk,
                       only_pcs=hot_pcs)