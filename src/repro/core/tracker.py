"""Logical timestamps for synchronization events (§4.2).

Every logged synchronization operation carries a timestamp such that if
``a`` happens-before ``b`` and both operate on the same SyncVar, then ``a``
has the smaller timestamp.  The paper first tried a single global counter,
found that its cache-line contention "can dramatically slow down" the
instrumented program on multiprocessors, and settled on **128 counters
selected by a hash of the SyncVar**.  We implement exactly that: hashed
counter selection (with a deterministic CRC hash — Python's builtin ``hash``
is salted per process and would break reproducibility) and a contention cost
charged per stamp that scales inversely with the counter count.

The ``atomic`` flag models §4.2's key implementation lesson.  For
synchronization whose semantics bound where the timestamp can be taken
(lock after-acquire, unlock before-release, ...) the stamp is always
consistent.  For raw atomic machine instructions the tool cannot tell
whether a CAS acts as a lock or an unlock, so LiteRace wraps the CAS *and*
its timestamping in a critical section.  With ``atomic=False`` that critical
section is omitted and the tracker emulates the resulting misordering: with
probability ``race_prob`` the timestamps of two consecutive stamps on the
same counter are swapped, exactly the inversion a torn read-increment-log
sequence produces.  The offline merge then reconstructs a wrong order and
the detector reports false races — the paper's "hundreds of false data
races" failure mode, reproduced by ``repro.experiments.ablations``.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List

from ..eventlog.events import SyncVar

__all__ = ["TimestampTracker", "NUM_COUNTERS"]

#: The paper's counter-array size.
NUM_COUNTERS = 128


def _stable_hash(var: SyncVar) -> int:
    """A process-stable hash of a SyncVar (crc32 of its textual form)."""
    domain, ident = var
    return zlib.crc32(f"{domain}:{ident}".encode("ascii"))


class TimestampTracker:
    """Issues logical timestamps from an array of hashed counters."""

    def __init__(self, num_counters: int = NUM_COUNTERS, atomic: bool = True,
                 race_prob: float = 0.3, seed: int = 0):
        if num_counters < 1:
            raise ValueError("num_counters must be >= 1")
        if not 0.0 <= race_prob <= 1.0:
            raise ValueError("race_prob must be in [0, 1]")
        self.num_counters = num_counters
        self.atomic = atomic
        self.race_prob = race_prob
        self._counters: List[int] = [0] * num_counters
        #: counter index -> timestamp reserved by a torn (non-atomic) stamp,
        #: to be handed to the *next* stamp on that counter.
        self._pending: Dict[int, int] = {}
        self._rng = random.Random(seed)
        self.stamps_issued = 0
        self.inversions = 0

    def counter_index(self, var: SyncVar) -> int:
        """Which of the counters ``var`` hashes to."""
        return _stable_hash(var) % self.num_counters

    def stamp(self, var: SyncVar, may_tear: bool = False) -> int:
        """Issue the timestamp for one synchronization operation on ``var``.

        ``may_tear`` marks operations (atomic machine ops) whose
        timestamping is only safe inside the extra critical section; it has
        no effect when the tracker is in atomic mode.
        """
        self.stamps_issued += 1
        index = self.counter_index(var)
        pending = self._pending.pop(index, None)
        if pending is not None:
            # A torn earlier stamp reserved this (smaller) value; this later
            # operation now receives it — the inversion.
            return pending
        self._counters[index] += 1
        value = self._counters[index]
        if may_tear and not self.atomic and self._rng.random() < self.race_prob:
            # Tear: this operation logs value+1 while `value` leaks to the
            # next stamp on the same counter.
            self._counters[index] += 1
            self._pending[index] = value
            self.inversions += 1
            return self._counters[index]
        return value

    def counter_value(self, index: int) -> int:
        return self._counters[index]
