"""Benign-race suppressions.

Table 4's footnote — "some of the data races found could be benign" — is a
fact of life for race-detection tools: intentional races (statistics
counters, lossy flags) survive triage and must not be re-reported on every
run.  Real tools carry suppression files; this module provides the same
workflow:

* a :class:`Suppression` matches a static race by the *functions* (or exact
  symbolized locations) containing its two instructions;
* a :class:`SuppressionList` filters a :class:`~repro.detector.races.RaceReport`
  into (kept, suppressed) and can be parsed from / serialized to the usual
  one-rule-per-line text format::

      # intentional stats counters
      bump_channel_stats <-> bump_channel_stats
      consumer_lag_flush <-> *

``*`` matches any location.  Matching is order-insensitive, like race keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..detector.races import RaceReport
from ..tir.program import Program

__all__ = ["Suppression", "SuppressionList"]


@dataclass(frozen=True)
class Suppression:
    """One rule: suppress races between ``first`` and ``second``.

    Each side is a function name or ``"*"``.  A race matches if its two
    instructions' functions match the two sides in either order.
    """

    first: str
    second: str
    reason: str = ""

    @staticmethod
    def _side_matches(pattern: str, function: str) -> bool:
        return pattern == "*" or pattern == function

    def matches(self, func1: str, func2: str) -> bool:
        return (
            (self._side_matches(self.first, func1)
             and self._side_matches(self.second, func2))
            or (self._side_matches(self.first, func2)
                and self._side_matches(self.second, func1))
        )

    def to_line(self) -> str:
        line = f"{self.first} <-> {self.second}"
        if self.reason:
            line += f"  # {self.reason}"
        return line


class SuppressionList:
    """An ordered collection of suppression rules."""

    def __init__(self, rules: Iterable[Suppression] = ()):
        self.rules: List[Suppression] = list(rules)

    # -- construction ------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "SuppressionList":
        """Parse the one-rule-per-line format (see module docstring)."""
        rules = []
        for lineno, raw in enumerate(text.splitlines(), 1):
            line, _, comment = raw.partition("#")
            line = line.strip()
            if not line:
                continue
            if "<->" not in line:
                raise ValueError(
                    f"line {lineno}: expected 'first <-> second', "
                    f"got {raw!r}"
                )
            first, _, second = line.partition("<->")
            first, second = first.strip(), second.strip()
            if not first or not second:
                raise ValueError(f"line {lineno}: empty side in {raw!r}")
            rules.append(Suppression(first, second, comment.strip()))
        return cls(rules)

    def to_text(self) -> str:
        return "\n".join(rule.to_line() for rule in self.rules) + "\n"

    def add(self, rule: Suppression) -> None:
        self.rules.append(rule)

    def __len__(self) -> int:
        return len(self.rules)

    # -- filtering ---------------------------------------------------------
    def split(self, report: RaceReport,
              program: Program) -> Tuple[RaceReport, RaceReport]:
        """Partition ``report`` into (kept, suppressed) reports."""
        kept, suppressed = RaceReport(), RaceReport()
        for key, count in report.occurrences.items():
            func1 = program.function_of_pc(key[0])
            func2 = program.function_of_pc(key[1])
            target = kept
            if any(rule.matches(func1, func2) for rule in self.rules):
                target = suppressed
            target.occurrences[key] = count
            target.examples[key] = report.examples[key]
            target.addresses.add(report.examples[key].addr)
        return kept, suppressed
