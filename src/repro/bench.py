"""Detector throughput benchmark: the ``BENCH_detector.json`` trajectory.

The fleet's throughput ceiling is the detector (ROADMAP): every segment a
telemetry worker ingests funnels through decode + happens-before analysis,
so events/sec *is* the capacity number.  This module measures it on fixed
synthetic streams and writes ``BENCH_detector.json`` at the repo root, so
every later PR has a baseline to beat and regressions show up as a broken
trajectory rather than a vague feeling.

What is measured
----------------
Each bench stream is generated from a fixed seed, encoded once into wire
segments (the production shape), and consumed end to end two ways:

* **reference** — ``decode_segment`` into event objects, then the per-event
  ``FastTrackDetector.feed`` loop (the pre-flat hot path);
* **flat** — :class:`~repro.eventlog.segment.SegmentBatcher` batching the
  encoded frames into one vectorized decode per ~4096 events, feeding
  ``FlatDetector('fasttrack').feed_batch`` (the production hot path,
  including the numpy pre-filter kernel when numpy is importable — the
  ``kernel`` field records which ran).

Both sides do the full job (bytes in, ``RaceReport`` out), so the speedup
is what a shard worker actually gains.  The harness asserts the two sides
produce identical reports before trusting any timing.

The server number runs the shard-worker loop itself — the batched
:meth:`~repro.service.shard.ShardDetector.feed_frame` path for one shard
of four — giving segments/sec for a single worker process.

The ``online`` section sweeps :class:`OnlineRaceDetector`'s micro-batch
size (``flush_events``) on the realistic ``private_mixed`` stream; the
committed default in :mod:`repro.detector.online` is the sweep's winner.

Schema 2: ``BENCH_detector.json`` holds a ``trajectory`` list — one entry
per committed run, oldest first — so each PR *appends* its numbers and
regressions show up as a broken trajectory.  ``write_bench`` migrates a
schema-1 file into the first trajectory entry.

Streams (all 8 threads, fixed per-stream seeds):

* ``private_mixed`` — 80% thread-private bursts (30% writes), 15%
  lock-disciplined shared accesses, 5% unsynchronized shared: the
  realistic profile, and the hardest mix for the flat fast paths.
* ``read_burst`` — read-dominant private bursts with periodic locking:
  the same-epoch read fast path.
* ``write_burst`` — write-dominant private bursts: the same-epoch write
  fast path.
* ``sync_heavy`` — producer/consumer with dense lock traffic: stresses the
  sync path (joins, release ticks) that sampling-heavy logs exhibit.

Timing uses best-of-N wall clock per side, interleaved, which is the
standard defense against noisy shared machines.
"""

from __future__ import annotations

import json
import math
import random
import time
from typing import Callable, Dict, List

from .detector.fasttrack import FastTrackDetector
from .detector.flat import FlatDetector
from .detector.online import OnlineRaceDetector
from .detector.vectorized import kernel_name
from .eventlog.events import Event, MemoryEvent, SyncEvent, SyncKind
from .eventlog.segment import SegmentBatcher, decode_segment, encode_segment
from .service.shard import ShardDetector

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_EVENTS",
    "DEFAULT_REPEATS",
    "DEFAULT_SEGMENT_EVENTS",
    "ONLINE_SWEEP_SIZES",
    "STREAMS",
    "build_stream",
    "run_bench",
    "validate_bench",
    "validate_entry",
    "write_bench",
]

SCHEMA_VERSION = 2

#: ``flush_events`` candidates for the online micro-batch sweep.
ONLINE_SWEEP_SIZES = (128, 256, 512, 1024, 2048, 4096)

#: Events per stream for the committed numbers; ``repro bench --quick``
#: shrinks this for smoke runs.
DEFAULT_EVENTS = 100_000
DEFAULT_REPEATS = 5
DEFAULT_SEGMENT_EVENTS = 512
_BASE_SEED = 42
_NUM_THREADS = 8
_SERVER_SHARDS = 4


# -- fixed-seed stream generators -------------------------------------------

def _private_addr(rng: random.Random, tid: int) -> int:
    return 0x1000 + tid * 64 + rng.randrange(32)


def _stream_private_mixed(rng: random.Random, n: int) -> List[Event]:
    events: List[Event] = []
    ts = 0
    while len(events) < n:
        tid = rng.randrange(_NUM_THREADS)
        r = rng.random()
        if r < 0.80:
            for _ in range(6):
                events.append(MemoryEvent(tid, _private_addr(rng, tid),
                                          rng.randrange(4000),
                                          rng.random() < 0.3))
        elif r < 0.95:
            lock = rng.randrange(4)
            ts += 1
            events.append(SyncEvent(tid, SyncKind.LOCK, ("mutex", lock),
                                    ts, 1))
            for _ in range(4):
                events.append(MemoryEvent(tid, 0x2000 + lock * 8
                                          + rng.randrange(4),
                                          rng.randrange(4000),
                                          rng.random() < 0.5))
            ts += 1
            events.append(SyncEvent(tid, SyncKind.UNLOCK, ("mutex", lock),
                                    ts, 2))
        else:
            events.append(MemoryEvent(tid, 0x3000 + rng.randrange(4),
                                      5000 + rng.randrange(3),
                                      rng.random() < 0.2))
    return events[:n]


def _burst_stream(rng: random.Random, n: int, write_prob: float) -> List[Event]:
    events: List[Event] = []
    ts = 0
    while len(events) < n:
        tid = rng.randrange(_NUM_THREADS)
        if rng.random() < 0.97:
            for _ in range(8):
                events.append(MemoryEvent(tid, _private_addr(rng, tid),
                                          rng.randrange(4000),
                                          rng.random() < write_prob))
        else:
            lock = rng.randrange(4)
            ts += 1
            kind = SyncKind.LOCK if rng.random() < 0.5 else SyncKind.UNLOCK
            events.append(SyncEvent(tid, kind, ("mutex", lock), ts, 1))
    return events[:n]


def _stream_read_burst(rng: random.Random, n: int) -> List[Event]:
    return _burst_stream(rng, n, write_prob=0.02)


def _stream_write_burst(rng: random.Random, n: int) -> List[Event]:
    return _burst_stream(rng, n, write_prob=0.98)


def _stream_sync_heavy(rng: random.Random, n: int) -> List[Event]:
    events: List[Event] = []
    ts = 0
    while len(events) < n:
        tid = rng.randrange(_NUM_THREADS)
        lock = rng.randrange(8)
        ts += 1
        events.append(SyncEvent(tid, SyncKind.LOCK, ("mutex", lock), ts, 1))
        for _ in range(3):
            events.append(MemoryEvent(tid, 0x4000 + lock * 16
                                      + rng.randrange(8),
                                      rng.randrange(4000),
                                      rng.random() < 0.4))
        ts += 1
        events.append(SyncEvent(tid, SyncKind.UNLOCK, ("mutex", lock), ts, 2))
    return events[:n]


#: name -> (per-stream seed, generator).  Seeds are fixed so the committed
#: numbers are reproducible event-for-event.
STREAMS: Dict[str, tuple] = {
    "private_mixed": (_BASE_SEED + 1, _stream_private_mixed),
    "read_burst": (_BASE_SEED + 2, _stream_read_burst),
    "write_burst": (_BASE_SEED + 3, _stream_write_burst),
    "sync_heavy": (_BASE_SEED + 4, _stream_sync_heavy),
}


def build_stream(name: str, events: int = DEFAULT_EVENTS) -> List[Event]:
    """Generate one named bench stream from its fixed seed."""
    seed, generator = STREAMS[name]
    return generator(random.Random(seed), events)


def _encode_frames(events: List[Event],
                   segment_events: int) -> List[bytes]:
    return [encode_segment(events[i:i + segment_events])
            for i in range(0, len(events), segment_events)]


# -- timing helpers ---------------------------------------------------------

def _best_of(sides: List[Callable[[], object]], repeats: int) -> List[float]:
    """Best wall-clock per side, interleaving A/B runs to spread noise."""
    best = [math.inf] * len(sides)
    for _ in range(repeats):
        for i, side in enumerate(sides):
            start = time.perf_counter()
            side()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _report_key(report):
    return (dict(report.occurrences), dict(report.examples),
            set(report.addresses))


# -- the bench itself -------------------------------------------------------

def _bench_stream(name: str, events: List[Event], frames: List[bytes],
                  repeats: int) -> Dict[str, object]:
    def reference() -> FastTrackDetector:
        detector = FastTrackDetector()
        feed = detector.feed
        for frame in frames:
            decoded, _ = decode_segment(frame)
            for event in decoded:
                feed(event)
        return detector

    def flat() -> FlatDetector:
        detector = FlatDetector("fasttrack")
        with SegmentBatcher(detector.feed_batch) as batcher:
            push = batcher.push
            for frame in frames:
                push(frame)
        return detector

    # Equivalence gate: never publish a speedup for a detector that
    # disagrees with the reference.
    ref_detector = reference()
    flat_detector = flat()
    if _report_key(ref_detector.report) != _report_key(flat_detector.report):
        raise AssertionError(f"flat/reference reports diverge on {name!r}")

    ref_best, flat_best = _best_of([reference, flat], repeats)
    n = len(events)
    ref_rate = n / ref_best
    flat_rate = n / flat_best
    memory = sum(1 for e in events if isinstance(e, MemoryEvent))
    return {
        "events": n,
        "memory_events": memory,
        "sync_events": n - memory,
        "segments": len(frames),
        "static_races": ref_detector.report.num_static,
        "reference_events_per_sec": round(ref_rate),
        "flat_events_per_sec": round(flat_rate),
        "speedup": round(flat_rate / ref_rate, 3),
    }


def _bench_server(frames: List[bytes], total_events: int,
                  repeats: int) -> Dict[str, object]:
    """The shard-worker loop: batched frame feed for one shard of N."""
    def worker() -> ShardDetector:
        shard = ShardDetector(0, _SERVER_SHARDS)
        feed_frame = shard.feed_frame
        for frame in frames:
            feed_frame(frame)
        shard.flush()
        return shard

    (best,) = _best_of([worker], repeats)
    return {
        "num_shards": _SERVER_SHARDS,
        "segments": len(frames),
        "segments_per_sec": round(len(frames) / best, 1),
        "events_per_sec": round(total_events / best),
    }


def _bench_online(events: List[Event], repeats: int) -> Dict[str, object]:
    """Sweep the online detector's micro-batch size on one stream."""
    def run_at(size: int) -> Callable[[], OnlineRaceDetector]:
        def side() -> OnlineRaceDetector:
            detector = OnlineRaceDetector(flush_events=size)
            feed = detector.feed
            for event in events:
                feed(event)
            detector.flush()
            return detector
        return side

    bests = _best_of([run_at(size) for size in ONLINE_SWEEP_SIZES], repeats)
    n = len(events)
    rates = {str(size): round(n / best)
             for size, best in zip(ONLINE_SWEEP_SIZES, bests)}
    best_size = max(ONLINE_SWEEP_SIZES,
                    key=lambda size: rates[str(size)])
    return {
        "stream": "private_mixed",
        "events_per_sec": rates,
        "best_flush_events": best_size,
    }


def run_bench(events_per_stream: int = DEFAULT_EVENTS,
              repeats: int = DEFAULT_REPEATS,
              segment_events: int = DEFAULT_SEGMENT_EVENTS,
              progress: Callable[[str], None] = None) -> Dict[str, object]:
    """Run every bench stream and return one trajectory *entry*.

    Pass the entry to :func:`write_bench` to append it to a
    ``BENCH_detector.json`` trajectory.
    """
    streams: Dict[str, Dict[str, object]] = {}
    server_frames: List[bytes] = []
    server_events = 0
    online_events: List[Event] = []
    for name in STREAMS:
        events = build_stream(name, events_per_stream)
        frames = _encode_frames(events, segment_events)
        streams[name] = _bench_stream(name, events, frames, repeats)
        if progress is not None:
            row = streams[name]
            progress(f"{name:16s} ref {row['reference_events_per_sec']:>10,} "
                     f"ev/s  flat {row['flat_events_per_sec']:>10,} ev/s  "
                     f"{row['speedup']:.2f}x")
        server_frames.extend(frames)
        server_events += len(events)
        if name == "private_mixed":
            online_events = events

    speedups = [row["speedup"] for row in streams.values()]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    server = _bench_server(server_frames, server_events, repeats)
    online = _bench_online(online_events, repeats)
    if progress is not None:
        progress(f"{'geomean':16s} {geomean:.2f}x  (kernel: {kernel_name()})")
        progress(f"{'server worker':16s} {server['segments_per_sec']:,} "
                 f"segments/s ({server['events_per_sec']:,} ev/s, "
                 f"1 shard of {server['num_shards']})")
        rates = online["events_per_sec"]
        sweep = "  ".join(f"{size}:{rates[str(size)]:,}"
                          for size in ONLINE_SWEEP_SIZES)
        progress(f"{'online sweep':16s} {sweep}  "
                 f"(best flush_events: {online['best_flush_events']})")
    return {
        "generated": time.strftime("%Y-%m-%d"),
        "kernel": kernel_name(),
        "config": {
            "events_per_stream": events_per_stream,
            "segment_events": segment_events,
            "repeats": repeats,
            "threads": _NUM_THREADS,
        },
        "streams": streams,
        "geomean_speedup": round(geomean, 3),
        "server": server,
        "online": online,
    }


# -- schema -----------------------------------------------------------------

_STREAM_FIELDS = ("events", "memory_events", "sync_events", "segments",
                  "static_races", "reference_events_per_sec",
                  "flat_events_per_sec", "speedup")
_SERVER_FIELDS = ("num_shards", "segments", "segments_per_sec",
                  "events_per_sec")


def validate_entry(entry: object, where: str = "entry") -> List[str]:
    """Schema problems in one trajectory entry ([] when valid)."""
    problems: List[str] = []
    if not isinstance(entry, dict):
        return [f"{where} is not an object"]
    if not isinstance(entry.get("generated"), str):
        problems.append(f"{where}: missing generated date")
    if entry.get("kernel") not in ("numpy", "pure"):
        problems.append(f"{where}: kernel must be 'numpy' or 'pure'")
    config = entry.get("config")
    if not isinstance(config, dict):
        problems.append(f"{where}: missing config object")
    streams = entry.get("streams")
    if not isinstance(streams, dict) or not streams:
        problems.append(f"{where}: missing streams object")
    else:
        for name in STREAMS:
            if name not in streams:
                problems.append(f"{where}: missing stream {name!r}")
        for name, row in streams.items():
            for field in _STREAM_FIELDS:
                value = row.get(field) if isinstance(row, dict) else None
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: stream {name!r}: bad field {field!r}")
    if not isinstance(entry.get("geomean_speedup"), (int, float)):
        problems.append(f"{where}: missing geomean_speedup")
    server = entry.get("server")
    if not isinstance(server, dict):
        problems.append(f"{where}: missing server object")
    else:
        for field in _SERVER_FIELDS:
            if not isinstance(server.get(field), (int, float)):
                problems.append(f"{where}: server: bad field {field!r}")
    online = entry.get("online")
    if online is not None:  # absent in entries migrated from schema 1
        if not (isinstance(online, dict)
                and isinstance(online.get("events_per_sec"), dict)
                and isinstance(online.get("best_flush_events"), int)):
            problems.append(f"{where}: bad online object")
    return problems


def validate_bench(doc: object) -> List[str]:
    """Schema problems in a ``BENCH_detector.json`` doc ([] when valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA_VERSION:
        problems.append(f"schema must be {SCHEMA_VERSION}")
    if doc.get("bench") != "detector":
        problems.append("bench must be 'detector'")
    trajectory = doc.get("trajectory")
    if not isinstance(trajectory, list) or not trajectory:
        problems.append("missing trajectory list")
        return problems
    for i, entry in enumerate(trajectory):
        problems.extend(validate_entry(entry, where=f"trajectory[{i}]"))
    return problems


def _migrate_schema1(doc: Dict[str, object]) -> Dict[str, object]:
    """A schema-1 doc becomes the first trajectory entry (kernel 'pure':
    those numbers predate the vectorized kernel)."""
    entry = {key: doc[key] for key in
             ("generated", "config", "streams", "geomean_speedup", "server")
             if key in doc}
    entry["kernel"] = "pure"
    return entry


def write_bench(entry: Dict[str, object], path: str) -> None:
    """Append ``entry`` to the trajectory at ``path`` (created if absent).

    An existing schema-1 file is migrated: its numbers become the first
    trajectory entry, so history is preserved rather than overwritten.
    """
    problems = validate_entry(entry)
    if problems:
        raise ValueError("refusing to write invalid bench entry: "
                         + "; ".join(problems))
    trajectory: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        existing = None
    if isinstance(existing, dict):
        if existing.get("schema") == 1:
            trajectory.append(_migrate_schema1(existing))
        elif isinstance(existing.get("trajectory"), list):
            trajectory.extend(existing["trajectory"])
    trajectory.append(entry)
    doc = {
        "schema": SCHEMA_VERSION,
        "bench": "detector",
        "trajectory": trajectory,
    }
    problems = validate_bench(doc)
    if problems:
        raise ValueError("refusing to write invalid bench doc: "
                         + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
