"""Detector throughput benchmark: the ``BENCH_detector.json`` trajectory.

The fleet's throughput ceiling is the detector (ROADMAP): every segment a
telemetry worker ingests funnels through decode + happens-before analysis,
so events/sec *is* the capacity number.  This module measures it on fixed
synthetic streams and writes ``BENCH_detector.json`` at the repo root, so
every later PR has a baseline to beat and regressions show up as a broken
trajectory rather than a vague feeling.

What is measured
----------------
Each bench stream is generated from a fixed seed, encoded once into wire
segments (the production shape), and consumed end to end two ways:

* **reference** — ``decode_segment`` into event objects, then the per-event
  ``FastTrackDetector.feed`` loop (the pre-flat hot path);
* **flat** — ``decode_segment_columns`` into parallel columns, then
  ``FlatDetector('fasttrack').feed_batch`` (the batched hot path).

Both sides do the full job (bytes in, ``RaceReport`` out), so the speedup
is what a shard worker actually gains.  The harness asserts the two sides
produce identical reports before trusting any timing.

The server number runs the shard-worker loop itself — decode + the
:class:`~repro.service.shard.ShardDetector` columnar feed for one shard of
four — giving segments/sec for a single worker process.

Streams (all 8 threads, fixed per-stream seeds):

* ``private_mixed`` — 80% thread-private bursts (30% writes), 15%
  lock-disciplined shared accesses, 5% unsynchronized shared: the
  realistic profile, and the hardest mix for the flat fast paths.
* ``read_burst`` — read-dominant private bursts with periodic locking:
  the same-epoch read fast path.
* ``write_burst`` — write-dominant private bursts: the same-epoch write
  fast path.
* ``sync_heavy`` — producer/consumer with dense lock traffic: stresses the
  sync path (joins, release ticks) that sampling-heavy logs exhibit.

Timing uses best-of-N wall clock per side, interleaved, which is the
standard defense against noisy shared machines.
"""

from __future__ import annotations

import json
import math
import random
import time
from typing import Callable, Dict, List

from .detector.fasttrack import FastTrackDetector
from .detector.flat import FlatDetector
from .eventlog.events import Event, MemoryEvent, SyncEvent, SyncKind
from .eventlog.segment import (decode_segment, decode_segment_columns,
                               encode_segment)
from .service.shard import ShardDetector

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_EVENTS",
    "DEFAULT_REPEATS",
    "DEFAULT_SEGMENT_EVENTS",
    "STREAMS",
    "build_stream",
    "run_bench",
    "validate_bench",
    "write_bench",
]

SCHEMA_VERSION = 1

#: Events per stream for the committed numbers; ``repro bench --quick``
#: shrinks this for smoke runs.
DEFAULT_EVENTS = 100_000
DEFAULT_REPEATS = 5
DEFAULT_SEGMENT_EVENTS = 512
_BASE_SEED = 42
_NUM_THREADS = 8
_SERVER_SHARDS = 4


# -- fixed-seed stream generators -------------------------------------------

def _private_addr(rng: random.Random, tid: int) -> int:
    return 0x1000 + tid * 64 + rng.randrange(32)


def _stream_private_mixed(rng: random.Random, n: int) -> List[Event]:
    events: List[Event] = []
    ts = 0
    while len(events) < n:
        tid = rng.randrange(_NUM_THREADS)
        r = rng.random()
        if r < 0.80:
            for _ in range(6):
                events.append(MemoryEvent(tid, _private_addr(rng, tid),
                                          rng.randrange(4000),
                                          rng.random() < 0.3))
        elif r < 0.95:
            lock = rng.randrange(4)
            ts += 1
            events.append(SyncEvent(tid, SyncKind.LOCK, ("mutex", lock),
                                    ts, 1))
            for _ in range(4):
                events.append(MemoryEvent(tid, 0x2000 + lock * 8
                                          + rng.randrange(4),
                                          rng.randrange(4000),
                                          rng.random() < 0.5))
            ts += 1
            events.append(SyncEvent(tid, SyncKind.UNLOCK, ("mutex", lock),
                                    ts, 2))
        else:
            events.append(MemoryEvent(tid, 0x3000 + rng.randrange(4),
                                      5000 + rng.randrange(3),
                                      rng.random() < 0.2))
    return events[:n]


def _burst_stream(rng: random.Random, n: int, write_prob: float) -> List[Event]:
    events: List[Event] = []
    ts = 0
    while len(events) < n:
        tid = rng.randrange(_NUM_THREADS)
        if rng.random() < 0.97:
            for _ in range(8):
                events.append(MemoryEvent(tid, _private_addr(rng, tid),
                                          rng.randrange(4000),
                                          rng.random() < write_prob))
        else:
            lock = rng.randrange(4)
            ts += 1
            kind = SyncKind.LOCK if rng.random() < 0.5 else SyncKind.UNLOCK
            events.append(SyncEvent(tid, kind, ("mutex", lock), ts, 1))
    return events[:n]


def _stream_read_burst(rng: random.Random, n: int) -> List[Event]:
    return _burst_stream(rng, n, write_prob=0.02)


def _stream_write_burst(rng: random.Random, n: int) -> List[Event]:
    return _burst_stream(rng, n, write_prob=0.98)


def _stream_sync_heavy(rng: random.Random, n: int) -> List[Event]:
    events: List[Event] = []
    ts = 0
    while len(events) < n:
        tid = rng.randrange(_NUM_THREADS)
        lock = rng.randrange(8)
        ts += 1
        events.append(SyncEvent(tid, SyncKind.LOCK, ("mutex", lock), ts, 1))
        for _ in range(3):
            events.append(MemoryEvent(tid, 0x4000 + lock * 16
                                      + rng.randrange(8),
                                      rng.randrange(4000),
                                      rng.random() < 0.4))
        ts += 1
        events.append(SyncEvent(tid, SyncKind.UNLOCK, ("mutex", lock), ts, 2))
    return events[:n]


#: name -> (per-stream seed, generator).  Seeds are fixed so the committed
#: numbers are reproducible event-for-event.
STREAMS: Dict[str, tuple] = {
    "private_mixed": (_BASE_SEED + 1, _stream_private_mixed),
    "read_burst": (_BASE_SEED + 2, _stream_read_burst),
    "write_burst": (_BASE_SEED + 3, _stream_write_burst),
    "sync_heavy": (_BASE_SEED + 4, _stream_sync_heavy),
}


def build_stream(name: str, events: int = DEFAULT_EVENTS) -> List[Event]:
    """Generate one named bench stream from its fixed seed."""
    seed, generator = STREAMS[name]
    return generator(random.Random(seed), events)


def _encode_frames(events: List[Event],
                   segment_events: int) -> List[bytes]:
    return [encode_segment(events[i:i + segment_events])
            for i in range(0, len(events), segment_events)]


# -- timing helpers ---------------------------------------------------------

def _best_of(sides: List[Callable[[], object]], repeats: int) -> List[float]:
    """Best wall-clock per side, interleaving A/B runs to spread noise."""
    best = [math.inf] * len(sides)
    for _ in range(repeats):
        for i, side in enumerate(sides):
            start = time.perf_counter()
            side()
            best[i] = min(best[i], time.perf_counter() - start)
    return best


def _report_key(report):
    return (dict(report.occurrences), dict(report.examples),
            set(report.addresses))


# -- the bench itself -------------------------------------------------------

def _bench_stream(name: str, events: List[Event], frames: List[bytes],
                  repeats: int) -> Dict[str, object]:
    def reference() -> FastTrackDetector:
        detector = FastTrackDetector()
        feed = detector.feed
        for frame in frames:
            decoded, _ = decode_segment(frame)
            for event in decoded:
                feed(event)
        return detector

    def flat() -> FlatDetector:
        detector = FlatDetector("fasttrack")
        feed_batch = detector.feed_batch
        for frame in frames:
            cols, _ = decode_segment_columns(frame)
            feed_batch(cols)
        return detector

    # Equivalence gate: never publish a speedup for a detector that
    # disagrees with the reference.
    ref_detector = reference()
    flat_detector = flat()
    if _report_key(ref_detector.report) != _report_key(flat_detector.report):
        raise AssertionError(f"flat/reference reports diverge on {name!r}")

    ref_best, flat_best = _best_of([reference, flat], repeats)
    n = len(events)
    ref_rate = n / ref_best
    flat_rate = n / flat_best
    memory = sum(1 for e in events if isinstance(e, MemoryEvent))
    return {
        "events": n,
        "memory_events": memory,
        "sync_events": n - memory,
        "segments": len(frames),
        "static_races": ref_detector.report.num_static,
        "reference_events_per_sec": round(ref_rate),
        "flat_events_per_sec": round(flat_rate),
        "speedup": round(flat_rate / ref_rate, 3),
    }


def _bench_server(frames: List[bytes], total_events: int,
                  repeats: int) -> Dict[str, object]:
    """The shard-worker loop: decode + columnar feed for one shard of N."""
    def worker() -> ShardDetector:
        shard = ShardDetector(0, _SERVER_SHARDS)
        for frame in frames:
            cols, _ = decode_segment_columns(frame)
            shard.feed_columns(cols)
        return shard

    (best,) = _best_of([worker], repeats)
    return {
        "num_shards": _SERVER_SHARDS,
        "segments": len(frames),
        "segments_per_sec": round(len(frames) / best, 1),
        "events_per_sec": round(total_events / best),
    }


def run_bench(events_per_stream: int = DEFAULT_EVENTS,
              repeats: int = DEFAULT_REPEATS,
              segment_events: int = DEFAULT_SEGMENT_EVENTS,
              progress: Callable[[str], None] = None) -> Dict[str, object]:
    """Run every bench stream and return the ``BENCH_detector.json`` doc."""
    streams: Dict[str, Dict[str, object]] = {}
    server_frames: List[bytes] = []
    server_events = 0
    for name in STREAMS:
        events = build_stream(name, events_per_stream)
        frames = _encode_frames(events, segment_events)
        streams[name] = _bench_stream(name, events, frames, repeats)
        if progress is not None:
            row = streams[name]
            progress(f"{name:16s} ref {row['reference_events_per_sec']:>10,} "
                     f"ev/s  flat {row['flat_events_per_sec']:>10,} ev/s  "
                     f"{row['speedup']:.2f}x")
        server_frames.extend(frames)
        server_events += len(events)

    speedups = [row["speedup"] for row in streams.values()]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    server = _bench_server(server_frames, server_events, repeats)
    if progress is not None:
        progress(f"{'geomean':16s} {geomean:.2f}x")
        progress(f"{'server worker':16s} {server['segments_per_sec']:,} "
                 f"segments/s ({server['events_per_sec']:,} ev/s, "
                 f"1 shard of {server['num_shards']})")
    return {
        "schema": SCHEMA_VERSION,
        "bench": "detector",
        "generated": time.strftime("%Y-%m-%d"),
        "config": {
            "events_per_stream": events_per_stream,
            "segment_events": segment_events,
            "repeats": repeats,
            "threads": _NUM_THREADS,
        },
        "streams": streams,
        "geomean_speedup": round(geomean, 3),
        "server": server,
    }


# -- schema -----------------------------------------------------------------

_STREAM_FIELDS = ("events", "memory_events", "sync_events", "segments",
                  "static_races", "reference_events_per_sec",
                  "flat_events_per_sec", "speedup")
_SERVER_FIELDS = ("num_shards", "segments", "segments_per_sec",
                  "events_per_sec")


def validate_bench(doc: object) -> List[str]:
    """Schema problems in a ``BENCH_detector.json`` doc ([] when valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA_VERSION:
        problems.append(f"schema must be {SCHEMA_VERSION}")
    if doc.get("bench") != "detector":
        problems.append("bench must be 'detector'")
    config = doc.get("config")
    if not isinstance(config, dict):
        problems.append("missing config object")
    streams = doc.get("streams")
    if not isinstance(streams, dict) or not streams:
        problems.append("missing streams object")
    else:
        for name in STREAMS:
            if name not in streams:
                problems.append(f"missing stream {name!r}")
        for name, row in streams.items():
            for field in _STREAM_FIELDS:
                value = row.get(field) if isinstance(row, dict) else None
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"stream {name!r}: bad field {field!r}")
    if not isinstance(doc.get("geomean_speedup"), (int, float)):
        problems.append("missing geomean_speedup")
    server = doc.get("server")
    if not isinstance(server, dict):
        problems.append("missing server object")
    else:
        for field in _SERVER_FIELDS:
            if not isinstance(server.get(field), (int, float)):
                problems.append(f"server: bad field {field!r}")
    return problems


def write_bench(doc: Dict[str, object], path: str) -> None:
    problems = validate_bench(doc)
    if problems:
        raise ValueError("refusing to write invalid bench doc: "
                         + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
