"""repro — a reproduction of LiteRace (PLDI 2009).

LiteRace is a sampling-based dynamic data-race detector: it logs *all*
synchronization operations but only a sampled subset of memory accesses,
chosen by a thread-local adaptive bursty sampler that concentrates on cold
code.  The result — per the paper and reproduced here — is that logging
under 2% of memory operations finds over 70% of the data races full logging
finds, at a fraction of the overhead, with zero false positives.

Because Python's GIL hides real data races and x86 rewriting is out of
reach, the reproduction runs on a simulated substrate: programs are written
in a thread intermediate representation (:mod:`repro.tir`), executed by a
seeded interleaving interpreter (:mod:`repro.runtime`), and instrumented by
a pass mirroring the paper's Figure 3 (:mod:`repro.core.instrument`).  See
DESIGN.md for the substitution map.

Quickstart::

    from repro import LiteRace, workloads

    program = workloads.build("apache-1", seed=1)
    result = LiteRace(sampler="TL-Ad", seed=1).run(program)
    print(result.report.num_static, "static races found")
"""

from . import core, detector, eventlog, runtime, tir, workloads
from .core import (
    AnalysisResult,
    LiteRace,
    MarkedRun,
    Sampler,
    instrument,
    make_sampler,
    run_baseline,
    run_marked,
    split_loops,
)
from .detector import (
    FastTrackDetector,
    FlatDetector,
    HappensBeforeDetector,
    LocksetDetector,
    OnlineRaceDetector,
    RaceReport,
    detect_races,
)
from .runtime import (
    ChaosScheduler,
    Executor,
    RandomInterleaver,
    RoundRobinScheduler,
    RunResult,
)
from .tir import Program, ProgramBuilder

__version__ = "1.0.0"

__all__ = [
    "LiteRace",
    "AnalysisResult",
    "MarkedRun",
    "Sampler",
    "make_sampler",
    "instrument",
    "split_loops",
    "run_baseline",
    "run_marked",
    "HappensBeforeDetector",
    "FastTrackDetector",
    "FlatDetector",
    "LocksetDetector",
    "OnlineRaceDetector",
    "RaceReport",
    "detect_races",
    "Executor",
    "RunResult",
    "RandomInterleaver",
    "RoundRobinScheduler",
    "ChaosScheduler",
    "Program",
    "ProgramBuilder",
    "core",
    "detector",
    "eventlog",
    "runtime",
    "tir",
    "workloads",
    "__version__",
]
