"""The race-telemetry service: fleet-scale streaming detection (§4.4, §6).

The paper's deployment story is fleet-shaped: instrument beta binaries on
many user machines, stream per-thread logs off each machine, and triage the
races centrally.  This package is that serving layer for the reproduction:

* :class:`TelemetryServer` — a daemon (``repro serve``) accepting framed
  log segments from many concurrent clients over Unix or TCP sockets, with
  bounded-queue backpressure, a pool of detector worker *processes* sharded
  by address range, crash-tolerant journal replay, and a deduplicating
  aggregator with a ``status``/report endpoint.
* :class:`TelemetryClient` — the wire client (``repro submit``), plus
  :class:`TelemetrySink`, a harness event sink that streams a live run into
  the server as it executes.

The sharding invariant that keeps detection exact: **every shard receives
every synchronization event** (so each shard's happens-before relation is
complete — the paper's no-false-positives guarantee, §4.2), while memory
events route only to the shard owning their address range.  Races relate
accesses to one address, so the union of per-shard reports equals the
single-detector report exactly: no false positives, no lost races.
"""

from .client import SubmitResult, TelemetryClient, TelemetrySink
from .protocol import ProtocolError, parse_address
from .server import TelemetryServer
from .shard import ShardDetector, shard_of

__all__ = [
    "TelemetryServer",
    "TelemetryClient",
    "TelemetrySink",
    "SubmitResult",
    "ShardDetector",
    "shard_of",
    "ProtocolError",
    "parse_address",
]
