"""Telemetry clients: submit saved logs or stream a live run.

Two producers exist, matching the two halves of the deployment story:

* :class:`TelemetryClient` — ``repro submit``: load a saved ``.ltrc`` log,
  reconstruct its processing order from the logical timestamps (the same
  :func:`~repro.detector.merge.merge_thread_logs` the offline detector
  uses — the server's shard detectors consume segments *in order*, so the
  order must be a valid happens-before processing order before it goes on
  the wire), chop it into segments, and stream them with per-segment ACKs.
  The final END frame blocks until the server has finished analyzing every
  shard, so a returned :class:`SubmitResult` means the submission is fully
  folded into the fleet report.

* :class:`TelemetrySink` — a harness event sink (`ProfilingHarness(sink=…)`)
  that streams segments *while the profiled run executes*.  Live events
  arrive in true temporal order, which is already a valid processing order,
  so no client-side merge is needed — the hot path is buffer-append plus
  an occasional framed send, mirroring the cheap-ingest/deferred-analysis
  split of sampling-based tracing.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..detector.merge import merge_thread_logs
from ..eventlog.events import Event
from ..eventlog.log import EventLog
from ..eventlog.segment import encode_segment, split_log
from .protocol import (
    ProtocolError,
    T_ACK,
    T_END,
    T_HELLO,
    T_OK,
    T_REPORT,
    T_SEGMENT,
    T_SHUTDOWN,
    T_STATUS,
    T_VERDICTS,
    connect_to,
    decode_json,
    recv_frame,
    send_frame,
    send_json,
)

__all__ = ["TelemetryClient", "TelemetrySink", "SubmitResult"]


@dataclass(frozen=True)
class SubmitResult:
    """Outcome of one fully-acknowledged log submission."""

    client_id: int
    segments: int
    bytes_sent: int
    events: int
    #: Timestamp inconsistencies the client-side order reconstruction hit
    #: (nonzero only for logs written with broken timestamping, §4.2).
    merge_inconsistencies: int
    #: Races the server attributed to this client's log.
    races: int


class TelemetryClient:
    """A connection to the telemetry server."""

    def __init__(self, address: str, timeout: float = 60.0):
        self.address = address
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self.client_id: Optional[int] = None

    # -- connection --------------------------------------------------------
    def connect(self) -> "TelemetryClient":
        if self._sock is None:
            self._sock = connect_to(self.address, timeout=self.timeout)
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "TelemetryClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _request(self, frame_type: int, payload: bytes = b"") -> Any:
        self.connect()
        send_frame(self._sock, frame_type, payload)
        reply_type, reply = recv_frame(self._sock)
        body = decode_json(reply) if reply else {}
        if reply_type not in (T_OK, T_ACK):
            raise ProtocolError(body.get("error", "server rejected request"))
        return body

    def _request_json(self, frame_type: int, obj: Any) -> Any:
        import json

        return self._request(
            frame_type, json.dumps(obj, separators=(",", ":")).encode())

    # -- the protocol ------------------------------------------------------
    def hello(self, name: str = "") -> int:
        body = self._request_json(T_HELLO, {"name": name})
        self.client_id = int(body["client_id"])
        return self.client_id

    def send_segment(self, payload: bytes) -> int:
        """Ship one encoded segment; returns its server-side sequence number."""
        return int(self._request(T_SEGMENT, payload)["seq"])

    def end_log(self, segments: int) -> Dict[str, Any]:
        """Declare the log complete; blocks until analysis has finished."""
        return self._request_json(T_END, {"segments": segments})

    def submit_log(self, log: EventLog, *, name: str = "",
                   segment_events: int = 512,
                   compress: bool = False) -> SubmitResult:
        """Submit a whole log: merge, segment, stream, await analysis."""
        merged = merge_thread_logs(log)
        ordered = EventLog()
        ordered.events = merged.events
        frames = split_log(ordered, segment_events=segment_events,
                           compress=compress)
        if self.client_id is None:
            self.hello(name)
        bytes_sent = 0
        for frame in frames:
            self.send_segment(frame)
            bytes_sent += len(frame)
        body = self.end_log(len(frames))
        return SubmitResult(
            client_id=self.client_id,
            segments=len(frames),
            bytes_sent=bytes_sent,
            events=len(merged.events),
            merge_inconsistencies=merged.inconsistencies,
            races=int(body.get("races", 0)),
        )

    def submit_verdicts(self, rows: List[Dict[str, Any]]) -> int:
        """Attach validation verdicts to the fleet report.

        Each row is ``{"pcs": [pc, pc], "verdict": "confirmed" |
        "unconfirmed" | "infeasible"}`` — the wire shape of
        :meth:`repro.validate.ValidationReport.to_json` verdict entries.
        Returns how many rows the server accepted.
        """
        body = self._request_json(T_VERDICTS, {"verdicts": rows})
        return int(body.get("verdicts", 0))

    def status(self) -> Dict[str, Any]:
        return self._request(T_STATUS)

    def report(self) -> Dict[str, Any]:
        return self._request(T_REPORT)

    def shutdown_server(self) -> None:
        self._request(T_SHUTDOWN)


class TelemetrySink:
    """A harness event sink streaming a live run into the server.

    Plugs in wherever an :class:`~repro.detector.online.OnlineRaceDetector`
    would (``LiteRace(...).run(program, sink=sink)``); events are buffered
    and shipped as framed segments every ``segment_events`` events.  Call
    :meth:`close` (or use as a context manager) to flush the tail and wait
    for the server to finish analyzing.
    """

    def __init__(self, client: TelemetryClient, *, name: str = "live",
                 segment_events: int = 512, compress: bool = False):
        if segment_events < 1:
            raise ValueError("segment_events must be >= 1")
        self._client = client
        self._segment_events = segment_events
        self._compress = compress
        self._buffer: List[Event] = []
        self.segments_sent = 0
        self.events_sent = 0
        self.result: Optional[Dict[str, Any]] = None
        self._closed = False
        client.connect()
        if client.client_id is None:
            client.hello(name)

    def feed(self, event: Event) -> None:
        if self._closed:
            raise ValueError("sink is closed")
        self._buffer.append(event)
        if len(self._buffer) >= self._segment_events:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        frame = encode_segment(self._buffer, compress=self._compress)
        self._client.send_segment(frame)
        self.segments_sent += 1
        self.events_sent += len(self._buffer)
        self._buffer.clear()

    def close(self) -> Dict[str, Any]:
        """Flush the tail, END the log, return the server's analysis ack."""
        if self._closed:
            raise ValueError("sink already closed")
        self._flush()
        self.result = self._client.end_log(self.segments_sent)
        self._closed = True
        return self.result

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed and exc_type is None:
            self.close()
