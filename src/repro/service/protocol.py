"""The telemetry wire protocol: length-prefixed frames over a socket.

Every message is one *frame*::

    payload-length u32 (little-endian) + frame-type u8 + payload

Control frames (HELLO, END, STATUS, REPORT, and all responses) carry JSON
payloads; SEGMENT frames carry one binary segment
(:mod:`repro.eventlog.segment`) verbatim, so the hot ingest path never
touches JSON.  The server answers every request frame — SEGMENT with ACK
once the segment has cleared the bounded ingest queue, which is how
backpressure reaches the client: a slow server simply stops draining the
socket and the client's next send blocks.

Frame types::

    HELLO    client -> server   {"name": ...}            -> OK {"client_id"}
    SEGMENT  client -> server   <segment bytes>          -> ACK {"seq"}
    END      client -> server   {"segments": N}          -> OK {report stats}
    STATUS   any    -> server   {}                       -> OK {counters}
    REPORT   any    -> server   {}                       -> OK {report}
    VERDICTS any    -> server   {"verdicts": [...]}      -> OK {"verdicts": N}
    SHUTDOWN any    -> server   {}                       -> OK {}
    ERR      server -> client   {"error": ...}

VERDICTS rows are ``{"pcs": [pc, pc], "verdict": "confirmed" |
"unconfirmed" | "infeasible"}`` — the output of ``repro validate``
(:mod:`repro.validate`) fed back so the fleet report can label each
deduplicated race with its validation status.

Addresses are spelled ``unix:/path/to.sock`` or ``tcp:host:port``
(:func:`parse_address`), the same syntax the CLI flags take.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Tuple

from ..detector.races import RaceInstance, RaceReport

__all__ = [
    "T_HELLO", "T_SEGMENT", "T_END", "T_STATUS", "T_REPORT", "T_SHUTDOWN",
    "T_VERDICTS",
    "T_OK", "T_ACK", "T_ERR",
    "ProtocolError", "ConnectionClosed",
    "send_frame", "recv_frame", "send_json", "decode_json",
    "parse_address", "connect_to", "bind_listener",
    "report_to_wire", "report_from_wire",
]

T_HELLO = 1
T_SEGMENT = 2
T_END = 3
T_STATUS = 4
T_REPORT = 5
T_SHUTDOWN = 6
T_VERDICTS = 7

T_OK = 0x80
T_ACK = 0x81
T_ERR = 0xFF

_FRAME = struct.Struct("<IB")

#: Upper bound on one frame's payload; a length prefix beyond this is
#: treated as a torn/garbage connection rather than honored with a 4 GiB
#: allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """The peer violated the framing or message rules."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (possibly mid-frame)."""

    def __init__(self, message: str = "connection closed", *,
                 mid_frame: bool = False):
        super().__init__(message)
        self.mid_frame = mid_frame


def _recv_exact(sock: socket.socket, count: int, *,
                mid_frame: bool) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed(mid_frame=mid_frame or bool(chunks))
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, frame_type: int,
               payload: bytes = b"") -> None:
    sock.sendall(_FRAME.pack(len(payload), frame_type) + payload)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    header = _recv_exact(sock, _FRAME.size, mid_frame=False)
    length, frame_type = _FRAME.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    payload = _recv_exact(sock, length, mid_frame=True) if length else b""
    return frame_type, payload


def send_json(sock: socket.socket, frame_type: int, obj: Any) -> None:
    send_frame(sock, frame_type,
               json.dumps(obj, separators=(",", ":")).encode("utf-8"))


def decode_json(payload: bytes) -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON payload: {exc}") from None


# -- addresses -------------------------------------------------------------

def parse_address(spec: str) -> Tuple[str, Any]:
    """Parse ``unix:/path`` or ``tcp:host:port`` into (family, address)."""
    scheme, sep, rest = spec.partition(":")
    if not sep or not rest:
        raise ValueError(f"address {spec!r}: expected unix:PATH or "
                         f"tcp:HOST:PORT")
    if scheme == "unix":
        return "unix", rest
    if scheme == "tcp":
        host, sep, port = rest.rpartition(":")
        if not sep or not host:
            raise ValueError(f"address {spec!r}: tcp needs HOST:PORT")
        return "tcp", (host, int(port))
    raise ValueError(f"address {spec!r}: unknown scheme {scheme!r}")


def connect_to(spec: str, timeout: float = 30.0) -> socket.socket:
    """Open a client connection to a ``unix:``/``tcp:`` address."""
    family, address = parse_address(spec)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(address)
    return sock


def bind_listener(spec: str, backlog: int = 64) -> socket.socket:
    """Bind and listen on a ``unix:``/``tcp:`` address."""
    family, address = parse_address(spec)
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(address)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(address)
    sock.listen(backlog)
    return sock


# -- race-report serialization ---------------------------------------------

def report_to_wire(report: RaceReport) -> Dict[str, Any]:
    """A JSON-safe rendering of a report, exact enough to reconstruct it."""
    races = []
    for pc1, pc2, count in report.summary_rows():
        example = report.examples[(pc1, pc2)]
        races.append({
            "pcs": [pc1, pc2],
            "count": count,
            "example": {
                "addr": example.addr,
                "tids": [example.first_tid, example.second_tid],
                "pcs": [example.first_pc, example.second_pc],
                "writes": [example.first_is_write, example.second_is_write],
            },
        })
    return {"races": races, "addresses": sorted(report.addresses)}


def report_from_wire(wire: Dict[str, Any]) -> RaceReport:
    report = RaceReport()
    for row in wire["races"]:
        example = row["example"]
        key = (row["pcs"][0], row["pcs"][1])
        report.occurrences[key] = row["count"]
        report.examples[key] = RaceInstance(
            addr=example["addr"],
            first_tid=example["tids"][0],
            second_tid=example["tids"][1],
            first_pc=example["pcs"][0],
            second_pc=example["pcs"][1],
            first_is_write=example["writes"][0],
            second_is_write=example["writes"][1],
        )
    report.addresses.update(wire.get("addresses", ()))
    return report
