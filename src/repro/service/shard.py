"""Address-range sharding and the detector worker process.

A fleet of clients produces far more events than one interpreter can
analyze, so the server fans segments out to a pool of worker *processes*.
The partitioning is by **address range**: addresses are grouped into
64-byte blocks and blocks are assigned round-robin to ``num_shards``
logical shards (:func:`shard_of`).  Shards are logical — each worker owns a
*set* of shards, so when a worker dies its shards migrate to survivors and
the shard count (and therefore the routing) never changes.

The invariant that makes sharding exact (§4.2): every shard consumes the
client's **complete synchronization stream**, so every shard computes the
same vector clocks as a single detector would; memory events touch only
per-address state, so restricting a shard to its own addresses partitions
the race instances without altering any of them.  The union of shard
reports is therefore byte-for-byte the single-detector report's race set
and occurrence counts — no false positives, no lost races.

:func:`worker_main` is the process entry point.  It keeps one incremental
:class:`ShardDetector` per (client, shard) pair, created lazily, so a shard
reassigned after a crash rebuilds cleanly from a journal replay.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..detector.flat import FlatDetector
from ..detector.races import RaceReport
from ..eventlog.events import Event
from ..eventlog.segment import (DEFAULT_BATCH_EVENTS, SegmentBatcher,
                                SegmentColumns, columns_from_events)
from .protocol import report_to_wire

__all__ = ["SHARD_BLOCK_SHIFT", "shard_of", "ShardDetector", "worker_main"]

#: Addresses within the same 2**SHARD_BLOCK_SHIFT-byte block (a cache line)
#: always land on the same shard.
SHARD_BLOCK_SHIFT = 6


def shard_of(addr: int, num_shards: int) -> int:
    """The shard owning ``addr``'s 64-byte block."""
    return (addr >> SHARD_BLOCK_SHIFT) % num_shards


class ShardDetector:
    """An incremental happens-before detector restricted to one shard.

    Feed it a client's event stream in processing order; it consumes every
    sync event (keeping its happens-before relation complete) and exactly
    the memory events whose address belongs to shard ``shard_id``.
    """

    def __init__(self, shard_id: int, num_shards: int,
                 alloc_as_sync: bool = True,
                 batch_events: int = DEFAULT_BATCH_EVENTS):
        if not 0 <= shard_id < num_shards:
            raise ValueError(f"shard {shard_id} outside 0..{num_shards - 1}")
        self.shard_id = shard_id
        self.num_shards = num_shards
        self._detector = FlatDetector("hb", alloc_as_sync=alloc_as_sync)
        self._batcher = SegmentBatcher(self._consume,
                                       target_events=batch_events)
        self.sync_events = 0
        self.memory_events = 0
        self.segments = 0

    def _consume(self, cols: SegmentColumns) -> None:
        memory, sync = self._detector.feed_batch(
            cols, shard_id=self.shard_id, num_shards=self.num_shards,
            block_shift=SHARD_BLOCK_SHIFT)
        self.memory_events += memory
        self.sync_events += sync

    def feed_frame(self, data: bytes, offset: int = 0) -> int:
        """Buffer one *encoded* segment frame (the worker hot path).

        Frames accumulate until ``batch_events`` events are pending, then
        decode in one vectorized pass straight into the detector.  Decode
        errors from a poisoned payload surface here or at :meth:`flush` —
        the batcher discards the poisoned batch, so the detector keeps
        running on whatever decodes cleanly.  Returns the frame's declared
        event count (validated against the payload size).
        """
        count, _ = self._batcher.push(data, offset)
        self.segments += 1
        return count

    def flush(self) -> None:
        """Drain any frames still buffered by :meth:`feed_frame`."""
        self._batcher.flush()

    def feed_columns(self, cols: SegmentColumns) -> None:
        """Consume one decoded segment's columns immediately."""
        self._batcher.flush()
        self._consume(cols)
        self.segments += 1

    def feed(self, event: Event) -> None:
        """Per-event compatibility shim over the batched path."""
        self._batcher.flush()
        self._consume(columns_from_events((event,)))

    def feed_segment(self, events: Iterable[Event]) -> None:
        self._batcher.flush()
        self._consume(columns_from_events(list(events)))
        self.segments += 1

    @property
    def report(self) -> RaceReport:
        self._batcher.flush()
        return self._detector.report


def worker_main(worker_id: int, in_queue, out_queue, num_shards: int,
                alloc_as_sync: bool = True) -> None:
    """Detector worker loop (runs in a child process).

    Messages in (tuples, first element is the verb)::

        ("segment", client_id, seq, shard_ids, payload)
        ("finalize", client_id, shard_ids)
        ("discard", client_id)
        ("stop",)

    Messages out::

        ("ack", worker_id, client_id, seq, shard_ids, event_count)
        ("report", worker_id, client_id, shard_id, wire_report, segments)
        ("error", worker_id, client_id, seq, message)

    A malformed segment is reported and skipped rather than allowed to kill
    the process — a crash here would trigger a replay of the same poisoned
    segment on another worker, looping forever.
    """
    detectors: Dict[Tuple[int, int], ShardDetector] = {}

    def detector_for(client_id: int, shard_id: int) -> ShardDetector:
        key = (client_id, shard_id)
        state = detectors.get(key)
        if state is None:
            state = ShardDetector(shard_id, num_shards,
                                  alloc_as_sync=alloc_as_sync)
            detectors[key] = state
        return state

    while True:
        message = in_queue.get()
        verb = message[0]
        if verb == "stop":
            break
        if verb == "segment":
            _, client_id, seq, shard_ids, payload = message
            count = 0
            error = None
            for shard_id in shard_ids:
                # Per-shard isolation: a decode error raised while one
                # shard's batcher flushes must not keep the frame from the
                # remaining shards, or the shards' sync streams diverge.
                try:
                    count = detector_for(client_id,
                                         shard_id).feed_frame(payload)
                except Exception as exc:
                    # Catch everything: the server only validates the
                    # outer frame header, so a corrupt payload can surface
                    # as struct.error, zlib.error, ValueError, KeyError...
                    # The batcher salvages around the poisoned frame, so
                    # later segments still analyze cleanly.
                    error = exc
            if error is not None:
                out_queue.put(("error", worker_id, client_id, seq,
                               f"bad segment: {error}"))
                continue
            out_queue.put(("ack", worker_id, client_id, seq,
                           tuple(shard_ids), count))
        elif verb == "finalize":
            _, client_id, shard_ids = message
            for shard_id in shard_ids:
                state = detectors.pop((client_id, shard_id), None)
                if state is None:
                    # The shard never saw a segment for this client (e.g.
                    # an empty log); report an empty shard result so the
                    # aggregator's completion count still adds up.
                    state = ShardDetector(shard_id, num_shards,
                                          alloc_as_sync=alloc_as_sync)
                try:
                    state.flush()
                except Exception as exc:
                    # A poisoned payload buffered since the last flush:
                    # report it, then publish what decoded cleanly.
                    out_queue.put(("error", worker_id, client_id, -1,
                                   f"bad segment: {exc}"))
                out_queue.put(("report", worker_id, client_id, shard_id,
                               report_to_wire(state.report),
                               state.segments))
        elif verb == "discard":
            _, client_id = message
            for key in [k for k in detectors if k[0] == client_id]:
                del detectors[key]
