"""The race-telemetry daemon: ``repro serve``.

One :class:`TelemetryServer` is the central analyzer of the paper's
deployment story (§4.4): beta machines run instrumented binaries, stream
their event logs here, and races are triaged centrally, deduplicated across
the whole fleet by PC pair.

Data flow::

    clients ──frames──▶ connection threads ──▶ bounded ingest queue
        ──▶ dispatcher ──▶ per-worker mp queues ──▶ detector workers
        ──▶ result queue ──▶ collector ──▶ aggregator (dedup + persist)

* **Backpressure**: the ingest queue is bounded; a SEGMENT frame is only
  ACKed once its payload clears the queue, so a flooded server slows its
  clients instead of growing without bound.
* **Sharding**: ``num_shards`` logical shards partition the address space
  (:func:`repro.service.shard.shard_of`); each worker process owns a set of
  shards.  Every worker receives every segment once, tagged with the shards
  it owns — sync events feed *all* of them (complete happens-before per
  shard, §4.2), memory events only their own shard.
* **Crash tolerance**: the dispatcher journals every segment before
  routing it.  A supervisor watches the workers; when one dies its shards
  are reassigned to survivors (or a fresh replacement) and the journal is
  replayed for exactly the (client, shard) states that were lost — the
  in-flight segment is requeued along the way.  A torn client connection
  discards only that client's pending state; the server never corrupts.
* **Aggregation**: per-(client, shard) reports are merged in deterministic
  order, deduplicated by PC pair, optionally filtered through a
  :class:`~repro.core.suppressions.SuppressionList`, and served over the
  STATUS/REPORT endpoints.  With a ``state_dir`` the merged report is
  persisted after every completed client and reloaded on restart.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from ..core.suppressions import SuppressionList
from ..detector.races import RaceReport
from ..eventlog.segment import segment_event_count
from ..tir.program import Program
from . import protocol
from .protocol import (
    ConnectionClosed,
    ProtocolError,
    T_ACK,
    T_END,
    T_ERR,
    T_HELLO,
    T_OK,
    T_REPORT,
    T_SEGMENT,
    T_SHUTDOWN,
    T_STATUS,
    T_VERDICTS,
    bind_listener,
    decode_json,
    recv_frame,
    report_from_wire,
    report_to_wire,
    send_json,
)
from .shard import worker_main
from ..validate.verdict import RaceVerdict, strongest_verdict

__all__ = ["TelemetryServer"]

if "fork" in multiprocessing.get_all_start_methods():
    _MP = multiprocessing.get_context("fork")
else:  # pragma: no cover - non-POSIX fallback
    _MP = multiprocessing.get_context()

_SNAPSHOT_FILE = "report.json"


class _Worker:
    """One detector process plus its private input queue."""

    __slots__ = ("process", "in_queue")

    def __init__(self, process, in_queue):
        self.process = process
        self.in_queue = in_queue

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _ClientState:
    """Everything the server tracks about one submitting client."""

    __slots__ = ("client_id", "name", "journal", "enqueued", "ended",
                 "aborted", "shard_reports", "report", "completed")

    def __init__(self, client_id: int, name: str):
        self.client_id = client_id
        self.name = name
        #: raw segment payloads in seq order — the replay journal
        self.journal: List[bytes] = []
        self.enqueued = 0
        self.ended = False
        self.aborted = False
        self.shard_reports: Dict[int, RaceReport] = {}
        self.report: Optional[RaceReport] = None
        self.completed = threading.Event()


class TelemetryServer:
    """Sharded streaming race detection over fleet-submitted event logs."""

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        workers: int = 2,
        shards: Optional[int] = None,
        queue_depth: int = 64,
        alloc_as_sync: bool = True,
        state_dir: Optional[str] = None,
        program: Optional[Program] = None,
        suppressions: Optional[SuppressionList] = None,
        finalize_timeout: float = 60.0,
    ):
        if not addresses:
            raise ValueError("at least one listen address is required")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.num_shards = shards if shards is not None else workers
        if self.num_shards < 1:
            raise ValueError("shards must be >= 1")
        self._address_specs = list(addresses)
        self._num_workers = workers
        self._queue_depth = queue_depth
        self._alloc_as_sync = alloc_as_sync
        self._state_dir = state_dir
        self._program = program
        self._suppressions = suppressions
        self._finalize_timeout = finalize_timeout

        self._mu = threading.RLock()
        self._clients: Dict[int, _ClientState] = {}
        self._next_client_id = 1
        self._ingest: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._workers: List[_Worker] = []
        self._shard_owner: List[int] = []
        self._result_queue = _MP.Queue()
        self._threads: List[threading.Thread] = []
        self._listeners: List[socket.socket] = []
        self._connections: set = set()
        self._stopping = False
        self._started = False
        self._start_time = 0.0
        self.shutdown_requested = threading.Event()

        self._baseline_report = RaceReport()
        self._counters: Dict[str, int] = {
            "segments_ingested": 0,
            "bytes_ingested": 0,
            "events_analyzed": 0,
            "clients_total": 0,
            "clients_completed": 0,
            "clients_aborted": 0,
            "connections_torn": 0,
            "protocol_errors": 0,
            "segment_errors": 0,
            "worker_failures": 0,
            "snapshot_errors": 0,
            "verdicts_received": 0,
        }
        #: Validation verdicts keyed by (pc_low, pc_high); merged with
        #: CONFIRMED > INFEASIBLE > UNCONFIRMED precedence so a weaker
        #: verdict from one submitter never downgrades a proof from another.
        self._verdicts: Dict[tuple, str] = {}
        self._dispatched: Dict[int, int] = {s: 0 for s in range(self.num_shards)}
        self._acked: Dict[int, int] = {s: 0 for s in range(self.num_shards)}

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._start_time = time.monotonic()
        self._load_snapshot()
        # Workers are forked before any service thread exists so the
        # children never inherit a mid-operation lock.
        for index in range(self._num_workers):
            self._workers.append(self._spawn_worker(index))
        self._shard_owner = [s % self._num_workers
                            for s in range(self.num_shards)]
        for spec in self._address_specs:
            listener = bind_listener(spec)
            self._listeners.append(listener)
            self._start_thread(self._accept_loop, listener,
                               name=f"accept-{spec}")
        self._start_thread(self._dispatch_loop, name="dispatcher")
        self._start_thread(self._collect_loop, name="collector")
        self._start_thread(self._supervise_loop, name="supervisor")

    @property
    def addresses(self) -> List[str]:
        """Bound addresses with ephemeral TCP ports resolved."""
        specs = []
        for listener in self._listeners:
            if listener.family == socket.AF_UNIX:
                specs.append(f"unix:{listener.getsockname()}")
            else:
                host, port = listener.getsockname()[:2]
                specs.append(f"tcp:{host}:{port}")
        return specs

    def serve_forever(self) -> None:
        """Block until a SHUTDOWN frame (or KeyboardInterrupt), then stop."""
        try:
            self.shutdown_requested.wait()
        except KeyboardInterrupt:
            pass
        self.stop()

    def stop(self) -> None:
        with self._mu:
            if self._stopping:
                return
            self._stopping = True
        self.shutdown_requested.set()
        for listener in self._listeners:
            try:
                listener.close()
            except OSError:
                pass
        with self._mu:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for worker in self._workers:
            if worker.alive:
                try:
                    worker.in_queue.put(("stop",))
                except (ValueError, OSError):
                    pass
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=1.0)
        for thread in self._threads:
            thread.join(timeout=2.0)
        # Unix socket files are not removed by close().
        for spec in self._address_specs:
            family, address = protocol.parse_address(spec)
            if family == "unix":
                try:
                    os.unlink(address)
                except OSError:
                    pass

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- workers -----------------------------------------------------------
    def _spawn_worker(self, index: int) -> _Worker:
        in_queue = _MP.Queue()
        process = _MP.Process(
            target=worker_main,
            args=(index, in_queue, self._result_queue, self.num_shards,
                  self._alloc_as_sync),
            daemon=True,
            name=f"repro-detector-{index}",
        )
        process.start()
        return _Worker(process, in_queue)

    def _shards_of_worker(self, index: int) -> tuple:
        return tuple(s for s in range(self.num_shards)
                     if self._shard_owner[s] == index)

    def _live_worker_indices(self) -> List[int]:
        return [i for i, w in enumerate(self._workers) if w.alive]

    # -- service threads ---------------------------------------------------
    def _start_thread(self, target, *args, name: str) -> None:
        thread = threading.Thread(target=target, args=args,
                                  name=f"telemetry-{name}", daemon=True)
        thread.start()
        self._threads.append(thread)

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._stopping:
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            with self._mu:
                if self._stopping:
                    conn.close()
                    return
                self._connections.add(conn)
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True,
                                      name="telemetry-conn")
            thread.start()

    def _dispatch_loop(self) -> None:
        while True:
            try:
                item = self._ingest.get(timeout=0.1)
            except queue.Empty:
                if self._stopping:
                    return
                continue
            with self._mu:
                verb = item[0]
                if verb == "segment":
                    _, client_id, seq, payload = item
                    self._route_segment(client_id, seq, payload)
                elif verb == "end":
                    self._route_end(item[1])
                elif verb == "discard":
                    self._route_discard(item[1])

    def _route_segment(self, client_id: int, seq: int,
                       payload: bytes) -> None:
        state = self._clients.get(client_id)
        if state is None or state.aborted:
            return
        assert seq == len(state.journal), "segments out of order"
        state.journal.append(payload)
        for index in self._live_worker_indices():
            shard_ids = self._shards_of_worker(index)
            if not shard_ids:
                continue
            self._workers[index].in_queue.put(
                ("segment", client_id, seq, shard_ids, payload))
            for shard_id in shard_ids:
                self._dispatched[shard_id] += 1

    def _route_end(self, client_id: int) -> None:
        state = self._clients.get(client_id)
        if state is None or state.aborted:
            return
        state.ended = True
        for index in self._live_worker_indices():
            shard_ids = self._shards_of_worker(index)
            if shard_ids:
                self._workers[index].in_queue.put(
                    ("finalize", client_id, shard_ids))

    def _route_discard(self, client_id: int) -> None:
        state = self._clients.get(client_id)
        if state is not None:
            state.journal.clear()
        for index in self._live_worker_indices():
            self._workers[index].in_queue.put(("discard", client_id))

    def _collect_loop(self) -> None:
        while True:
            try:
                message = self._result_queue.get(timeout=0.1)
            except queue.Empty:
                if self._stopping:
                    return
                continue
            except (EOFError, OSError):  # pragma: no cover - teardown race
                return
            with self._mu:
                verb = message[0]
                if verb == "ack":
                    _, _, _, _, shard_ids, event_count = message
                    for shard_id in shard_ids:
                        self._acked[shard_id] += 1
                    self._counters["events_analyzed"] += event_count
                elif verb == "report":
                    _, _, client_id, shard_id, wire, _ = message
                    self._on_shard_report(client_id, shard_id, wire)
                elif verb == "error":
                    self._counters["segment_errors"] += 1

    def _on_shard_report(self, client_id: int, shard_id: int,
                         wire: Dict[str, Any]) -> None:
        state = self._clients.get(client_id)
        if state is None or state.aborted or state.completed.is_set():
            return
        if shard_id in state.shard_reports:
            return  # duplicate from a pre-crash worker's last gasp
        state.shard_reports[shard_id] = report_from_wire(wire)
        if state.ended and len(state.shard_reports) == self.num_shards:
            merged = RaceReport()
            for sid in sorted(state.shard_reports):
                merged.merge(state.shard_reports[sid])
            state.report = merged
            # The journal exists only so a crash can replay this client's
            # segments; nothing replays a completed client, so release the
            # payloads (and the now-merged shard reports) instead of
            # holding every submitted byte for the daemon's lifetime.
            state.journal.clear()
            state.shard_reports.clear()
            self._counters["clients_completed"] += 1
            state.completed.set()
            try:
                self._write_snapshot()
            except Exception:
                # A failed snapshot (disk full, bad state_dir) must not
                # kill the collector thread — the in-memory report is
                # intact and the next completion retries the write.
                self._counters["snapshot_errors"] += 1

    def _supervise_loop(self) -> None:
        while not self._stopping:
            time.sleep(0.15)
            with self._mu:
                if self._stopping:
                    return
                for index, worker in enumerate(self._workers):
                    if worker.process is not None and not worker.alive:
                        self._on_worker_death(index)

    def _on_worker_death(self, index: int) -> None:
        """Reassign a dead worker's shards and replay the journal (held _mu)."""
        self._counters["worker_failures"] += 1
        worker = self._workers[index]
        worker.process.join(timeout=1.0)
        worker.process = None
        lost = self._shards_of_worker(index)
        survivors = self._live_worker_indices()
        if not survivors:
            # Last worker standing died: spawn a replacement with a fresh
            # queue (the old queue's in-flight items are covered by replay).
            self._workers[index] = self._spawn_worker(index)
            survivors = [index]
        for position, shard_id in enumerate(lost):
            self._shard_owner[shard_id] = survivors[position % len(survivors)]
        # Replay per new owner, skipping (client, shard) states whose report
        # already arrived before the crash.
        for owner in set(self._shard_owner[s] for s in lost):
            owned_lost = tuple(s for s in lost
                               if self._shard_owner[s] == owner)
            in_queue = self._workers[owner].in_queue
            for client_id in sorted(self._clients):
                state = self._clients[client_id]
                if state.aborted or state.completed.is_set():
                    continue
                needed = tuple(s for s in owned_lost
                               if s not in state.shard_reports)
                if not needed:
                    continue
                for seq, payload in enumerate(state.journal):
                    in_queue.put(("segment", client_id, seq, needed, payload))
                    for shard_id in needed:
                        self._dispatched[shard_id] += 1
                if state.ended:
                    in_queue.put(("finalize", client_id, needed))

    # -- connections -------------------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        client_id: Optional[int] = None
        torn = False
        try:
            while True:
                try:
                    frame_type, payload = recv_frame(conn)
                except ConnectionClosed as exc:
                    torn = exc.mid_frame
                    break
                except ProtocolError:
                    torn = True
                    with self._mu:
                        self._counters["protocol_errors"] += 1
                    break
                except (OSError, ValueError):
                    break
                try:
                    client_id, done = self._handle_frame(
                        conn, frame_type, payload, client_id)
                except (OSError, ValueError):
                    break
                if done:
                    break
        finally:
            with self._mu:
                self._connections.discard(conn)
                state = self._clients.get(client_id) if client_id else None
                mid_stream = (state is not None and not state.ended
                              and not state.aborted)
                if torn and not self._stopping:
                    self._counters["connections_torn"] += 1
                if mid_stream and not self._stopping:
                    # The log will never complete; drop its partial state so
                    # it cannot skew the fleet report.
                    state.aborted = True
                    self._counters["clients_aborted"] += 1
            if state is not None and state.aborted:
                self._ingest.put(("discard", client_id))
            try:
                conn.close()
            except OSError:
                pass

    def _handle_frame(self, conn: socket.socket, frame_type: int,
                      payload: bytes, client_id: Optional[int]):
        """Dispatch one frame; returns (client_id, connection_done)."""
        if frame_type == T_HELLO:
            body = self._decode_body(conn, payload)
            if body is None:
                return client_id, False
            with self._mu:
                new_id = self._next_client_id
                self._next_client_id += 1
                self._clients[new_id] = _ClientState(
                    new_id, str(body.get("name", f"client-{new_id}")))
                self._counters["clients_total"] += 1
            send_json(conn, T_OK, {"client_id": new_id})
            return new_id, False

        if frame_type == T_SEGMENT:
            if client_id is None:
                self._protocol_error(conn, "SEGMENT before HELLO")
                return client_id, False
            try:
                segment_event_count(payload)
            except ValueError as exc:
                self._protocol_error(conn, f"bad segment: {exc}")
                return client_id, False
            with self._mu:
                state = self._clients[client_id]
                if state.ended:
                    self._protocol_error(conn, "SEGMENT after END")
                    return client_id, False
                seq = state.enqueued
                state.enqueued += 1
            # Blocking put — this is the backpressure point; no lock held.
            self._ingest.put(("segment", client_id, seq, payload))
            with self._mu:
                self._counters["segments_ingested"] += 1
                self._counters["bytes_ingested"] += len(payload)
            send_json(conn, T_ACK, {"seq": seq})
            return client_id, False

        if frame_type == T_END:
            if client_id is None:
                self._protocol_error(conn, "END before HELLO")
                return client_id, False
            body = self._decode_body(conn, payload)
            if body is None:
                return client_id, False
            with self._mu:
                state = self._clients[client_id]
                try:
                    expected = int(body.get("segments", state.enqueued))
                except (TypeError, ValueError):
                    self._protocol_error(
                        conn, "END segments must be an integer")
                    return client_id, False
                if expected != state.enqueued or state.ended:
                    self._protocol_error(
                        conn, f"END claims {expected} segments, "
                              f"server saw {state.enqueued}")
                    return client_id, False
            self._ingest.put(("end", client_id))
            if not state.completed.wait(timeout=self._finalize_timeout):
                with self._mu:
                    # Re-check under the lock: completion may have landed
                    # just after the timeout fired.
                    timed_out = not state.completed.is_set()
                    if timed_out and not state.aborted:
                        # Reclaim the stuck state — otherwise it sits in
                        # clients_pending forever, its journal is replayed
                        # on every worker death, and END can never be
                        # retried (a second END fails validation).
                        state.aborted = True
                        self._counters["clients_aborted"] += 1
                if timed_out:
                    self._ingest.put(("discard", client_id))
                    send_json(conn, T_ERR, {"error": "finalize timed out"})
                    return client_id, False
            with self._mu:
                races = state.report.num_static if state.report else 0
            send_json(conn, T_OK, {"segments": expected, "races": races})
            return client_id, False

        if frame_type == T_STATUS:
            send_json(conn, T_OK, self.status())
            return client_id, False

        if frame_type == T_REPORT:
            send_json(conn, T_OK, self.fleet_report())
            return client_id, False

        if frame_type == T_VERDICTS:
            body = self._decode_body(conn, payload)
            if body is None:
                return client_id, False
            rows = body.get("verdicts")
            if not isinstance(rows, list):
                self._protocol_error(conn, "VERDICTS needs a verdicts list")
                return client_id, False
            accepted = 0
            try:
                parsed = []
                for row in rows:
                    pcs = row["pcs"]
                    low, high = sorted((int(pcs[0]), int(pcs[1])))
                    value = RaceVerdict(str(row["verdict"])).value
                    parsed.append(((low, high), value))
            except (KeyError, IndexError, TypeError, ValueError) as exc:
                self._protocol_error(conn, f"bad verdict row: {exc}")
                return client_id, False
            with self._mu:
                for key, value in parsed:
                    known = self._verdicts.get(key)
                    self._verdicts[key] = (
                        value if known is None
                        else strongest_verdict(known, value))
                    accepted += 1
                self._counters["verdicts_received"] += accepted
                try:
                    self._write_snapshot()
                except Exception:
                    self._counters["snapshot_errors"] += 1
            send_json(conn, T_OK, {"verdicts": accepted})
            return client_id, False

        if frame_type == T_SHUTDOWN:
            send_json(conn, T_OK, {})
            self.shutdown_requested.set()
            return client_id, True

        self._protocol_error(conn, f"unknown frame type {frame_type}")
        return client_id, False

    def _decode_body(self, conn: socket.socket,
                     payload: bytes) -> Optional[Dict[str, Any]]:
        """Decode a frame's JSON object body, or ERR the peer and return
        None — bad JSON must never escape the frame handler (it would kill
        the connection thread without a reply)."""
        try:
            body = decode_json(payload) if payload else {}
        except ProtocolError as exc:
            self._protocol_error(conn, str(exc))
            return None
        if not isinstance(body, dict):
            self._protocol_error(conn, "frame body must be a JSON object")
            return None
        return body

    def _protocol_error(self, conn: socket.socket, message: str) -> None:
        with self._mu:
            self._counters["protocol_errors"] += 1
        send_json(conn, T_ERR, {"error": message})

    # -- aggregation & introspection ---------------------------------------
    def _merged_report(self) -> RaceReport:
        """Fleet-wide deduped report, deterministic merge order (held _mu)."""
        merged = RaceReport()
        merged.merge(self._baseline_report)
        for client_id in sorted(self._clients):
            state = self._clients[client_id]
            if state.report is not None:
                merged.merge(state.report)
        return merged

    def status(self) -> Dict[str, Any]:
        """The counters the status endpoint serves."""
        with self._mu:
            uptime = max(time.monotonic() - self._start_time, 1e-9)
            merged = self._merged_report()
            counters = dict(self._counters)
            lag = {str(s): self._dispatched[s] - self._acked[s]
                   for s in range(self.num_shards)}
            pending = sum(
                1 for c in self._clients.values()
                if not c.aborted and not c.completed.is_set())
            return {
                **counters,
                "uptime_s": round(uptime, 3),
                "bytes_per_s": round(counters["bytes_ingested"] / uptime, 1),
                "queue_depth": self._ingest.qsize(),
                "queue_capacity": self._queue_depth,
                "num_shards": self.num_shards,
                "workers_alive": len(self._live_worker_indices()),
                "shard_lag": lag,
                "clients_pending": pending,
                "races_found": merged.num_static,
                "verdicts_known": len(self._verdicts),
            }

    def fleet_report(self) -> Dict[str, Any]:
        """The deduped fleet-wide race report the report endpoint serves."""
        with self._mu:
            merged = self._merged_report()
            suppressed = 0
            if self._suppressions is not None and self._program is not None:
                merged, dropped = (
                    self._suppressions.split(merged, self._program))
                suppressed = dropped.num_static
            wire = report_to_wire(merged)
            for row in wire["races"]:
                if self._program is not None:
                    row["symbols"] = [self._program.symbolize(pc)
                                      for pc in row["pcs"]]
                key = (min(row["pcs"]), max(row["pcs"]))
                verdict = self._verdicts.get(key)
                if verdict is not None:
                    row["verdict"] = verdict
            pending = sum(
                1 for c in self._clients.values()
                if not c.aborted and not c.completed.is_set())
            return {
                "report": wire,
                "num_static": merged.num_static,
                "num_dynamic": merged.num_dynamic,
                "suppressed": suppressed,
                "clients_completed": self._counters["clients_completed"],
                "clients_pending": pending,
            }

    # -- persistence -------------------------------------------------------
    def _snapshot_path(self) -> Optional[str]:
        if self._state_dir is None:
            return None
        return os.path.join(self._state_dir, _SNAPSHOT_FILE)

    def _load_snapshot(self) -> None:
        path = self._snapshot_path()
        if path is None:
            return
        os.makedirs(self._state_dir, exist_ok=True)
        if not os.path.exists(path):
            return
        import json

        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        self._baseline_report = report_from_wire(snapshot["report"])
        for key, value in snapshot.get("verdicts", {}).items():
            low, high = key.split(",", 1)
            self._verdicts[(int(low), int(high))] = RaceVerdict(value).value

    def _write_snapshot(self) -> None:
        path = self._snapshot_path()
        if path is None:
            return
        import json

        snapshot = {
            "report": report_to_wire(self._merged_report()),
            "verdicts": {f"{low},{high}": value
                         for (low, high), value in self._verdicts.items()},
        }
        tmp_path = f"{path}.tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
