"""Validation verdicts: what the director concluded about each pair.

Three verdicts, three different claims:

* ``CONFIRMED`` — the pair raced in a directed execution and the attached
  witness trace deterministically re-triggers the race on strict replay.
  This is a proof, not a probability.
* ``INFEASIBLE`` — the ordering is provably blocked by synchronization
  (the sound static pass rules the pair out, or a PC is not a memory
  access).  Also a proof, in the other direction.
* ``UNCONFIRMED`` — the attempt budget ran out with neither proof.  Says
  nothing about the race's reality; re-run with a larger budget.

A :class:`ValidationReport` aggregates the per-pair verdicts with enough
run metadata to reproduce the validation, serializes to JSON (witnesses
ride along as separate ``.ltrt`` files), exports INFEASIBLE pairs as a
:class:`~repro.core.suppressions.SuppressionList`, and feeds verdict
annotations into triage rendering and the telemetry service.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.suppressions import Suppression, SuppressionList
from ..tir.program import Program
from .trace import ScheduleTrace

__all__ = [
    "RaceVerdict",
    "PairVerdict",
    "ValidationReport",
    "VERDICT_PRECEDENCE",
    "strongest_verdict",
]

Pair = Tuple[int, int]

_REPORT_VERSION = 1


class RaceVerdict(enum.Enum):
    """The director's conclusion for one candidate pair."""

    CONFIRMED = "confirmed"
    UNCONFIRMED = "unconfirmed"
    INFEASIBLE = "infeasible"


#: Merge precedence for fleet aggregation: a proof (either direction)
#: always beats budget exhaustion, and a positive witness beats a static
#: argument (if both somehow arrive, the witness wins — it is an actual
#: execution).
VERDICT_PRECEDENCE = {
    RaceVerdict.CONFIRMED: 2,
    RaceVerdict.INFEASIBLE: 1,
    RaceVerdict.UNCONFIRMED: 0,
}


def strongest_verdict(first: str, second: str) -> str:
    """Pick the higher-precedence of two verdict value strings."""
    a, b = RaceVerdict(first), RaceVerdict(second)
    return (a if VERDICT_PRECEDENCE[a] >= VERDICT_PRECEDENCE[b] else b).value


@dataclass
class PairVerdict:
    """One pair's verdict plus the evidence behind it."""

    pair: Pair
    verdict: RaceVerdict
    attempts: int = 0
    mode: Optional[str] = None
    witness: Optional[ScheduleTrace] = None
    witness_path: Optional[str] = None
    note: str = ""

    @property
    def witness_steps(self) -> int:
        return len(self.witness) if self.witness is not None else 0

    @property
    def witness_switches(self) -> int:
        return self.witness.num_switches if self.witness is not None else 0

    def symbols(self, program: Program) -> Tuple[str, str]:
        return (program.symbolize(self.pair[0]),
                program.symbolize(self.pair[1]))

    def to_wire(self, program: Optional[Program] = None) -> Dict:
        wire: Dict = {
            "pcs": [self.pair[0], self.pair[1]],
            "verdict": self.verdict.value,
            "attempts": self.attempts,
        }
        if self.mode:
            wire["mode"] = self.mode
        if self.witness is not None or self.witness_path:
            wire["witness"] = self.witness_path
            wire["witness_steps"] = self.witness_steps
            wire["witness_switches"] = self.witness_switches
        if self.note:
            wire["note"] = self.note
        if program is not None:
            wire["symbols"] = list(self.symbols(program))
        return wire

    @classmethod
    def from_wire(cls, wire: Dict) -> "PairVerdict":
        pcs = wire["pcs"]
        pair = (min(pcs), max(pcs))
        verdict = cls(
            pair=pair,
            verdict=RaceVerdict(wire["verdict"]),
            attempts=int(wire.get("attempts", 0)),
            mode=wire.get("mode"),
            witness_path=wire.get("witness"),
            note=wire.get("note", ""),
        )
        return verdict


@dataclass
class ValidationReport:
    """All verdicts from one ``repro validate`` invocation."""

    program_name: str
    workload: str = ""
    seed: int = 0
    scale: float = 1.0
    budget: int = 0
    source: str = ""
    verdicts: List[PairVerdict] = field(default_factory=list)

    # -- queries -----------------------------------------------------------
    def by_verdict(self, verdict: RaceVerdict) -> List[PairVerdict]:
        return [v for v in self.verdicts if v.verdict is verdict]

    @property
    def confirmed(self) -> List[PairVerdict]:
        return self.by_verdict(RaceVerdict.CONFIRMED)

    def verdict_of(self, pair: Pair) -> Optional[RaceVerdict]:
        key = (min(pair), max(pair))
        for entry in self.verdicts:
            if entry.pair == key:
                return entry.verdict
        return None

    def counts(self) -> Dict[str, int]:
        out = {v.value: 0 for v in RaceVerdict}
        for entry in self.verdicts:
            out[entry.verdict.value] += 1
        return out

    def verdict_map(self) -> Dict[Pair, str]:
        """``{(pc_low, pc_high): verdict_value}`` for triage/telemetry."""
        return {entry.pair: entry.verdict.value for entry in self.verdicts}

    # -- witnesses ---------------------------------------------------------
    def save_witnesses(self, directory) -> int:
        """Write every in-memory witness as ``<dir>/pair_L_H.ltrt``."""
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        saved = 0
        for entry in self.verdicts:
            if entry.witness is None:
                continue
            path = os.path.join(
                directory, f"pair_{entry.pair[0]}_{entry.pair[1]}.ltrt")
            entry.witness.save(path)
            entry.witness_path = path
            saved += 1
        return saved

    def load_witness(self, entry: PairVerdict) -> ScheduleTrace:
        if entry.witness is not None:
            return entry.witness
        if not entry.witness_path:
            raise ValueError(f"pair {entry.pair} has no witness")
        entry.witness = ScheduleTrace.load(entry.witness_path)
        return entry.witness

    # -- serialization -----------------------------------------------------
    def to_json(self, program: Optional[Program] = None) -> Dict:
        return {
            "version": _REPORT_VERSION,
            "program": self.program_name,
            "workload": self.workload,
            "seed": self.seed,
            "scale": self.scale,
            "budget": self.budget,
            "source": self.source,
            "counts": self.counts(),
            "verdicts": [v.to_wire(program) for v in self.verdicts],
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "ValidationReport":
        version = payload.get("version")
        if version != _REPORT_VERSION:
            raise ValueError(f"unsupported validation report v{version}")
        report = cls(
            program_name=payload.get("program", ""),
            workload=payload.get("workload", ""),
            seed=int(payload.get("seed", 0)),
            scale=float(payload.get("scale", 1.0)),
            budget=int(payload.get("budget", 0)),
            source=payload.get("source", ""),
        )
        report.verdicts = [
            PairVerdict.from_wire(wire) for wire in payload.get("verdicts", [])
        ]
        return report

    def save(self, path, program: Optional[Program] = None) -> None:
        data = json.dumps(self.to_json(program), indent=2, sort_keys=True)
        tmp_path = f"{os.fspath(path)}.tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                handle.write(data + "\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path) -> "ValidationReport":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    # -- downstream exports ------------------------------------------------
    def to_suppressions(self, program: Program) -> SuppressionList:
        """INFEASIBLE pairs as suppression rules (provably cannot race)."""
        rules = SuppressionList()
        seen = set()
        for entry in self.by_verdict(RaceVerdict.INFEASIBLE):
            func1 = program.function_of_pc(entry.pair[0])
            func2 = program.function_of_pc(entry.pair[1])
            key = tuple(sorted((func1, func2)))
            if key in seen:
                continue
            seen.add(key)
            reason = entry.note or "infeasible (validated)"
            rules.add(Suppression(func1, func2, reason))
        return rules

    # -- rendering ---------------------------------------------------------
    def summary_lines(self, program: Optional[Program] = None) -> List[str]:
        counts = self.counts()
        lines = [
            f"validation: {len(self.verdicts)} pair(s) — "
            f"{counts['confirmed']} confirmed, "
            f"{counts['unconfirmed']} unconfirmed, "
            f"{counts['infeasible']} infeasible "
            f"(budget {self.budget} attempt(s)/pair)"
        ]
        for entry in self.verdicts:
            if program is not None:
                first, second = entry.symbols(program)
            else:
                first, second = (f"pc:{entry.pair[0]}", f"pc:{entry.pair[1]}")
            line = (f"  {entry.verdict.value.upper():<11} "
                    f"{first} <-> {second}")
            if entry.verdict is RaceVerdict.CONFIRMED:
                line += (f"  [attempt {entry.attempts}, {entry.mode}; "
                         f"witness {entry.witness_steps} steps / "
                         f"{entry.witness_switches} switches]")
            elif entry.verdict is RaceVerdict.UNCONFIRMED:
                line += f"  [{entry.attempts} attempt(s) exhausted]"
            if entry.note:
                line += f"  ({entry.note})"
            lines.append(line)
        return lines
