"""Schedule traces: the record half of record/replay.

An execution in this system is fully determined by its program and the
sequence of scheduler decisions — one tid per executor step.  A
:class:`ScheduleTrace` captures that decision sequence in a compact,
versioned binary format (run-length encoded: schedules are long runs of the
same thread punctuated by switches), together with a JSON metadata blob
naming how to rebuild the execution (workload, seed, scale, tool
configuration, and — for directed witnesses — the candidate PC pair).

A :class:`RecordingScheduler` wraps any policy and transcribes its
decisions as they are made.  Steps the directed gate turned into parks
(no effect, no events) can be marked and dropped, so the trace of a gated
run replays exactly on a plain executor — see
:class:`repro.runtime.executor.AccessGate`.

Wire format (little-endian), version 1::

    magic b"LTRT" + version u16 + reserved u16
    meta-length u32 + UTF-8 JSON metadata
    total-steps u64 + segment-count u32
    segments: (tid u32, run-length u32) each
"""

from __future__ import annotations

import json
import os
import struct
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..runtime.scheduler import Scheduler

__all__ = ["ScheduleTrace", "RecordingScheduler", "TraceError"]

_MAGIC = b"LTRT"
_VERSION = 1

_HEADER = struct.Struct("<4sHH")
_META_LEN = struct.Struct("<I")
_COUNTS = struct.Struct("<QI")
_SEGMENT = struct.Struct("<II")


class TraceError(ValueError):
    """Malformed schedule-trace bytes."""


def _run_length(decisions: Sequence[int]) -> List[Tuple[int, int]]:
    segments: List[Tuple[int, int]] = []
    for tid in decisions:
        if segments and segments[-1][0] == tid:
            segments[-1] = (tid, segments[-1][1] + 1)
        else:
            segments.append((tid, 1))
    return segments


class ScheduleTrace:
    """An immutable recorded decision sequence plus its metadata."""

    def __init__(self, decisions: Sequence[int],
                 meta: Optional[Dict] = None):
        self._decisions: Tuple[int, ...] = tuple(decisions)
        self.meta: Dict = dict(meta or {})

    # -- views -------------------------------------------------------------
    @property
    def decisions(self) -> Tuple[int, ...]:
        return self._decisions

    @property
    def segments(self) -> List[Tuple[int, int]]:
        """Run-length view: maximal ``(tid, steps)`` runs in order."""
        return _run_length(self._decisions)

    @property
    def num_switches(self) -> int:
        """Context switches — the minimization objective."""
        return max(0, len(self.segments) - 1)

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[int]:
        return iter(self._decisions)

    def __eq__(self, other) -> bool:
        return (isinstance(other, ScheduleTrace)
                and self._decisions == other._decisions
                and self.meta == other.meta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScheduleTrace({len(self)} steps, "
                f"{self.num_switches} switches)")

    # -- serialization -----------------------------------------------------
    def to_bytes(self) -> bytes:
        meta_blob = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        segments = self.segments
        parts = [
            _HEADER.pack(_MAGIC, _VERSION, 0),
            _META_LEN.pack(len(meta_blob)),
            meta_blob,
            _COUNTS.pack(len(self._decisions), len(segments)),
        ]
        parts.extend(_SEGMENT.pack(tid, run) for tid, run in segments)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ScheduleTrace":
        try:
            magic, version, _ = _HEADER.unpack_from(data, 0)
        except struct.error as exc:
            raise TraceError(f"truncated trace header: {exc}") from None
        if magic != _MAGIC:
            raise TraceError("not a schedule trace (bad magic)")
        if version != _VERSION:
            raise TraceError(f"unsupported trace version {version}")
        offset = _HEADER.size
        try:
            (meta_len,) = _META_LEN.unpack_from(data, offset)
            offset += _META_LEN.size
            meta = json.loads(data[offset:offset + meta_len].decode("utf-8"))
            offset += meta_len
            total, count = _COUNTS.unpack_from(data, offset)
            offset += _COUNTS.size
            decisions: List[int] = []
            for _ in range(count):
                tid, run = _SEGMENT.unpack_from(data, offset)
                offset += _SEGMENT.size
                decisions.extend([tid] * run)
        except (struct.error, ValueError) as exc:
            raise TraceError(f"malformed trace body: {exc}") from None
        if offset != len(data):
            raise TraceError("trailing bytes after last segment")
        if len(decisions) != total:
            raise TraceError(
                f"step count mismatch: header says {total}, "
                f"segments sum to {len(decisions)}")
        return cls(decisions, meta)

    def save(self, path) -> int:
        """Atomically write the trace; return bytes written."""
        data = self.to_bytes()
        tmp_path = f"{os.fspath(path)}.tmp"
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(data)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return len(data)

    @classmethod
    def load(cls, path) -> "ScheduleTrace":
        with open(path, "rb") as handle:
            return cls.from_bytes(handle.read())


class RecordingScheduler(Scheduler):
    """Delegate to ``inner`` and transcribe every decision.

    ``mark_no_effect`` tags the most recent decision as a step that
    performed no work (a gate park); ``trace(drop_no_effect=True)`` omits
    those steps so the result strict-replays on an ungated executor.
    """

    def __init__(self, inner: Scheduler):
        self.inner = inner
        self.decisions: List[int] = []
        self._no_effect: List[int] = []

    def next_thread(self, current: Optional[int],
                    runnable: Sequence[int]) -> int:
        tid = self.inner.next_thread(current, runnable)
        self.decisions.append(tid)
        return tid

    def fork_seed(self, index: int) -> "RecordingScheduler":
        return RecordingScheduler(self.inner.fork_seed(index))

    def fresh(self) -> "RecordingScheduler":
        return RecordingScheduler(self.inner.fresh())

    def mark_no_effect(self) -> None:
        """Tag the decision currently being executed as a no-op step."""
        if not self.decisions:
            raise RuntimeError("no decision recorded yet")
        self._no_effect.append(len(self.decisions) - 1)

    def trace(self, meta: Optional[Dict] = None,
              drop_no_effect: bool = False) -> ScheduleTrace:
        if drop_no_effect and self._no_effect:
            dropped = set(self._no_effect)
            decisions = [tid for index, tid in enumerate(self.decisions)
                         if index not in dropped]
        else:
            decisions = list(self.decisions)
        return ScheduleTrace(decisions, meta)
