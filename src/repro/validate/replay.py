"""Schedule replay: re-execute a recorded interleaving exactly (or loosely).

Two modes, two jobs:

* **Strict** (:class:`ReplayScheduler`): consume the recorded decisions one
  per step and demand that each recorded tid is actually runnable.  Because
  every policy in :mod:`repro.runtime.scheduler` is a deterministic function
  of its seed and the executor is a deterministic function of its decision
  stream, strict replay of a recorded run reproduces the execution event
  for event — byte-identical encoded logs, identical race report.  Any
  divergence (the program or tool configuration changed under the trace)
  raises :class:`ReplayDivergence` instead of silently exploring a
  different interleaving.

* **Guided** (:class:`GuidedReplayScheduler`): follow the trace's segments
  as long as their threads are runnable, skip segments that no longer
  apply, and fall back to a deterministic policy once the trace is
  exhausted.  This is the forgiving mode the witness minimizer needs: a
  candidate schedule with preemption points deleted is not exactly
  executable, but it is executable *enough* to ask whether the race still
  fires.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..runtime.scheduler import Scheduler
from .trace import ScheduleTrace

__all__ = ["ReplayScheduler", "GuidedReplayScheduler", "ReplayDivergence"]


class ReplayDivergence(RuntimeError):
    """Strict replay could not follow the recorded schedule."""


class ReplayScheduler(Scheduler):
    """Exact replay of a :class:`ScheduleTrace` (strict mode)."""

    def __init__(self, trace: ScheduleTrace):
        self.trace = trace
        self._position = 0

    @property
    def position(self) -> int:
        """How many recorded decisions have been consumed."""
        return self._position

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self.trace.decisions)

    def next_thread(self, current: Optional[int],
                    runnable: Sequence[int]) -> int:
        if self.exhausted:
            raise ReplayDivergence(
                f"trace exhausted after {self._position} steps but the "
                f"program is still running (runnable: {list(runnable)})")
        tid = self.trace.decisions[self._position]
        if tid not in runnable:
            raise ReplayDivergence(
                f"step {self._position}: recorded tid {tid} is not "
                f"runnable (runnable: {list(runnable)})")
        self._position += 1
        return tid

    def fork_seed(self, index: int) -> "ReplayScheduler":
        raise TypeError("a replay schedule cannot be re-seeded")

    def fresh(self) -> "ReplayScheduler":
        return ReplayScheduler(self.trace)


class GuidedReplayScheduler(Scheduler):
    """Best-effort replay of a segment list (guided mode).

    Follows each ``(tid, steps)`` segment while its thread is runnable;
    a segment whose thread is blocked or finished is abandoned (its
    remaining steps dropped).  After the last segment the fallback policy
    is deterministic: keep the current thread while it is runnable,
    otherwise the lowest-tid runnable thread — so a guided replay always
    terminates with a recordable, strict-replayable schedule.
    """

    def __init__(self, segments: Sequence[Tuple[int, int]]):
        self.segments: List[Tuple[int, int]] = [
            (tid, steps) for tid, steps in segments if steps > 0
        ]
        self._index = 0
        self._used_in_segment = 0

    def next_thread(self, current: Optional[int],
                    runnable: Sequence[int]) -> int:
        while self._index < len(self.segments):
            tid, steps = self.segments[self._index]
            if self._used_in_segment >= steps:
                self._index += 1
                self._used_in_segment = 0
                continue
            if tid in runnable:
                self._used_in_segment += 1
                return tid
            # The segment's thread cannot run here — abandon the rest of it.
            self._index += 1
            self._used_in_segment = 0
        if current is not None and current in runnable:
            return current
        return min(runnable)

    def fork_seed(self, index: int) -> "GuidedReplayScheduler":
        raise TypeError("a replay schedule cannot be re-seeded")

    def fresh(self) -> "GuidedReplayScheduler":
        return GuidedReplayScheduler(self.segments)
