"""Witness minimization: shrink a confirming schedule to its essence.

A confirmed witness from the director is a full recorded run — thousands
of steps, dozens of context switches, one of which matters.  This module
applies delta debugging (Zeller's ddmin) over the trace's *segment* list
(maximal same-thread runs): remove chunks of segments, guided-replay the
shortened schedule (segments whose threads cannot run are skipped, and a
deterministic fallback finishes the program), re-record the actual
execution, and keep the candidate iff the pair still races and the
re-recorded schedule is no longer than the current best.

Because every accepted candidate is the *re-recording* of a real
execution, the minimized witness is always a strict-replayable trace that
still triggers the race — minimization can never hand back a schedule
that only "would have" raced.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.harness import ProfilingHarness
from ..core.samplers import make_sampler
from ..core.tracker import TimestampTracker
from ..detector.merge import merge_thread_logs
from ..runtime.executor import DeadlockError, ExecutionLimitError, Executor
from ..tir.program import Program
from .director import normalize_pair, pair_raced
from .replay import GuidedReplayScheduler
from .trace import RecordingScheduler, ScheduleTrace

__all__ = ["minimize_witness", "MinimizeResult"]

Segment = Tuple[int, int]


class MinimizeResult:
    """Outcome of a minimization run."""

    def __init__(self, witness: ScheduleTrace, original: ScheduleTrace,
                 executions: int):
        self.witness = witness
        self.original = original
        self.executions = executions

    @property
    def reduced(self) -> bool:
        return (self.witness.num_switches < self.original.num_switches
                or len(self.witness) < len(self.original))


def _measure(trace: ScheduleTrace) -> Tuple[int, int]:
    # Switches first: a short schedule with many preemptions is harder to
    # read than a longer one with a single preemption.
    return (trace.num_switches, len(trace))


def _try_schedule(program: Program, segments: Sequence[Segment],
                  pair: Tuple[int, int], *, tool_seed: int,
                  max_steps: Optional[int],
                  window: int) -> Optional[ScheduleTrace]:
    """Guided-replay ``segments``; return the re-recorded trace if the
    pair still races, else None."""
    recorder = RecordingScheduler(GuidedReplayScheduler(segments))
    harness = ProfilingHarness(
        make_sampler("Full"),
        tracker=TimestampTracker(seed=tool_seed),
        seed=tool_seed,
    )
    executor = Executor(program, scheduler=recorder, harness=harness,
                        max_steps=max_steps)
    try:
        executor.run()
    except (DeadlockError, ExecutionLimitError):
        return None
    events = merge_thread_logs(harness.log).events
    if not pair_raced(events, pair, window=window):
        return None
    return recorder.trace(drop_no_effect=False)


def minimize_witness(program: Program, witness: ScheduleTrace,
                     pair: Sequence[int], *, tool_seed: Optional[int] = None,
                     max_executions: int = 200,
                     window: int = 512) -> MinimizeResult:
    """ddmin over the witness's segments; returns a witness that is never
    longer than the original and still reproduces the race on replay."""
    key = normalize_pair(pair)
    if tool_seed is None:
        tool_seed = int(witness.meta.get("tool_seed", 0))
    meta = dict(witness.meta)
    meta["minimized"] = True
    # Replays may legitimately run longer than the witness (the guided
    # fallback finishes threads the original schedule preempted forever),
    # but anything past this bound is a runaway, not a reproducer.
    max_steps = max(4 * len(witness), 10_000)

    best = witness
    best_segments: List[Segment] = witness.segments
    executions = 0

    granularity = 2
    while granularity <= len(best_segments) and executions < max_executions:
        chunk = max(1, len(best_segments) // granularity)
        improved = False
        start = 0
        while start < len(best_segments) and executions < max_executions:
            candidate = (best_segments[:start]
                         + best_segments[start + chunk:])
            if not candidate:
                start += chunk
                continue
            executions += 1
            trace = _try_schedule(program, candidate, key,
                                  tool_seed=tool_seed, max_steps=max_steps,
                                  window=window)
            if trace is not None and _measure(trace) < _measure(best):
                best = ScheduleTrace(trace.decisions, meta)
                best_segments = best.segments
                # Restart this granularity against the smaller schedule.
                improved = True
                start = 0
                continue
            start += chunk
        if not improved:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(best_segments))
    return MinimizeResult(witness=best, original=witness,
                          executions=executions)
