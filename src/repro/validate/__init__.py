"""Active race validation: record/replay, directed confirmation, verdicts.

The detector pipeline ends with a *report*: PC pairs that raced under some
sampled execution, candidate pairs from the static pass, aggregated pairs
from the telemetry fleet.  This package turns reports into *proofs*:

* :mod:`.trace` / :mod:`.replay` — record every scheduling decision of a
  run into a compact binary trace; strict replay reproduces the execution
  event for event (byte-identical logs, identical race report).
* :mod:`.director` — directed confirmation: park a thread immediately
  before one access of a candidate pair until a partner reaches the other
  (DataCollider-style pause-at-access), with a bounded-preemption jitter
  fallback.  A confirming run's recording is a replayable witness.
* :mod:`.minimize` — delta-debug a witness down to a minimal reproducer.
* :mod:`.verdict` — per-pair CONFIRMED / UNCONFIRMED / INFEASIBLE
  verdicts, serialized with their witnesses and exported to triage,
  suppressions, and the telemetry service.

:func:`validate_pairs` is the one-call entry point the CLI uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..detector.hb import detect_races
from ..detector.merge import merge_thread_logs
from ..detector.races import RaceReport
from ..eventlog.log import EventLog
from ..staticpass import analyze as static_analyze
from ..staticpass.report import StaticReport
from ..tir.ops import Read, Write
from ..tir.program import Program
from .director import (
    ConfirmOutcome,
    DirectedScheduler,
    DirectorConfig,
    PairTrap,
    confirm_pair,
    normalize_pair,
    pair_raced,
    replay_witness,
    run_attempt,
)
from .minimize import MinimizeResult, minimize_witness
from .replay import GuidedReplayScheduler, ReplayDivergence, ReplayScheduler
from .trace import RecordingScheduler, ScheduleTrace, TraceError
from .verdict import (
    PairVerdict,
    RaceVerdict,
    ValidationReport,
    VERDICT_PRECEDENCE,
    strongest_verdict,
)

__all__ = [
    "ScheduleTrace", "RecordingScheduler", "TraceError",
    "ReplayScheduler", "GuidedReplayScheduler", "ReplayDivergence",
    "PairTrap", "DirectedScheduler", "DirectorConfig", "ConfirmOutcome",
    "confirm_pair", "run_attempt", "pair_raced", "replay_witness",
    "normalize_pair",
    "MinimizeResult", "minimize_witness",
    "RaceVerdict", "PairVerdict", "ValidationReport",
    "VERDICT_PRECEDENCE", "strongest_verdict",
    "prove_infeasible", "validate_pairs",
    "pairs_from_report", "pairs_from_log", "pairs_from_static",
    "pairs_from_telemetry",
]

Pair = Tuple[int, int]


# ----------------------------------------------------------------------
# Candidate-pair extraction (the director validates pairs from any source)
# ----------------------------------------------------------------------
def pairs_from_report(report: RaceReport) -> List[Pair]:
    """Race keys of a dynamic :class:`RaceReport`, most frequent first."""
    return [key for key, _ in sorted(report.occurrences.items(),
                                     key=lambda item: (-item[1], item[0]))]


def pairs_from_log(log: EventLog) -> List[Pair]:
    """Merge a raw event log and extract its detected race pairs."""
    merged = merge_thread_logs(log)
    return pairs_from_report(detect_races(merged.events))


def pairs_from_static(static_report: StaticReport) -> List[Pair]:
    """All surviving candidate pairs of the static pass."""
    return sorted(static_report.candidate_pairs)


def pairs_from_telemetry(payload: Dict) -> List[Pair]:
    """Pairs from telemetry JSON: a snapshot (``{"report": ...}``), a
    fleet report, or a raw wire report (``{"races": [...]}``)."""
    if "report" in payload and isinstance(payload["report"], dict):
        payload = payload["report"]
    pairs: List[Pair] = []
    for row in payload.get("races", []):
        pcs = row.get("pcs")
        if not pcs or len(pcs) != 2:
            continue
        pairs.append(normalize_pair(pcs))
    # Preserve fleet ordering (already most-frequent-first), dedup.
    seen = set()
    unique = []
    for pair in pairs:
        if pair not in seen:
            seen.add(pair)
            unique.append(pair)
    return unique


# ----------------------------------------------------------------------
# Infeasibility proofs
# ----------------------------------------------------------------------
def prove_infeasible(program: Program, static_report: StaticReport,
                     pair: Pair) -> Optional[str]:
    """A human-readable proof that ``pair`` cannot race, or None.

    Two sound arguments are accepted: a PC that is not a memory access
    cannot participate in a data race at all, and a pair the static pass
    ruled out is ordered by synchronization on every execution (the pass's
    soundness contract guarantees every dynamically reportable pair
    survives as a candidate).
    """
    for pc in pair:
        try:
            instr = program.instr_at(pc)
        except KeyError:
            return f"pc {pc} is not in program {program.name!r}"
        if not isinstance(instr, (Read, Write)):
            return f"pc {pc} is not a memory access"
    low, high = pair
    if pair not in static_report.candidate_pairs:
        return "statically proven ordered (not a candidate pair)"
    for pc in (low, high):
        verdict = static_report.verdicts.get(pc)
        if verdict is not None and verdict.safe:
            return (f"statically proven race-free access at pc {pc} "
                    f"({verdict.value})")
    return None


# ----------------------------------------------------------------------
# The entry point
# ----------------------------------------------------------------------
def validate_pairs(program: Program, pairs: Iterable[Sequence[int]], *,
                   config: Optional[DirectorConfig] = None,
                   minimize: bool = False,
                   static_report: Optional[StaticReport] = None,
                   workload: str = "", seed: int = 0, scale: float = 1.0,
                   source: str = "") -> ValidationReport:
    """Validate every candidate pair; return the per-pair verdicts.

    For each pair: first try to *prove it cannot race* (static argument →
    INFEASIBLE, no attempts spent); otherwise spend the director's attempt
    budget trying to *make it race* (witness-verified CONFIRMED, optionally
    minimized); otherwise UNCONFIRMED.
    """
    config = config or DirectorConfig()
    if static_report is None:
        static_report = static_analyze(program)
    report = ValidationReport(
        program_name=program.name, workload=workload, seed=seed,
        scale=scale, budget=config.budget, source=source,
    )
    seen = set()
    for raw_pair in pairs:
        pair = normalize_pair(raw_pair)
        if pair in seen:
            continue
        seen.add(pair)
        proof = prove_infeasible(program, static_report, pair)
        if proof is not None:
            report.verdicts.append(PairVerdict(
                pair=pair, verdict=RaceVerdict.INFEASIBLE, note=proof))
            continue
        outcome = confirm_pair(program, pair, config)
        if not outcome.confirmed:
            report.verdicts.append(PairVerdict(
                pair=pair, verdict=RaceVerdict.UNCONFIRMED,
                attempts=outcome.attempts,
                note="; ".join(outcome.notes)))
            continue
        witness = outcome.witness
        note = ""
        if minimize and witness is not None:
            result = minimize_witness(program, witness, pair,
                                      tool_seed=config.tool_seed)
            witness = result.witness
            if result.reduced:
                note = (f"minimized {len(result.original)}->"
                        f"{len(witness)} steps, "
                        f"{result.original.num_switches}->"
                        f"{witness.num_switches} switches")
        report.verdicts.append(PairVerdict(
            pair=pair, verdict=RaceVerdict.CONFIRMED,
            attempts=outcome.attempts, mode=outcome.mode,
            witness=witness, note=note))
    return report
