"""Directed confirmation: drive the executor to make a candidate pair race.

DataCollider-style pause-at-access on top of the instruction-granular
scheduler: a :class:`PairTrap` (an executor :class:`AccessGate`) parks the
first thread to arrive immediately *before* one PC of the candidate pair
and holds it there until another thread reaches the other PC on the same
address; the trap then releases both so the two conflicting accesses
execute back to back with no synchronization between them.  If no partner
shows up the park times out and the run continues unharmed.

A fallback perturbation mode ("jitter") reuses the same trap to inject
short bounded pauses at the candidate PCs — preemption injection around
the pair — for races the pause protocol alone cannot line up.

Every attempt is recorded; a confirming attempt's schedule, with the parked
(no-effect) steps dropped, is a witness trace that strict-replays on a
plain, gate-less executor and deterministically re-triggers the race.

Feasibility proofs are delegated to the static pass: a pair the
whole-program analysis rules out (both orderings blocked by sync — e.g. a
common dominating lock) is INFEASIBLE without spending any attempts, and
soundness of that verdict is the static pass's already-tested contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.harness import ProfilingHarness
from ..core.samplers import make_sampler
from ..core.tracker import TimestampTracker
from ..detector.merge import merge_thread_logs
from ..detector.vectorclock import VectorClock
from ..eventlog.events import Event, MemoryEvent, SyncKind
from ..eventlog.log import EventLog
from ..runtime.executor import AccessGate, Executor, RunResult
from ..runtime.scheduler import RandomInterleaver, Scheduler
from ..tir.program import Program
from .trace import RecordingScheduler, ScheduleTrace

__all__ = [
    "PairTrap",
    "DirectedScheduler",
    "AttemptResult",
    "DirectorConfig",
    "ConfirmOutcome",
    "pair_raced",
    "run_attempt",
    "confirm_pair",
    "replay_witness",
]

#: Normalized race key: (low pc, high pc).
Pair = Tuple[int, int]


def normalize_pair(pair: Sequence[int]) -> Pair:
    first, second = pair
    return (first, second) if first <= second else (second, first)


# ----------------------------------------------------------------------
# The trap (an executor AccessGate)
# ----------------------------------------------------------------------
class PairTrap(AccessGate):
    """Park-at-access gate for one candidate PC pair.

    ``mode="pause"`` implements the pause-until-partner protocol;
    ``mode="jitter"`` parks arrivals for a short seeded-random number of
    steps regardless of partners (bounded preemption injection).
    """

    def __init__(self, pair: Sequence[int], *, mode: str = "pause",
                 park_timeout: int = 4000, max_parks: int = 64,
                 jitter_max: int = 8, rng_seed: int = 0,
                 recorder: Optional[RecordingScheduler] = None):
        if mode not in ("pause", "jitter"):
            raise ValueError(f"unknown trap mode {mode!r}")
        self.pc_low, self.pc_high = normalize_pair(pair)
        self.mode = mode
        self.park_timeout = park_timeout
        self.max_parks = max_parks
        self.jitter_max = max(1, jitter_max)
        self.recorder = recorder
        self._rng = random.Random(rng_seed)
        self._executor: Optional[Executor] = None

        self.parks = 0
        self.matched = False
        self._done = False
        self._parked_tid: Optional[int] = None
        self._parked_pc = 0
        self._parked_addr = 0
        self._parked_is_write = False
        self._parked_steps = 0
        self._parked_deadline = 0
        self._released: set = set()
        self._priority: List[int] = []
        #: Times the executor hit the no-runnable fallback while a thread
        #: was parked — evidence the parked thread gated all progress.
        self.forced_releases = 0

    def attach(self, executor: Executor) -> "PairTrap":
        self._executor = executor
        return self

    # -- AccessGate interface ------------------------------------------
    def on_access(self, tid: int, pc: int, addr: int, is_write: bool) -> bool:
        if tid in self._released:
            self._released.discard(tid)
            return False
        if self._done or (pc != self.pc_low and pc != self.pc_high):
            return False
        if self._parked_tid is None:
            if self.parks >= self.max_parks:
                return False
            self._park(tid, pc, addr, is_write)
            return True
        if tid == self._parked_tid:
            # A parked thread only re-enters via the released path above.
            return False
        if self.mode != "pause":
            return False
        other = self.pc_high if self._parked_pc == self.pc_low else self.pc_low
        if (pc == other and addr == self._parked_addr
                and (is_write or self._parked_is_write)):
            # Pair complete: this access proceeds now, the parked partner
            # runs immediately after — conflicting accesses back to back.
            self.matched = True
            self._done = True
            self._release_parked()
            return False
        return False

    def release_all(self) -> bool:
        if self._parked_tid is None:
            return False
        self.forced_releases += 1
        self._release_parked()
        return True

    # -- scheduler hooks ------------------------------------------------
    def on_step(self) -> None:
        """Called once per scheduling decision (timeout bookkeeping)."""
        if self._parked_tid is None:
            return
        self._parked_steps += 1
        if self._parked_steps > self._parked_deadline:
            self._release_parked()

    def take_priority(self, runnable: Sequence[int]) -> Optional[int]:
        """A tid that must run next (the just-released partner), if any."""
        while self._priority:
            tid = self._priority[0]
            if tid in runnable:
                return self._priority.pop(0)
            if self._executor is not None and tid in self._released:
                # Still waking up; hold the priority until it is runnable.
                return None
            self._priority.pop(0)
        return None

    # -- internals -------------------------------------------------------
    def _park(self, tid: int, pc: int, addr: int, is_write: bool) -> None:
        self.parks += 1
        self._parked_tid = tid
        self._parked_pc = pc
        self._parked_addr = addr
        self._parked_is_write = is_write
        self._parked_steps = 0
        self._parked_deadline = (
            self.park_timeout if self.mode == "pause"
            else 1 + self._rng.randrange(self.jitter_max)
        )
        if self.recorder is not None:
            # The decision that stepped this thread produced no effect.
            self.recorder.mark_no_effect()

    def _release_parked(self) -> None:
        tid = self._parked_tid
        self._parked_tid = None
        if tid is None:
            return
        self._released.add(tid)
        self._priority.append(tid)
        if self._executor is not None:
            self._executor.wake_thread(tid)


class DirectedScheduler(Scheduler):
    """Wrap a base policy with a trap's priorities and timeout ticks."""

    def __init__(self, base: Scheduler, trap: PairTrap):
        self.base = base
        self.trap = trap

    def next_thread(self, current: Optional[int],
                    runnable: Sequence[int]) -> int:
        self.trap.on_step()
        tid = self.trap.take_priority(runnable)
        if tid is not None:
            return tid
        return self.base.next_thread(current, runnable)

    def fork_seed(self, index: int) -> "DirectedScheduler":
        raise TypeError("fork the base policy, not the directed wrapper")

    def fresh(self) -> "DirectedScheduler":
        raise TypeError("traps are single-use; build a new attempt instead")


# ----------------------------------------------------------------------
# Targeted race check
# ----------------------------------------------------------------------
class _PairAccess:
    __slots__ = ("tid", "pc", "is_write", "clock")

    def __init__(self, tid: int, pc: int, is_write: bool, clock: VectorClock):
        self.tid = tid
        self.pc = pc
        self.is_write = is_write
        self.clock = clock


def pair_raced(events: Iterable[Event], pair: Sequence[int], *,
               window: int = 512, alloc_as_sync: bool = True) -> bool:
    """Did the two PCs of ``pair`` race in this event stream?

    Exhaustive-oracle vector clocks, but tracking only accesses whose PC
    belongs to the pair, and comparing each new access against at most
    ``window`` recent prior accesses per address.  Bounding the lookback
    keeps the check linear on hot addresses and can only *miss* distant
    races, never invent one — a True return is always a real race, which
    is the soundness direction a CONFIRMED verdict needs.  The directed
    trap makes confirming accesses adjacent, far inside any sane window.
    """
    pc_low, pc_high = normalize_pair(pair)
    thread_vc: Dict[int, VectorClock] = {}
    var_vc: Dict[Tuple[str, int], VectorClock] = {}
    history: Dict[int, List[_PairAccess]] = {}

    def vc_of(tid: int) -> VectorClock:
        vc = thread_vc.get(tid)
        if vc is None:
            vc = VectorClock({tid: 1})
            thread_vc[tid] = vc
        return vc

    for event in events:
        if not isinstance(event, MemoryEvent):
            if not alloc_as_sync and event.kind in (
                SyncKind.ALLOC_PAGE, SyncKind.FREE_PAGE
            ):
                continue
            tvc = vc_of(event.tid)
            vvc = var_vc.get(event.var)
            if event.is_acquire and vvc is not None:
                tvc.join(vvc)
            if event.is_release:
                if vvc is None:
                    vvc = VectorClock()
                    var_vc[event.var] = vvc
                vvc.join(tvc)
                tvc.tick(event.tid)
            continue
        if event.pc != pc_low and event.pc != pc_high:
            continue
        clock = vc_of(event.tid).copy()
        accesses = history.setdefault(event.addr, [])
        other = pc_high if event.pc == pc_low else pc_low
        for prior in reversed(accesses[-window:]):
            if prior.tid == event.tid or prior.pc != other:
                continue
            if not (prior.is_write or event.is_write):
                continue
            if not prior.clock.leq(clock):
                return True
        accesses.append(
            _PairAccess(event.tid, event.pc, event.is_write, clock))
    return False


# ----------------------------------------------------------------------
# Attempts and the confirmation loop
# ----------------------------------------------------------------------
@dataclass
class AttemptResult:
    """One directed execution and what it proved."""

    raced: bool
    mode: str
    trace: ScheduleTrace
    log: EventLog
    run: RunResult
    parks: int
    matched: bool
    forced_releases: int


@dataclass
class DirectorConfig:
    """Knobs of the confirmation loop (defaults sized for the workloads)."""

    budget: int = 5
    base_seed: int = 1
    switch_prob: float = 0.1
    tool_seed: int = 0
    park_timeout: int = 4000
    max_parks: int = 64
    jitter_max: int = 8
    check_window: int = 512
    #: Attempts run in pause mode before falling back to jitter.
    pause_attempts: Optional[int] = None

    def mode_for(self, attempt: int) -> str:
        pause = self.pause_attempts
        if pause is None:
            pause = max(1, self.budget - self.budget // 3)
        return "pause" if attempt < pause else "jitter"


@dataclass
class ConfirmOutcome:
    """The director's answer for one candidate pair."""

    pair: Pair
    confirmed: bool
    attempts: int
    mode: Optional[str] = None
    witness: Optional[ScheduleTrace] = None
    parks: int = 0
    matched: bool = False
    forced_releases: int = 0
    notes: List[str] = field(default_factory=list)


def _full_harness(tool_seed: int) -> ProfilingHarness:
    # Validation wants ground truth on one execution: log everything.
    return ProfilingHarness(
        make_sampler("Full"),
        tracker=TimestampTracker(seed=tool_seed),
        seed=tool_seed,
    )


def run_attempt(program: Program, pair: Sequence[int],
                scheduler: Scheduler, *, mode: str = "pause",
                config: Optional[DirectorConfig] = None,
                attempt: int = 0) -> AttemptResult:
    """One recorded, gated execution aimed at manifesting ``pair``."""
    config = config or DirectorConfig()
    key = normalize_pair(pair)
    trap = PairTrap(
        key, mode=mode,
        park_timeout=config.park_timeout,
        max_parks=config.max_parks,
        jitter_max=config.jitter_max,
        rng_seed=config.base_seed * 65_537 + attempt,
    )
    recorder = RecordingScheduler(DirectedScheduler(scheduler, trap))
    trap.recorder = recorder
    harness = _full_harness(config.tool_seed)
    executor = Executor(program, scheduler=recorder, harness=harness,
                        gate=trap)
    trap.attach(executor)
    run = executor.run()
    events = merge_thread_logs(harness.log).events
    raced = pair_raced(events, key, window=config.check_window)
    trace = recorder.trace(
        meta={"kind": "witness", "pair": list(key), "mode": mode,
              "attempt": attempt, "tool_seed": config.tool_seed},
        drop_no_effect=True,
    )
    return AttemptResult(
        raced=raced, mode=mode, trace=trace, log=harness.log, run=run,
        parks=trap.parks, matched=trap.matched,
        forced_releases=trap.forced_releases,
    )


def replay_witness(program: Program, witness: ScheduleTrace, *,
                   tool_seed: Optional[int] = None
                   ) -> Tuple[EventLog, RunResult]:
    """Strict-replay a witness on a plain executor; return its log."""
    from .replay import ReplayScheduler

    if tool_seed is None:
        tool_seed = int(witness.meta.get("tool_seed", 0))
    harness = _full_harness(tool_seed)
    executor = Executor(program, scheduler=ReplayScheduler(witness),
                        harness=harness)
    run = executor.run()
    return harness.log, run


def confirm_pair(program: Program, pair: Sequence[int],
                 config: Optional[DirectorConfig] = None) -> ConfirmOutcome:
    """Spend up to ``config.budget`` directed attempts on one pair.

    A confirming attempt's witness is verified by strict replay before the
    outcome is reported: the pair must race again on a plain executor
    driven by the recorded schedule, or the attempt does not count.
    """
    config = config or DirectorConfig()
    key = normalize_pair(pair)
    base = RandomInterleaver(seed=config.base_seed,
                             switch_prob=config.switch_prob)
    outcome = ConfirmOutcome(pair=key, confirmed=False, attempts=0)
    for attempt in range(config.budget):
        mode = config.mode_for(attempt)
        result = run_attempt(program, key, base.fork_seed(attempt),
                             mode=mode, config=config, attempt=attempt)
        outcome.attempts += 1
        outcome.parks += result.parks
        outcome.matched = outcome.matched or result.matched
        outcome.forced_releases += result.forced_releases
        if not result.raced:
            continue
        replay_log, _ = replay_witness(program, result.trace,
                                       tool_seed=config.tool_seed)
        replay_events = merge_thread_logs(replay_log).events
        if not pair_raced(replay_events, key, window=config.check_window):
            # Should be impossible (the witness is the gated run minus
            # no-op steps); treat as unconfirmed rather than lie.
            outcome.notes.append(
                f"attempt {attempt}: raced but witness replay did not")
            continue
        outcome.confirmed = True
        outcome.mode = mode
        outcome.witness = result.trace
        return outcome
    if outcome.parks and not outcome.matched:
        outcome.notes.append(
            f"parked {outcome.parks}x without a partner arriving at the "
            f"other access")
    return outcome
