"""The §5.4 overhead study: Table 5 and Figure 6.

Each benchmark is executed in the paper's four configurations:

1. **baseline** — the uninstrumented application;
2. **+ dispatch** — dispatch checks only (``Never`` sampler, no logging);
3. **+ sync logging** — dispatch checks plus synchronization logging;
4. **LiteRace** — the full tool (TL-Ad sampling plus memory logging);

plus **full logging** (every memory op, no dispatch checks or clones).

Slowdowns are virtual-clock ratios against the baseline execution of the
*same seed*, and log sizes are measured on the wire encoding, converted to
MB/s with the cost model's cycles-per-second constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..core.harness import ProfilingHarness
from ..core.literace import run_baseline
from ..core.samplers import make_sampler
from ..core.tracker import TimestampTracker
from ..eventlog.encode import encoded_size
from ..runtime.cost import DEFAULT_COST_MODEL, CostModel
from ..runtime.executor import Executor
from ..runtime.scheduler import RandomInterleaver
from .. import workloads

__all__ = ["OverheadRow", "run_overhead_study"]


@dataclass
class OverheadRow:
    """Measurements for one benchmark (averaged over seeds)."""

    benchmark: str
    title: str
    baseline_seconds: float
    #: Virtual-clock slowdowns vs baseline.
    dispatch_only_slowdown: float
    sync_logging_slowdown: float
    literace_slowdown: float
    full_logging_slowdown: float
    #: Log production rates (MB per second of instrumented run time).
    literace_mb_per_s: float
    full_mb_per_s: float
    #: Figure 6 decomposition from the LiteRace run, as fractions of the
    #: baseline time (stack these on 1.0 to draw the figure).
    frac_dispatch: float
    frac_sync_log: float
    frac_memory_log: float
    #: Paper reference numbers (None where the paper reports none).
    paper_literace: Optional[float]
    paper_full: Optional[float]


def _profiled_run(program, sampler_name: str, log_sync: bool,
                  cost_model: CostModel, seed: int):
    harness = ProfilingHarness(
        make_sampler(sampler_name),
        cost_model=cost_model,
        tracker=TimestampTracker(seed=seed),
        log_sync=log_sync,
        seed=seed,
    )
    executor = Executor(program, scheduler=RandomInterleaver(seed),
                        cost_model=cost_model, harness=harness)
    run = executor.run()
    return run, harness.log


def _mb_per_s(log_bytes: int, clock: int, cost_model: CostModel) -> float:
    seconds = clock / cost_model.cycles_per_second
    return log_bytes / 1e6 / seconds if seconds > 0 else 0.0


def run_overhead_study(
    benchmarks: Sequence[str] = None,
    seeds: Iterable[int] = (1,),
    scale: float = 1.0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> List[OverheadRow]:
    """Measure all five configurations for each benchmark."""
    if benchmarks is None:
        benchmarks = workloads.overhead_eval_names()
    rows: List[OverheadRow] = []
    for name in benchmarks:
        spec = workloads.get(name)
        acc = {key: 0.0 for key in (
            "base_s", "disp", "sync", "lite", "full",
            "lite_mbps", "full_mbps", "f_disp", "f_sync", "f_mem",
        )}
        n = 0
        for seed in seeds:
            program = spec.build(seed=seed, scale=scale)
            base = run_baseline(program, seed=seed, cost_model=cost_model)
            base_time = base.baseline_time

            disp_run, _ = _profiled_run(program, "Never", False,
                                        cost_model, seed)
            sync_run, _ = _profiled_run(program, "Never", True,
                                        cost_model, seed)
            lite_run, lite_log = _profiled_run(program, "TL-Ad", True,
                                               cost_model, seed)
            full_run, full_log = _profiled_run(program, "Full", True,
                                               cost_model, seed)

            acc["base_s"] += base_time / cost_model.cycles_per_second
            acc["disp"] += disp_run.clock / base_time
            acc["sync"] += sync_run.clock / base_time
            acc["lite"] += lite_run.clock / base_time
            acc["full"] += full_run.clock / base_time
            acc["lite_mbps"] += _mb_per_s(encoded_size(lite_log),
                                          lite_run.clock, cost_model)
            acc["full_mbps"] += _mb_per_s(encoded_size(full_log),
                                          full_run.clock, cost_model)
            acc["f_disp"] += lite_run.dispatch_cycles / base_time
            acc["f_sync"] += lite_run.sync_log_cycles / base_time
            acc["f_mem"] += lite_run.memory_log_cycles / base_time
            n += 1
        rows.append(OverheadRow(
            benchmark=name,
            title=spec.title,
            baseline_seconds=acc["base_s"] / n,
            dispatch_only_slowdown=acc["disp"] / n,
            sync_logging_slowdown=acc["sync"] / n,
            literace_slowdown=acc["lite"] / n,
            full_logging_slowdown=acc["full"] / n,
            literace_mb_per_s=acc["lite_mbps"] / n,
            full_mb_per_s=acc["full_mbps"] / n,
            frac_dispatch=acc["f_disp"] / n,
            frac_sync_log=acc["f_sync"] / n,
            frac_memory_log=acc["f_mem"] / n,
            paper_literace=spec.paper_literace_slowdown,
            paper_full=spec.paper_full_slowdown,
        ))
    return rows
