"""The §5.4 overhead study: Table 5 and Figure 6.

Each benchmark is executed in the paper's four configurations:

1. **baseline** — the uninstrumented application;
2. **+ dispatch** — dispatch checks only (``Never`` sampler, no logging);
3. **+ sync logging** — dispatch checks plus synchronization logging;
4. **LiteRace** — the full tool (TL-Ad sampling plus memory logging);

plus **full logging** (every memory op, no dispatch checks or clones).

Slowdowns are virtual-clock ratios against the baseline execution of the
*same seed*, and log sizes are measured on the wire encoding, converted to
MB/s with the cost model's cycles-per-second constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..core.harness import ProfilingHarness
from ..core.literace import run_baseline
from ..core.samplers import make_sampler
from ..core.tracker import TimestampTracker
from ..eventlog.encode import encoded_size
from ..runtime.cost import DEFAULT_COST_MODEL, CostModel
from ..runtime.executor import Executor
from ..runtime.scheduler import RandomInterleaver
from .. import workloads

__all__ = ["OverheadRow", "OverheadSample", "run_overhead_cell",
           "aggregate_overhead", "run_overhead_study"]


@dataclass
class OverheadRow:
    """Measurements for one benchmark (averaged over seeds)."""

    benchmark: str
    title: str
    baseline_seconds: float
    #: Virtual-clock slowdowns vs baseline.
    dispatch_only_slowdown: float
    sync_logging_slowdown: float
    literace_slowdown: float
    full_logging_slowdown: float
    #: Log production rates (MB per second of instrumented run time).
    literace_mb_per_s: float
    full_mb_per_s: float
    #: Figure 6 decomposition from the LiteRace run, as fractions of the
    #: baseline time (stack these on 1.0 to draw the figure).
    frac_dispatch: float
    frac_sync_log: float
    frac_memory_log: float
    #: Paper reference numbers (None where the paper reports none).
    paper_literace: Optional[float]
    paper_full: Optional[float]


@dataclass
class OverheadSample:
    """Raw measurements of one (benchmark, seed) execution — one *cell*.

    Everything here is a plain float keyed to the run's own baseline, so
    samples are picklable (for the parallel engine and the artifact cache)
    and aggregate by plain averaging in :func:`aggregate_overhead`.
    """

    benchmark: str
    seed: int
    baseline_seconds: float
    dispatch_only_slowdown: float
    sync_logging_slowdown: float
    literace_slowdown: float
    full_logging_slowdown: float
    literace_mb_per_s: float
    full_mb_per_s: float
    frac_dispatch: float
    frac_sync_log: float
    frac_memory_log: float


def _profiled_run(program, sampler_name: str, log_sync: bool,
                  cost_model: CostModel, seed: int,
                  pruned_pcs: frozenset = frozenset()):
    harness = ProfilingHarness(
        make_sampler(sampler_name),
        cost_model=cost_model,
        tracker=TimestampTracker(seed=seed),
        log_sync=log_sync,
        seed=seed,
    )
    executor = Executor(program, scheduler=RandomInterleaver(seed),
                        cost_model=cost_model, harness=harness,
                        pruned_pcs=pruned_pcs)
    run = executor.run()
    return run, harness.log


def _mb_per_s(log_bytes: int, clock: int, cost_model: CostModel) -> float:
    seconds = clock / cost_model.cycles_per_second
    return log_bytes / 1e6 / seconds if seconds > 0 else 0.0


def run_overhead_cell(
    benchmark: str,
    seed: int,
    scale: float = 1.0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    static_prune: bool = False,
) -> OverheadSample:
    """Measure all five §5.4 configurations of one (benchmark, seed).

    With ``static_prune`` the memory-logging configurations (LiteRace and
    full logging) skip log calls for accesses the static race-freedom
    analysis proved safe; the dispatch- and sync-only configurations are
    unaffected, since they never log memory operations.
    """
    program = workloads.build(benchmark, seed=seed, scale=scale)
    base = run_baseline(program, seed=seed, cost_model=cost_model)
    base_time = base.baseline_time

    pruned = frozenset()
    if static_prune:
        from ..staticpass import analyze
        pruned = analyze(program).prune_set()

    disp_run, _ = _profiled_run(program, "Never", False, cost_model, seed)
    sync_run, _ = _profiled_run(program, "Never", True, cost_model, seed)
    lite_run, lite_log = _profiled_run(program, "TL-Ad", True,
                                       cost_model, seed, pruned)
    full_run, full_log = _profiled_run(program, "Full", True,
                                       cost_model, seed, pruned)

    return OverheadSample(
        benchmark=benchmark,
        seed=seed,
        baseline_seconds=base_time / cost_model.cycles_per_second,
        dispatch_only_slowdown=disp_run.clock / base_time,
        sync_logging_slowdown=sync_run.clock / base_time,
        literace_slowdown=lite_run.clock / base_time,
        full_logging_slowdown=full_run.clock / base_time,
        literace_mb_per_s=_mb_per_s(encoded_size(lite_log),
                                    lite_run.clock, cost_model),
        full_mb_per_s=_mb_per_s(encoded_size(full_log),
                                full_run.clock, cost_model),
        frac_dispatch=lite_run.dispatch_cycles / base_time,
        frac_sync_log=lite_run.sync_log_cycles / base_time,
        frac_memory_log=lite_run.memory_log_cycles / base_time,
    )


def aggregate_overhead(samples: Sequence[OverheadSample],
                       benchmarks: Sequence[str]) -> List[OverheadRow]:
    """Average per-seed samples into the paper's per-benchmark rows.

    ``benchmarks`` fixes the row order (samples may arrive in any order —
    the parallel engine merges by cell key, not by completion).
    """
    by_benchmark: dict = {name: [] for name in benchmarks}
    for sample in samples:
        by_benchmark[sample.benchmark].append(sample)
    rows: List[OverheadRow] = []
    for name in benchmarks:
        group = sorted(by_benchmark[name], key=lambda s: s.seed)
        if not group:
            raise ValueError(f"no overhead samples for benchmark {name!r}")
        spec = workloads.get(name)
        n = len(group)

        def mean(attr: str) -> float:
            return sum(getattr(s, attr) for s in group) / n

        rows.append(OverheadRow(
            benchmark=name,
            title=spec.title,
            baseline_seconds=mean("baseline_seconds"),
            dispatch_only_slowdown=mean("dispatch_only_slowdown"),
            sync_logging_slowdown=mean("sync_logging_slowdown"),
            literace_slowdown=mean("literace_slowdown"),
            full_logging_slowdown=mean("full_logging_slowdown"),
            literace_mb_per_s=mean("literace_mb_per_s"),
            full_mb_per_s=mean("full_mb_per_s"),
            frac_dispatch=mean("frac_dispatch"),
            frac_sync_log=mean("frac_sync_log"),
            frac_memory_log=mean("frac_memory_log"),
            paper_literace=spec.paper_literace_slowdown,
            paper_full=spec.paper_full_slowdown,
        ))
    return rows


def run_overhead_study(
    benchmarks: Sequence[str] = None,
    seeds: Iterable[int] = (1,),
    scale: float = 1.0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> List[OverheadRow]:
    """Measure all five configurations for each benchmark (serially)."""
    if benchmarks is None:
        benchmarks = workloads.overhead_eval_names()
    samples = [
        run_overhead_cell(name, seed, scale=scale, cost_model=cost_model)
        for name in benchmarks
        for seed in seeds
    ]
    return aggregate_overhead(samples, benchmarks)
