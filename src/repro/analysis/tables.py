"""Plain-text rendering of paper-style tables and figures.

Every experiment module renders through these helpers so that the
regenerated artifacts look alike: fixed-width columns, a rule under the
header, and (where the paper reports numbers) a paper-reference column so
reproduction quality is visible at a glance.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_percent", "format_slowdown", "bar_chart"]


def format_percent(value: float, digits: int = 1) -> str:
    if value != value:  # NaN
        return "-"
    return f"{100 * value:.{digits}f}%"


def format_slowdown(value: float) -> str:
    if value != value:
        return "-"
    return f"{value:.2f}x"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Render rows as a fixed-width text table."""
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, unit: str = "",
              title: Optional[str] = None) -> str:
    """A horizontal ASCII bar chart (for the figure experiments)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max((v for v in values if v == v), default=0.0)
    label_width = max((len(l) for l in labels), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in zip(labels, values):
        if value != value:
            bar, shown = "", "-"
        else:
            bar = "#" * (round(width * value / peak) if peak else 0)
            shown = f"{value:.2f}{unit}"
        lines.append(f"{label.ljust(label_width)} |{bar} {shown}")
    return "\n".join(lines)
