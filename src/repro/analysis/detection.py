"""The §5.3 detection study: compare samplers on identical interleavings.

Two different executions of a multithreaded program are not guaranteed to
interleave identically, so the paper compares samplers by running a
modified build that logs *everything* while executing every sampler's
dispatch logic side by side, marking each memory operation with the set of
samplers that would have logged it.  Race detection on the complete log
yields the races that actually happened; detection on each sampler's
marked subset yields what that sampler would have found.  The detection
rate is the proportion of the full log's static races the subset recovers.

:func:`run_detection_study` executes that methodology over a set of
benchmarks and seeds (the paper instruments each application and runs it
three times, reporting the average detection rate and the median race
counts).  One (benchmark, seed) execution is a *cell* —
:func:`run_detection_cell` — returning a picklable :class:`RunDetection`,
which is what lets :mod:`repro.experiments.engine` fan the study out
across worker processes and cache each cell on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..core.literace import run_marked
from ..core.samplers import SAMPLER_ORDER
from ..detector.hb import HappensBeforeDetector
from ..detector.races import RaceKey
from ..eventlog.events import SyncEvent
from ..runtime.cost import DEFAULT_COST_MODEL, CostModel
from ..runtime.scheduler import RandomInterleaver
from .. import workloads

__all__ = ["SamplerOutcome", "RunDetection", "DetectionStudy",
           "run_detection_cell", "run_detection_study"]


@dataclass
class SamplerOutcome:
    """One sampler's result on one marked run."""

    detected: Set[RaceKey]
    memory_logged: int

    def rate(self, reference: Set[RaceKey]) -> float:
        """Fraction of ``reference`` races present in ``detected``."""
        if not reference:
            return 1.0
        return len(self.detected & reference) / len(reference)


@dataclass
class RunDetection:
    """Full-log ground truth plus per-sampler outcomes for one execution."""

    benchmark: str
    seed: int
    memory_ops: int
    nonstack_memory_ops: int
    full_races: Set[RaceKey]
    rare: Set[RaceKey]
    frequent: Set[RaceKey]
    samplers: Dict[str, SamplerOutcome]

    def esr(self, sampler: str) -> float:
        if self.memory_ops == 0:
            return 0.0
        return self.samplers[sampler].memory_logged / self.memory_ops

    def reference(self, which: str) -> Set[RaceKey]:
        if which == "all":
            return self.full_races
        if which == "rare":
            return self.rare
        if which == "frequent":
            return self.frequent
        raise ValueError(f"unknown race class {which!r}")


@dataclass
class DetectionStudy:
    """All runs of a detection study, with the paper's aggregations."""

    runs: List[RunDetection] = field(default_factory=list)
    sampler_names: Tuple[str, ...] = SAMPLER_ORDER

    def benchmarks(self) -> List[str]:
        seen: Dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.benchmark)
        return list(seen)

    def runs_for(self, benchmark: str) -> List[RunDetection]:
        return [run for run in self.runs if run.benchmark == benchmark]

    # -- detection rates (Figures 4 and 5) -------------------------------
    def detection_rate(self, benchmark: str, sampler: str,
                       which: str = "all") -> float:
        """Average over this benchmark's runs (the paper averages 3 runs)."""
        rates = [
            run.samplers[sampler].rate(run.reference(which))
            for run in self.runs_for(benchmark)
            if run.reference(which)
        ]
        return sum(rates) / len(rates) if rates else float("nan")

    def average_detection_rate(self, sampler: str,
                               which: str = "all") -> float:
        """Unweighted average across benchmarks (the figures' Average bar)."""
        rates = [
            self.detection_rate(bench, sampler, which)
            for bench in self.benchmarks()
        ]
        rates = [r for r in rates if r == r]  # drop NaNs
        return sum(rates) / len(rates) if rates else float("nan")

    # -- effective sampling rates (Table 3) ---------------------------------
    def esr(self, benchmark: str, sampler: str) -> float:
        runs = self.runs_for(benchmark)
        return sum(run.esr(sampler) for run in runs) / len(runs)

    def average_esr(self, sampler: str) -> float:
        """Plain average of per-benchmark effective sampling rates."""
        benches = self.benchmarks()
        return sum(self.esr(b, sampler) for b in benches) / len(benches)

    def weighted_esr(self, sampler: str) -> float:
        """Average weighted by each run's dynamic memory-operation count."""
        logged = sum(run.samplers[sampler].memory_logged for run in self.runs)
        total = sum(run.memory_ops for run in self.runs)
        return logged / total if total else 0.0

    # -- race counts (Table 4) -----------------------------------------------
    def race_counts(self, benchmark: str) -> Tuple[int, int, int]:
        """(total, rare, frequent) static races — medians over the runs."""
        runs = self.runs_for(benchmark)
        total = int(median(len(run.full_races) for run in runs))
        rare = int(median(len(run.rare) for run in runs))
        freq = int(median(len(run.frequent) for run in runs))
        return total, rare, freq


def _detect(events) -> Set[RaceKey]:
    detector = HappensBeforeDetector()
    detector.feed_all(events)
    return detector.report.static_races


def run_detection_cell(
    benchmark: str,
    seed: int,
    scale: float = 1.0,
    samplers: Sequence[str] = SAMPLER_ORDER,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    switch_prob: float = 0.05,
) -> RunDetection:
    """One §5.3 cell: a single marked execution with all samplers judged.

    The returned :class:`RunDetection` is a plain picklable dataclass (sets
    of PC-pair tuples, per-sampler counters), so cells can cross process
    boundaries and be persisted by the artifact cache.
    """
    program = workloads.build(benchmark, seed=seed, scale=scale)
    marked = run_marked(
        program, list(samplers),
        scheduler=RandomInterleaver(seed, switch_prob=switch_prob),
        cost_model=cost_model, seed=seed,
    )
    full_detector = HappensBeforeDetector()
    full_detector.feed_all(marked.log.events)
    full_races = full_detector.report.static_races
    rare, frequent = full_detector.report.classify(
        marked.run.nonstack_memory_ops
    )
    outcomes: Dict[str, SamplerOutcome] = {}
    for sampler in samplers:
        bit = marked.harness.sampler_bit(sampler)
        want = 1 << bit
        detected = _detect(
            event for event in marked.log.events
            if isinstance(event, SyncEvent) or (event.mask & want)
        )
        outcomes[sampler] = SamplerOutcome(
            detected=detected & full_races,
            memory_logged=marked.log.memory_logged_by(bit),
        )
    return RunDetection(
        benchmark=benchmark,
        seed=seed,
        memory_ops=marked.log.memory_count,
        nonstack_memory_ops=marked.run.nonstack_memory_ops,
        full_races=full_races,
        rare=rare,
        frequent=frequent,
        samplers=outcomes,
    )


def run_detection_study(
    benchmarks: Sequence[str] = None,
    samplers: Sequence[str] = SAMPLER_ORDER,
    seeds: Iterable[int] = (1, 2, 3),
    scale: float = 1.0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    switch_prob: float = 0.05,
) -> DetectionStudy:
    """Execute the §5.3 methodology serially and return the collected study.

    This is the single-process reference path; the experiment engine
    (:mod:`repro.experiments.engine`) produces bit-identical studies by
    running the same cells in parallel and merging them in this exact
    (benchmark, seed) order.
    """
    if benchmarks is None:
        benchmarks = workloads.race_eval_names()
    study = DetectionStudy(sampler_names=tuple(samplers))
    for name in benchmarks:
        for seed in seeds:
            study.runs.append(run_detection_cell(
                name, seed, scale=scale, samplers=samplers,
                cost_model=cost_model, switch_prob=switch_prob,
            ))
    return study
