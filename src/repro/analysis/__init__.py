"""Experiment metrics: detection rates, sampling rates, overheads, tables."""

from .detection import (
    DetectionStudy,
    RunDetection,
    SamplerOutcome,
    run_detection_study,
)
from .overhead import OverheadRow, run_overhead_study
from .tables import bar_chart, format_percent, format_slowdown, format_table

__all__ = [
    "DetectionStudy",
    "RunDetection",
    "SamplerOutcome",
    "run_detection_study",
    "OverheadRow",
    "run_overhead_study",
    "format_table",
    "format_percent",
    "format_slowdown",
    "bar_chart",
]
