"""A fluent DSL for authoring TIR programs.

Workload models (:mod:`repro.workloads`) are written against this builder
rather than constructing instruction dataclasses by hand::

    b = ProgramBuilder("demo")
    counter = b.global_addr("counter")
    lock = b.global_addr("lock")

    with b.function("worker") as f:
        f.lock(lock)
        f.read(counter)
        f.write(counter)
        f.unlock(lock)

    with b.function("main", slots=2) as f:
        f.fork("worker", tid_slot=0)
        f.fork("worker", tid_slot=1)
        f.join(0)
        f.join(1)

    program = b.build(entry="main")

The builder also owns a tiny static-data allocator: :meth:`global_addr`
reserves addresses in the globals region so that distinct named variables
never alias, and :meth:`global_array` reserves contiguous ranges for
``Indexed`` access patterns.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from ..layout import GLOBALS_BASE
from . import ops
from .addr import AddrLike
from .ops import Instr, ValueLike
from .program import Function, Program, ProgramError

__all__ = ["ProgramBuilder", "FunctionBuilder"]

#: Default alignment between named globals, so that adjacent variables land
#: on different addresses (and usually different cache-line-sized chunks).
_GLOBAL_ALIGN = 64


class FunctionBuilder:
    """Accumulates the body of one function; created by ``ProgramBuilder.function``."""

    def __init__(self, program_builder: "ProgramBuilder", name: str,
                 num_params: int, num_slots: int):
        self._pb = program_builder
        self.name = name
        self.num_params = num_params
        self.num_slots = num_slots
        self._blocks: List[List[Instr]] = [[]]

    # -- emission helpers ------------------------------------------------
    def _emit(self, instr: Instr) -> Instr:
        self._blocks[-1].append(instr)
        return instr

    def read(self, addr: AddrLike) -> Instr:
        """Emit a load from ``addr``."""
        return self._emit(ops.Read(addr))

    def write(self, addr: AddrLike) -> Instr:
        """Emit a store to ``addr``."""
        return self._emit(ops.Write(addr))

    def update(self, addr: AddrLike) -> Tuple[Instr, Instr]:
        """Emit a read-modify-write pair (a load then a store) on ``addr``."""
        return self.read(addr), self.write(addr)

    def compute(self, n: int = 1) -> Instr:
        """Emit ``n`` units of pure computation."""
        return self._emit(ops.Compute(n))

    def io(self, duration: ValueLike) -> Instr:
        """Emit blocking I/O lasting ``duration`` virtual time units."""
        return self._emit(ops.Io(duration))

    def lock(self, var: AddrLike, via_cas: bool = False) -> Instr:
        """Acquire ``var``; ``via_cas=True`` models a user-level CAS lock."""
        return self._emit(ops.Lock(var, via_cas=via_cas))

    def unlock(self, var: AddrLike, via_cas: bool = False) -> Instr:
        """Release ``var``; ``via_cas=True`` models a user-level CAS lock."""
        return self._emit(ops.Unlock(var, via_cas=via_cas))

    @contextmanager
    def critical(self, var: AddrLike) -> Iterator[None]:
        """Emit a lock/unlock pair bracketing the ``with`` body."""
        self.lock(var)
        yield
        self.unlock(var)

    def wait(self, var: AddrLike, consume: bool = True) -> Instr:
        return self._emit(ops.Wait(var, consume=consume))

    def notify(self, var: AddrLike) -> Instr:
        return self._emit(ops.Notify(var))

    def fork(self, func: str, *args: ValueLike,
             tid_slot: Optional[int] = None) -> Instr:
        return self._emit(ops.Fork(func, tuple(args), tid_slot))

    def join(self, tid_slot: int) -> Instr:
        return self._emit(ops.Join(tid_slot))

    def atomic_rmw(self, addr: AddrLike) -> Instr:
        return self._emit(ops.AtomicRMW(addr))

    def alloc(self, size: int, slot: int) -> Instr:
        return self._emit(ops.Alloc(size, slot))

    def free(self, slot: int) -> Instr:
        return self._emit(ops.Free(slot))

    def call(self, func: str, *args: ValueLike) -> Instr:
        return self._emit(ops.Call(func, tuple(args)))

    @contextmanager
    def loop(self, count: ValueLike) -> Iterator[None]:
        """Open a loop running the ``with`` body ``count`` times."""
        self._blocks.append([])
        yield
        body = tuple(self._blocks.pop())
        self._emit(ops.Loop(count, body))

    # -- finish ----------------------------------------------------------
    def _finish(self) -> Function:
        if len(self._blocks) != 1:
            raise ProgramError(f"{self.name}: unclosed loop block")
        return Function(
            name=self.name,
            body=tuple(self._blocks[0]),
            num_params=self.num_params,
            num_slots=self.num_slots,
        )


class ProgramBuilder:
    """Builds a :class:`~repro.tir.program.Program` function by function."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._functions: List[Function] = []
        self._names: Dict[str, int] = {}
        self._next_global = GLOBALS_BASE
        self._globals: Dict[str, int] = {}

    # -- static data -----------------------------------------------------
    def global_addr(self, name: str) -> int:
        """Reserve (or look up) a named address in the globals region."""
        if name not in self._globals:
            self._globals[name] = self._next_global
            self._next_global += _GLOBAL_ALIGN
        return self._globals[name]

    def global_array(self, name: str, count: int, stride: int = 8) -> int:
        """Reserve a contiguous array of ``count`` elements; return its base."""
        if name not in self._globals:
            base = self._next_global
            self._globals[name] = base
            span = count * stride
            aligned = (span + _GLOBAL_ALIGN - 1) // _GLOBAL_ALIGN * _GLOBAL_ALIGN
            self._next_global += max(aligned, _GLOBAL_ALIGN)
        return self._globals[name]

    @property
    def globals(self) -> Dict[str, int]:
        """Mapping of reserved global names to their addresses (read-only use)."""
        return dict(self._globals)

    # -- functions ---------------------------------------------------------
    @contextmanager
    def function(self, name: str, params: int = 0,
                 slots: int = 0) -> Iterator[FunctionBuilder]:
        """Open a function definition; the ``with`` body emits instructions."""
        if name in self._names:
            raise ProgramError(f"duplicate function name: {name!r}")
        fb = FunctionBuilder(self, name, params, slots)
        yield fb
        self._names[name] = len(self._functions)
        self._functions.append(fb._finish())

    def build(self, entry: str) -> Program:
        """Finalize into a validated :class:`Program` with entry ``entry``."""
        return Program(list(self._functions), entry=entry, name=self.name)
