"""Programs and functions: the static artifacts LiteRace instruments.

A :class:`Program` is the analogue of the x86 binary handed to the paper's
Phoenix-based rewriter: a set of named :class:`Function` bodies plus an entry
point.  Before execution or instrumentation a program must be *finalized*,
which walks every instruction (including loop bodies), assigns each a unique
program counter, and validates static well-formedness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from . import ops
from .ops import Call, Fork, Instr, Loop

__all__ = ["Function", "Program", "ProgramError"]


class ProgramError(ValueError):
    """A statically malformed TIR program."""


@dataclass(eq=False)
class Function:
    """A named straight-line (plus loops) sequence of TIR instructions.

    ``num_params`` declares how many integer parameters callers must pass.
    ``num_slots`` is the number of frame slots available for ``Alloc`` bases
    and ``Fork`` thread ids.
    """

    name: str
    body: Tuple[Instr, ...]
    num_params: int = 0
    num_slots: int = 0

    def instructions(self) -> Iterator[Instr]:
        """Yield every static instruction, descending into loop bodies."""
        stack: List[Instr] = list(reversed(self.body))
        while stack:
            instr = stack.pop()
            yield instr
            if isinstance(instr, Loop):
                stack.extend(reversed(instr.body))

    @property
    def static_size(self) -> int:
        """Number of static instructions (the 'binary size' analogue)."""
        return sum(1 for _ in self.instructions())


class Program:
    """A finalized, validated collection of functions with an entry point.

    Parameters
    ----------
    functions:
        The functions making up the program.  Names must be unique.
    entry:
        Name of the function the main thread starts in.
    name:
        Optional human-readable program name (used in reports).
    """

    def __init__(self, functions: List[Function], entry: str, name: str = "program"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        for func in functions:
            if func.name in self.functions:
                raise ProgramError(f"duplicate function name: {func.name!r}")
            self.functions[func.name] = func
        if entry not in self.functions:
            raise ProgramError(f"entry function {entry!r} not defined")
        self.entry = entry
        self._pc_map: Dict[int, Instr] = {}
        self._pc_owner: Dict[int, str] = {}
        self._finalized = False
        #: Ground-truth planted race sites (set by workload builders via
        #: :meth:`repro.workloads.patterns.RacePlan.attach`); empty for
        #: programs with no declared races.
        self.planted_races: Tuple = ()
        self.finalize()

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Assign unique PCs to every instruction and validate the program."""
        next_pc = 0
        self._pc_map.clear()
        self._pc_owner.clear()
        for func in self.functions.values():
            for instr in func.instructions():
                instr.pc = next_pc
                self._pc_map[next_pc] = instr
                self._pc_owner[next_pc] = func.name
                next_pc += 1
        self._validate()
        self._finalized = True

    def _validate(self) -> None:
        for func in self.functions.values():
            for instr in func.instructions():
                self._validate_instr(func, instr)

    def _validate_instr(self, func: Function, instr: Instr) -> None:
        if isinstance(instr, (Call, Fork)):
            callee = self.functions.get(instr.func)
            if callee is None:
                raise ProgramError(
                    f"{func.name}: call to undefined function {instr.func!r}"
                )
            if len(instr.args) != callee.num_params:
                raise ProgramError(
                    f"{func.name}: {instr.func!r} takes {callee.num_params} "
                    f"params, got {len(instr.args)}"
                )
        if isinstance(instr, Fork) and instr.tid_slot is not None:
            self._check_slot(func, instr.tid_slot)
        if isinstance(instr, ops.Join):
            self._check_slot(func, instr.tid_slot)
        if isinstance(instr, ops.Alloc):
            self._check_slot(func, instr.slot)
            if instr.size <= 0:
                raise ProgramError(f"{func.name}: Alloc size must be positive")
        if isinstance(instr, ops.Free):
            self._check_slot(func, instr.slot)
        if isinstance(instr, ops.Compute) and instr.n < 0:
            raise ProgramError(f"{func.name}: Compute count must be >= 0")
        if (isinstance(instr, ops.Io) and isinstance(instr.duration, int)
                and instr.duration < 0):
            raise ProgramError(f"{func.name}: Io duration must be >= 0")
        if isinstance(instr, Loop):
            if isinstance(instr.count, int) and instr.count < 0:
                raise ProgramError(f"{func.name}: Loop count must be >= 0")
            if not instr.body:
                raise ProgramError(f"{func.name}: Loop body must not be empty")

    def _check_slot(self, func: Function, slot: int) -> None:
        if not 0 <= slot < func.num_slots:
            raise ProgramError(
                f"{func.name}: slot {slot} out of range "
                f"(function declares {func.num_slots} slots)"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def instr_at(self, pc: int) -> Instr:
        """Return the instruction with program counter ``pc``."""
        return self._pc_map[pc]

    def function_of_pc(self, pc: int) -> str:
        """Name of the function containing the instruction at ``pc``.

        The symbolization a real tool performs when turning racing program
        counters into a readable report.
        """
        return self._pc_owner[pc]

    def symbolize(self, pc: int) -> str:
        """Human-readable location for ``pc``: ``function+offset (Opcode)``.

        Returns ``"pc<N>"`` for program counters this program does not
        contain (e.g. the sentinel -1 used for runtime-injected events).
        """
        if pc not in self._pc_map:
            return f"pc{pc}"
        name = self._pc_owner[pc]
        func = self.functions[name]
        offset = pc - min(i.pc for i in func.instructions())
        opcode = type(self._pc_map[pc]).__name__
        return f"{name}+{offset} ({opcode})"

    @property
    def num_functions(self) -> int:
        return len(self.functions)

    @property
    def static_size(self) -> int:
        """Total static instruction count across all functions."""
        return sum(f.static_size for f in self.functions.values())

    def function(self, name: str) -> Function:
        return self.functions[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r}, {self.num_functions} functions, "
            f"{self.static_size} instrs, entry={self.entry!r})"
        )
