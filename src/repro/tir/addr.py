"""Address expressions for the thread intermediate representation (TIR).

Most operands in a TIR program are plain integers naming a location in the
simulated flat address space.  Workloads, however, frequently need addresses
that are only known at run time: per-thread scratch areas, addresses passed
as function parameters, heap blocks returned by ``Alloc``, and addresses that
vary with a loop induction variable.  Those are expressed with the small
expression language in this module.

Every expression resolves to a concrete integer address against a
:class:`~repro.runtime.thread_state.Frame`.  Plain ``int`` operands are
accepted anywhere an address expression is and resolve to themselves; the
interpreter fast-paths them.

The address space layout itself (which ranges are stack, globals, heap) is
owned by :mod:`repro.runtime.memory`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "AddrExpr",
    "Param",
    "Tls",
    "HeapSlot",
    "Indexed",
    "AddrLike",
    "resolve_addr",
]


class AddrExpr:
    """Base class for run-time-resolved address expressions."""

    __slots__ = ()

    def resolve(self, frame) -> int:
        """Return the concrete address of this expression in ``frame``."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Param(AddrExpr):
    """The value of the ``index``-th parameter of the enclosing function.

    Parameters are plain integers (usually addresses) supplied by the caller
    at ``Call``/``Fork`` time.  An optional byte ``offset`` is added, which
    lets a single base pointer parameter address a whole record.
    """

    index: int
    offset: int = 0

    def resolve(self, frame) -> int:
        return frame.params[self.index] + self.offset


@dataclass(frozen=True, slots=True)
class Tls(AddrExpr):
    """An address inside the executing thread's thread-local block.

    Each simulated thread owns a private region of the address space
    (analogous to its stack plus TLS).  ``Tls(off)`` is the ``off``-th byte of
    that region.  Accesses through ``Tls`` can never race by construction,
    which makes them the TIR analogue of stack traffic; the detector's
    rare/frequent classification excludes them from its denominator exactly
    as the paper excludes "non-stack memory instructions".
    """

    offset: int

    def resolve(self, frame) -> int:
        return frame.thread.tls_base + self.offset


@dataclass(frozen=True, slots=True)
class HeapSlot(AddrExpr):
    """An address relative to a heap block held in a frame slot.

    ``Alloc(size, slot=k)`` stores the block's base address into slot ``k``
    of the current frame; ``HeapSlot(k, off)`` then names ``base + off``.
    """

    slot: int
    offset: int = 0

    def resolve(self, frame) -> int:
        return frame.slots[self.slot] + self.offset


@dataclass(frozen=True, slots=True)
class Indexed(AddrExpr):
    """``base + stride * i`` where ``i`` is a loop induction variable.

    ``depth`` selects which enclosing ``Loop`` supplies the index: 0 is the
    innermost loop, 1 its parent, and so on.  ``base`` may itself be any
    address expression (or a plain integer), so ``Indexed(Param(0), 8)``
    walks an array whose base pointer was passed in as the first argument.
    """

    base: "AddrLike"
    stride: int
    depth: int = 0

    def resolve(self, frame) -> int:
        base = self.base if isinstance(self.base, int) else self.base.resolve(frame)
        return base + self.stride * frame.loop_index(self.depth)


AddrLike = Union[int, AddrExpr]


def resolve_addr(addr: AddrLike, frame) -> int:
    """Resolve ``addr`` (an int or :class:`AddrExpr`) against ``frame``."""
    if isinstance(addr, int):
        return addr
    return addr.resolve(frame)
