"""Thread intermediate representation: the programs LiteRace instruments.

This subpackage is the reproduction's substitute for x86 binaries.  Workload
models are authored with :class:`ProgramBuilder`, validated and PC-stamped by
:class:`Program`, interpreted by :mod:`repro.runtime`, and rewritten by
:mod:`repro.core.instrument`.
"""

from .addr import AddrExpr, HeapSlot, Indexed, Param, Tls, resolve_addr
from .builder import FunctionBuilder, ProgramBuilder
from .ops import (
    MEMORY_OPS,
    SYNC_OPS,
    Alloc,
    AtomicRMW,
    Call,
    Compute,
    Fork,
    Free,
    Instr,
    Io,
    Join,
    Lock,
    Loop,
    Notify,
    Read,
    Unlock,
    Wait,
    Write,
)
from .program import Function, Program, ProgramError

__all__ = [
    "AddrExpr",
    "Param",
    "Tls",
    "HeapSlot",
    "Indexed",
    "resolve_addr",
    "ProgramBuilder",
    "FunctionBuilder",
    "Function",
    "Program",
    "ProgramError",
    "Instr",
    "Read",
    "Write",
    "Compute",
    "Io",
    "Lock",
    "Unlock",
    "Wait",
    "Notify",
    "Fork",
    "Join",
    "AtomicRMW",
    "Alloc",
    "Free",
    "Call",
    "Loop",
    "SYNC_OPS",
    "MEMORY_OPS",
]
