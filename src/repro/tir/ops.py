"""The TIR instruction set.

A TIR program is the reproduction's stand-in for the x86 binaries that the
paper instruments with the Phoenix compiler.  Functions are sequences of the
instructions defined here; the interpreter in :mod:`repro.runtime.executor`
gives them their dynamic semantics, and the instrumentation pass in
:mod:`repro.core.instrument` rewrites them the way LiteRace rewrites machine
code.

Instructions are ordinary (non-frozen) dataclasses compared by identity:
every static occurrence of an instruction in a program is a distinct object,
and program finalization stamps each with a unique program counter (``pc``).
Static data races are reported as pairs of these PCs, mirroring the paper's
grouping of dynamic races "based on the pair of instructions (identified by
the value of the program counter)".

The memory-operand instructions accept either a concrete ``int`` address or
any :class:`~repro.tir.addr.AddrExpr`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from .addr import AddrExpr, AddrLike

__all__ = [
    "Instr",
    "Read",
    "Write",
    "Compute",
    "Io",
    "Lock",
    "Unlock",
    "Wait",
    "Notify",
    "Fork",
    "Join",
    "AtomicRMW",
    "Alloc",
    "Free",
    "Call",
    "Loop",
    "SYNC_OPS",
    "MEMORY_OPS",
]

ValueLike = Union[int, AddrExpr]


@dataclass(eq=False)
class Instr:
    """Base class for all TIR instructions.

    ``pc`` is assigned by :meth:`repro.tir.program.Program.finalize` and is
    ``-1`` until then.  Instructions compare by identity.
    """

    pc: int = field(default=-1, init=False)


@dataclass(eq=False)
class Read(Instr):
    """Load from ``addr``.  A candidate for data-race detection."""

    addr: AddrLike


@dataclass(eq=False)
class Write(Instr):
    """Store to ``addr``.  A candidate for data-race detection."""

    addr: AddrLike


@dataclass(eq=False)
class Compute(Instr):
    """``n`` units of pure computation touching no shared state."""

    n: int = 1


@dataclass(eq=False)
class Io(Instr):
    """Blocking I/O taking ``duration`` virtual time units.

    I/O advances the virtual clock without executing instructions, so it
    dilutes instrumentation overhead — the effect the paper relies on when it
    notes that "the overhead of data-race detection is likely to be masked by
    the I/O latency" for interactive applications.  ``duration`` may be a
    parameter expression (e.g. a per-thread start-up stagger passed as a
    fork argument).
    """

    duration: ValueLike


@dataclass(eq=False)
class Lock(Instr):
    """Acquire the mutex identified by the address ``var``.

    ``via_cas=True`` models a *user-level* lock built from atomic
    compare-and-exchange instructions: the runtime still provides mutual
    exclusion, but the profiler only sees a raw atomic machine op (§4.2's
    problem case) — it cannot tell whether the CAS acts as a lock or an
    unlock, so it must log it as an ATOMIC sync event and wrap the
    timestamping in an extra critical section to stay consistent.
    """

    var: AddrLike
    via_cas: bool = False


@dataclass(eq=False)
class Unlock(Instr):
    """Release the mutex identified by the address ``var``.

    See :class:`Lock` for the meaning of ``via_cas``.
    """

    var: AddrLike
    via_cas: bool = False


@dataclass(eq=False)
class Wait(Instr):
    """Block until the event identified by ``var`` is signaled.

    With ``consume=True`` (the default) the event behaves like a semaphore
    down: one pending signal is consumed and other waiters keep blocking.
    With ``consume=False`` the event is manual-reset: once signaled, every
    present and future wait returns immediately.
    """

    var: AddrLike
    consume: bool = True


@dataclass(eq=False)
class Notify(Instr):
    """Signal the event identified by ``var`` (wakes waiters)."""

    var: AddrLike


@dataclass(eq=False)
class Fork(Instr):
    """Spawn a thread running ``func`` and store its tid in ``tid_slot``.

    ``args`` are resolved in the parent frame at fork time and become the
    child's parameters.
    """

    func: str
    args: Tuple[ValueLike, ...] = ()
    tid_slot: Optional[int] = None


@dataclass(eq=False)
class Join(Instr):
    """Block until the thread whose tid is stored in ``tid_slot`` finishes."""

    tid_slot: int


@dataclass(eq=False)
class AtomicRMW(Instr):
    """An atomic read-modify-write (compare-and-exchange) on ``addr``.

    Per Table 1 of the paper, atomic machine ops are synchronization
    operations whose SyncVar is the target memory address, and they require
    *additional* synchronization to timestamp atomically (§4.2) because the
    tool cannot tell whether a given CAS acts as a lock or an unlock.
    """

    addr: AddrLike


@dataclass(eq=False)
class Alloc(Instr):
    """Heap-allocate ``size`` bytes; store the base address in ``slot``.

    Allocation routines are monitored and treated as synchronization on the
    page containing the allocated memory (§4.3), which prevents false races
    between accesses to recycled memory.
    """

    size: int
    slot: int


@dataclass(eq=False)
class Free(Instr):
    """Free the heap block whose base address is in ``slot``."""

    slot: int


@dataclass(eq=False)
class Call(Instr):
    """Call function ``func`` with ``args`` resolved in the current frame."""

    func: str
    args: Tuple[ValueLike, ...] = ()


@dataclass(eq=False)
class Loop(Instr):
    """Execute ``body`` ``count`` times, binding a loop induction variable.

    ``count`` may be an int or an address-expression-style value (for
    example ``Param(1)`` to make the trip count a function argument).
    :class:`~repro.tir.addr.Indexed` operands inside ``body`` can reference
    the induction variable.
    """

    count: ValueLike
    body: Tuple[Instr, ...]


#: Instruction types that are synchronization operations.  These are logged
#: by *both* copies of an instrumented function — never sampled away —
#: because dropping any of them would break the happens-before graph and
#: produce false positives (§3.2).
SYNC_OPS = (Lock, Unlock, Wait, Notify, Fork, Join, AtomicRMW, Alloc, Free)

#: Instruction types whose dynamic instances are sampled memory accesses.
MEMORY_OPS = (Read, Write)
