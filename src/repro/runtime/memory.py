"""The simulated heap: a free-list allocator over the flat address space.

Only allocation *placement* is simulated — no bytes are stored, because race
detection needs addresses, not values.  The allocator deliberately recycles
freed blocks LIFO (last freed, first reused), which maximizes the chance
that memory freed by one thread is handed to another.  That is exactly the
hazard §4.3 of the paper addresses: without treating allocation routines as
synchronization on the containing page, a detector reports false races
between accesses to the same address under two different allocations.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..layout import HEAP_BASE, page_of

__all__ = ["Heap", "HeapError"]

#: Allocation granularity in bytes.
_ALIGN = 16


class HeapError(RuntimeError):
    """Invalid heap operation (double free, free of unknown block)."""


class Heap:
    """A deterministic free-list bump allocator."""

    def __init__(self, base: int = HEAP_BASE):
        self._base = base
        self._brk = base
        #: size-class -> LIFO stack of freed block base addresses
        self._free: Dict[int, List[int]] = {}
        #: live block base -> rounded size
        self._live: Dict[int, int] = {}
        self.allocs = 0
        self.frees = 0
        self.reuses = 0

    @staticmethod
    def _round(size: int) -> int:
        return (size + _ALIGN - 1) // _ALIGN * _ALIGN

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; return the block's base address."""
        if size <= 0:
            raise HeapError(f"allocation size must be positive, got {size}")
        rounded = self._round(size)
        stack = self._free.get(rounded)
        if stack:
            base = stack.pop()
            self.reuses += 1
        else:
            base = self._brk
            self._brk += rounded
        self._live[base] = rounded
        self.allocs += 1
        return base

    def free(self, base: int) -> None:
        """Free the block at ``base`` (must be a live allocation)."""
        rounded = self._live.pop(base, None)
        if rounded is None:
            raise HeapError(f"free of address {base:#x} that is not a live block")
        self._free.setdefault(rounded, []).append(base)
        self.frees += 1

    def block_size(self, base: int) -> int:
        """Rounded size of the live block at ``base``."""
        return self._live[base]

    def pages_of_block(self, base: int, size: int) -> Tuple[int, ...]:
        """Page numbers overlapped by a block of ``size`` bytes at ``base``."""
        first = page_of(base)
        last = page_of(base + self._round(size) - 1)
        return tuple(range(first, last + 1))

    @property
    def live_blocks(self) -> Set[int]:
        return set(self._live)

    @property
    def high_water_mark(self) -> int:
        """Bytes of heap address space ever handed out."""
        return self._brk - self._base
