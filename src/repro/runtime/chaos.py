"""A PCT-style randomized-priority scheduler for race manifestation.

Whether a planted race *manifests* depends on the interleaving; uniform
random preemption (the default :class:`RandomInterleaver`) explores
schedules near round-robin.  Probabilistic concurrency testing (PCT,
Burckhardt et al.) instead assigns each thread a random priority, always
runs the highest-priority runnable thread, and injects a small number of
random priority-change points — covering qualitatively different schedules
(long uninterrupted runs, starved threads, inverted start orders) with few
runs.

This scheduler broadens the race-manifestation studies: the workload tests
use it to check that planted races survive adversarial schedules and that
race-free programs stay race-free under them.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from .scheduler import Scheduler

__all__ = ["ChaosScheduler"]


class ChaosScheduler(Scheduler):
    """PCT-style priorities with ``change_points`` random reshuffles.

    Parameters
    ----------
    seed:
        Drives priorities and change-point positions.
    change_points:
        How many times during the run one thread's priority is re-drawn
        (PCT's *d* parameter; more points explore deeper orderings).
    expected_steps:
        Rough run length used to spread the change points; harmless if the
        actual run is shorter or longer.
    """

    def __init__(self, seed: int = 0, change_points: int = 3,
                 expected_steps: int = 100_000):
        if change_points < 0:
            raise ValueError("change_points must be >= 0")
        if expected_steps < 1:
            raise ValueError("expected_steps must be >= 1")
        self.seed = seed
        self.change_points = change_points
        self.expected_steps = expected_steps
        self._rng = random.Random(seed)
        self._priorities: Dict[int, float] = {}
        self._steps = 0
        self._change_at = sorted(
            self._rng.randrange(expected_steps)
            for _ in range(change_points)
        )

    def _priority_of(self, tid: int) -> float:
        if tid not in self._priorities:
            self._priorities[tid] = self._rng.random()
        return self._priorities[tid]

    def next_thread(self, current: Optional[int],
                    runnable: Sequence[int]) -> int:
        self._steps += 1
        while self._change_at and self._steps >= self._change_at[0]:
            self._change_at.pop(0)
            # Re-draw one thread's priority (PCT's priority-change point).
            victim = runnable[self._rng.randrange(len(runnable))]
            self._priorities[victim] = self._rng.random()
        return max(runnable, key=self._priority_of)

    def fork_seed(self, index: int) -> "ChaosScheduler":
        return ChaosScheduler(seed=self.seed * 7_919 + index + 1,
                              change_points=self.change_points,
                              expected_steps=self.expected_steps)

    def fresh(self) -> "ChaosScheduler":
        return ChaosScheduler(seed=self.seed,
                              change_points=self.change_points,
                              expected_steps=self.expected_steps)
