"""The instruction-count cost model driving the virtual clock.

The paper reports overheads as wall-clock slowdowns on a 4-core Opteron; this
reproduction replaces wall time with a virtual clock advanced by per-
instruction costs, in abstract units we call *cycles*.  What we preserve is
the paper's own decomposition (Figure 6): a run's time is the baseline cost
of the application's instructions plus three instrumentation components —
dispatch checks, synchronization logging, and sampled-memory logging — and
I/O latency masks all of them.

All constants live in one dataclass so that ablation experiments can vary
them (e.g. the timestamp-counter contention study in
:mod:`repro.experiments.ablations`).

Calibration notes
-----------------
* ``dispatch_check`` is 8, straight from §4.1: "our dispatch check involves
  8 instructions with 3 memory references and 1 branch".
* ``log_sync`` (plus the atomic-timestamping critical section) dominates
  LiteRace's overhead on the sync-intensive microbenchmarks (LKRHash,
  LFList), reproducing their 2.1-2.4x LiteRace slowdowns, exactly as in
  Figure 6 where synchronization logging is the tall component.
* ``log_memory`` dominates full logging of memory-intensive code,
  reproducing the 7.5x average / up to 33x full-logging slowdowns, while
  sampling reduces it to near zero for LiteRace.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Cycle costs for baseline execution and for instrumentation."""

    # -- baseline application costs (exist with or without LiteRace) -----
    #: One memory load or store.
    memory_op: int = 1
    #: One unit of pure computation.
    compute_unit: int = 1
    #: Acquire or release of an uncontended mutex / event op.
    sync_op: int = 20
    #: An atomic read-modify-write instruction.
    atomic_rmw: int = 8
    #: Call / return bookkeeping per function call.
    call: int = 4
    #: Loop-control overhead per iteration.
    loop_iter: int = 1
    #: Heap allocation / free.
    alloc: int = 60
    free: int = 40
    #: Thread creation / join (the OS-level part).
    fork: int = 2000
    join: int = 40

    # -- instrumentation costs (added by LiteRace / full logging) --------
    #: The dispatch check executed at every function entry (§4.1).
    dispatch_check: int = 8
    #: Logging one sampled memory access: address + pc into the per-thread
    #: buffer, metadata bookkeeping, and amortized flushing.  Deliberately
    #: the dominant cost, as in the paper, where logging every memory
    #: operation is what makes full logging 7.5x on average.
    log_memory: int = 112
    #: Logging one synchronization op: hashed-counter atomic increment plus
    #: record write (§4.2).
    log_sync: int = 20
    #: Extra critical section wrapped around atomic machine ops so their
    #: timestamps are consistent with their execution order (§4.2).
    log_atomic_extra: int = 20
    #: Contention penalty per sync log when timestamp counters are shared:
    #: ``contention_unit * (threads - 1) / timestamp_counters`` cycles are
    #: added per sync op.  With the paper's 128 counters this is negligible;
    #: the single-global-counter ablation makes it bite.
    contention_unit: int = 150

    # -- clock conversion -------------------------------------------------
    #: Virtual cycles per second, used only to express log volume in MB/s
    #: (Table 5) and execution times in seconds.
    cycles_per_second: int = 1_000_000_000

    def contention_cost(self, active_threads: int, num_counters: int) -> int:
        """Cycles lost to timestamp-counter contention for one sync log."""
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        if active_threads <= 1:
            return 0
        return self.contention_unit * (active_threads - 1) // num_counters

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy of this model with the given fields replaced."""
        return replace(self, **kwargs)


#: The model used by all headline experiments.
DEFAULT_COST_MODEL = CostModel()
