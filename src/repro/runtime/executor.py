"""The TIR interpreter: seeded interleaved execution with cost accounting.

The executor is the machine under test.  It steps one instruction of one
thread at a time (the scheduler picks which), maintains a virtual clock in
cost-model cycles, and exposes the hooks LiteRace instruments:

* at every function entry it consults the attached :class:`Harness` for the
  dispatch decision (instrumented vs uninstrumented copy) and its cost;
* every memory access executed by an *instrumented* function body is
  reported to the harness for logging;
* every synchronization operation is reported regardless of which copy is
  executing, because the happens-before graph must stay complete (§3.2).

Running with ``harness=None`` is the uninstrumented baseline configuration
of the paper's Figure 6.

Cost accounting is decomposed exactly as in Figure 6: baseline application
cycles, dispatch-check cycles, synchronization-logging cycles, and sampled-
memory-logging cycles, plus I/O time that is unaffected by instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Generator, Optional, Sequence, Tuple

from ..eventlog.events import SyncKind
from ..layout import is_stack_addr
from ..tir.addr import resolve_addr
from ..tir import ops
from ..tir.program import Program
from .cost import DEFAULT_COST_MODEL, CostModel
from .memory import Heap
from .scheduler import RandomInterleaver, Scheduler
from .sync import Event, Mutex
from .thread_state import Frame, ThreadState, ThreadStatus

__all__ = ["Executor", "Harness", "AccessGate", "RunResult", "DeadlockError",
           "ExecutionLimitError"]


class DeadlockError(RuntimeError):
    """All live threads are blocked."""


class ExecutionLimitError(RuntimeError):
    """The run exceeded ``max_steps`` (defends against runaway programs)."""


class AccessGate:
    """Pre-access trap interface used by directed schedulers.

    When an executor carries a gate, every Read/Write consults it *before*
    the access takes effect.  Returning True parks the thread (it blocks and
    the step completes without the access happening); the gate re-decides on
    every subsequent step of that thread until it answers False, at which
    point the access proceeds.  A parked step performs no work and emits no
    events, so a recorded schedule with parked steps removed replays the
    identical execution on a gate-less executor — the property the race
    validator's witness traces are built on.

    Gates wake parked threads via :meth:`Executor.wake_thread`; if every
    live thread ends up blocked while the gate holds threads parked, the
    executor asks the gate to release them instead of declaring deadlock.
    """

    def on_access(self, tid: int, pc: int, addr: int, is_write: bool) -> bool:
        """Return True to park ``tid`` immediately before this access."""
        raise NotImplementedError

    def release_all(self) -> bool:
        """Unpark everything (deadlock fallback); True if anything woke."""
        return False


class Harness:
    """Instrumentation hook interface implemented by :mod:`repro.core`.

    The executor charges the returned cycle counts to the matching Figure-6
    bucket.  A harness that always returns ``(False, 0)`` / ``0`` is
    equivalent to no instrumentation.
    """

    def enter_function(self, tid: int, func_name: str) -> Tuple[bool, int]:
        """Dispatch check: return (run instrumented copy?, cycles spent)."""
        raise NotImplementedError

    def exit_function(self, tid: int) -> None:
        """Called when the function whose entry was last reported returns.

        Entries and exits are properly nested per thread; harnesses that
        track per-activation state (the §5.3 marked harness) maintain a
        stack keyed by tid.
        """

    def memory_event(self, tid: int, addr: int, pc: int, is_write: bool) -> int:
        """Log a sampled memory access; return cycles spent."""
        raise NotImplementedError

    def sync_event(self, tid: int, kind: SyncKind, var: Tuple[str, int],
                   pc: int, active_threads: int) -> int:
        """Log a synchronization op; return cycles spent."""
        raise NotImplementedError


@dataclass
class RunResult:
    """Everything measured about one execution."""

    program_name: str
    #: Total virtual time (cycles), including I/O and instrumentation.
    clock: int = 0
    #: Cycles the uninstrumented application would spend computing.
    baseline_cycles: int = 0
    #: Virtual time spent blocked on I/O (identical with/without the tool).
    io_cycles: int = 0
    #: Instrumentation cycles, by Figure-6 bucket.
    dispatch_cycles: int = 0
    sync_log_cycles: int = 0
    memory_log_cycles: int = 0
    #: Dynamic operation counts.
    memory_ops: int = 0
    nonstack_memory_ops: int = 0
    sampled_memory_ops: int = 0
    #: Memory ops whose log call the static pass removed (repro.staticpass):
    #: sampled by the dispatch check but never logged.
    pruned_memory_ops: int = 0
    sync_ops: int = 0
    function_calls: int = 0
    instrumented_calls: int = 0
    threads_created: int = 0
    steps: int = 0
    #: Dynamic iteration count per static Loop instruction (keyed by the
    #: loop's pc) — the offline profile §7 suggests for finding the
    #: high-trip-count loops worth splitting.
    loop_iterations: Dict[int, int] = field(default_factory=dict)

    @property
    def baseline_time(self) -> int:
        """Virtual time an uninstrumented run of this execution would take."""
        return self.baseline_cycles + self.io_cycles

    @property
    def instrumentation_cycles(self) -> int:
        return self.dispatch_cycles + self.sync_log_cycles + self.memory_log_cycles

    @property
    def slowdown(self) -> float:
        """Run time relative to the uninstrumented baseline (1.0 = no cost)."""
        if self.baseline_time == 0:
            return 1.0
        return self.clock / self.baseline_time

    @property
    def effective_sampling_rate(self) -> float:
        """Fraction of dynamic memory ops that were logged."""
        if self.memory_ops == 0:
            return 0.0
        return self.sampled_memory_ops / self.memory_ops


class Executor:
    """Interprets a finalized :class:`Program` under a scheduler."""

    def __init__(
        self,
        program: Program,
        scheduler: Optional[Scheduler] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        harness: Optional[Harness] = None,
        max_steps: int = 200_000_000,
        pruned_pcs: Optional[FrozenSet[int]] = None,
        gate: Optional["AccessGate"] = None,
    ):
        self.program = program
        self.scheduler = scheduler if scheduler is not None else RandomInterleaver()
        self.cost = cost_model
        self.harness = harness
        self.max_steps = max_steps
        #: Optional pre-access trap (see :class:`AccessGate`).  ``None`` for
        #: every normal run: the gate check then compiles to nothing, so
        #: ungated executions take exactly the same steps as before the
        #: gate existed — the determinism contract replay relies on.
        self.gate = gate
        #: Read/Write PCs whose logging call the static pass pruned from
        #: the instrumented clone; the executor models the missing call by
        #: skipping the memory hook (no log record, no log-cost cycles).
        self.pruned_pcs = frozenset() if pruned_pcs is None \
            else frozenset(pruned_pcs)

        self.heap = Heap()
        self.result = RunResult(program_name=program.name)
        self._threads: Dict[int, ThreadState] = {}
        self._next_tid = 0
        self._mutexes: Dict[int, Mutex] = {}
        self._events: Dict[int, Event] = {}
        self._live_threads = 0
        self._current: Optional[int] = None

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def _charge(self, cycles: int) -> None:
        self.result.baseline_cycles += cycles
        self.result.clock += cycles

    def _charge_io(self, cycles: int) -> None:
        self.result.io_cycles += cycles
        self.result.clock += cycles

    def _charge_dispatch(self, cycles: int) -> None:
        self.result.dispatch_cycles += cycles
        self.result.clock += cycles

    def _charge_sync_log(self, cycles: int) -> None:
        self.result.sync_log_cycles += cycles
        self.result.clock += cycles

    def _charge_mem_log(self, cycles: int) -> None:
        self.result.memory_log_cycles += cycles
        self.result.clock += cycles

    # ------------------------------------------------------------------
    # Harness hooks
    # ------------------------------------------------------------------
    def _hook_entry(self, tid: int, func_name: str) -> bool:
        self.result.function_calls += 1
        if self.harness is None:
            return False
        instrumented, cycles = self.harness.enter_function(tid, func_name)
        self._charge_dispatch(cycles)
        if instrumented:
            self.result.instrumented_calls += 1
        return instrumented

    def _hook_memory(self, tid: int, addr: int, pc: int, is_write: bool) -> None:
        self.result.sampled_memory_ops += 1
        cycles = self.harness.memory_event(tid, addr, pc, is_write)
        self._charge_mem_log(cycles)

    def _hook_sync(self, tid: int, kind: SyncKind, var: Tuple[str, int],
                   pc: int) -> None:
        self.result.sync_ops += 1
        if self.harness is None:
            return
        cycles = self.harness.sync_event(tid, kind, var, pc, self._live_threads)
        self._charge_sync_log(cycles)

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def _spawn(self, func_name: str, params: Tuple[int, ...]) -> ThreadState:
        tid = self._next_tid
        self._next_tid += 1
        thread = ThreadState(tid, func_name)
        thread.generator = self._thread_body(thread, func_name, params)
        self._threads[tid] = thread
        self._live_threads += 1
        self.result.threads_created += 1
        return thread

    def _finish_thread(self, thread: ThreadState) -> None:
        thread.status = ThreadStatus.FINISHED
        self._live_threads -= 1
        self._hook_sync(thread.tid, SyncKind.THREAD_EXIT, ("thread", thread.tid), -1)
        for joiner_tid in thread.joiners:
            self._threads[joiner_tid].status = ThreadStatus.RUNNABLE
        thread.joiners.clear()

    def _block(self, thread: ThreadState) -> None:
        thread.status = ThreadStatus.BLOCKED

    def _wake(self, tid: int) -> None:
        self._threads[tid].status = ThreadStatus.RUNNABLE

    def wake_thread(self, tid: int) -> None:
        """Unpark a thread a gate previously parked (gate use only)."""
        self._wake(tid)

    # ------------------------------------------------------------------
    # Interpreter (generator per thread; one yield per instruction)
    # ------------------------------------------------------------------
    def _thread_body(self, thread: ThreadState, func_name: str,
                     params: Tuple[int, ...]) -> Generator[None, None, None]:
        self._hook_sync(thread.tid, SyncKind.THREAD_START,
                        ("thread", thread.tid), -1)
        yield
        yield from self._exec_function(thread, func_name, params)

    def _exec_function(self, thread: ThreadState, func_name: str,
                       params: Tuple[int, ...]) -> Generator[None, None, None]:
        func = self.program.function(func_name)
        instrumented = self._hook_entry(thread.tid, func_name)
        frame = Frame(thread, func_name, params, func.num_slots)
        self._charge(self.cost.call)
        yield
        yield from self._exec_block(thread, frame, func.body, instrumented)
        if self.harness is not None:
            self.harness.exit_function(thread.tid)

    def _exec_block(self, thread: ThreadState, frame: Frame,
                    block: Sequence[ops.Instr],
                    instrumented: bool) -> Generator[None, None, None]:
        for instr in block:
            thread.instructions_retired += 1
            handler = _HANDLERS.get(type(instr))
            if handler is None:
                raise TypeError(f"unhandled instruction {instr!r}")
            yield from handler(self, thread, frame, instr, instrumented)

    # -- instruction handlers (each yields >= 1 time) ---------------------
    def _do_read(self, thread, frame, instr: ops.Read, instrumented):
        addr = resolve_addr(instr.addr, frame)
        if self.gate is not None:
            yield from self._gate_wait(thread, instr.pc, addr, False)
        self._account_memory(thread, addr, instr.pc, False, instrumented)
        yield

    def _do_write(self, thread, frame, instr: ops.Write, instrumented):
        addr = resolve_addr(instr.addr, frame)
        if self.gate is not None:
            yield from self._gate_wait(thread, instr.pc, addr, True)
        self._account_memory(thread, addr, instr.pc, True, instrumented)
        yield

    def _gate_wait(self, thread: ThreadState, pc: int, addr: int,
                   is_write: bool) -> Generator[None, None, None]:
        # Each parked yield is a step with no effect and no events; the gate
        # (via wake_thread) decides when the access may finally proceed.
        while self.gate.on_access(thread.tid, pc, addr, is_write):
            self._block(thread)
            yield

    def _account_memory(self, thread: ThreadState, addr: int, pc: int,
                        is_write: bool, instrumented: bool) -> None:
        self.result.memory_ops += 1
        if not is_stack_addr(addr):
            self.result.nonstack_memory_ops += 1
        self._charge(self.cost.memory_op)
        if instrumented and self.harness is not None:
            if pc in self.pruned_pcs:
                self.result.pruned_memory_ops += 1
            else:
                self._hook_memory(thread.tid, addr, pc, is_write)

    def _do_compute(self, thread, frame, instr: ops.Compute, instrumented):
        self._charge(self.cost.compute_unit * instr.n)
        yield

    def _do_io(self, thread, frame, instr: ops.Io, instrumented):
        self._charge_io(resolve_addr(instr.duration, frame))
        yield

    def _do_lock(self, thread, frame, instr: ops.Lock, instrumented):
        addr = resolve_addr(instr.var, frame)
        mutex = self._mutexes.setdefault(addr, Mutex())
        if not mutex.acquire(thread.tid):
            self._block(thread)
            yield  # parked until release() hands us ownership
        if instr.via_cas:
            # A user-level CAS lock: the profiler sees a raw atomic op.
            self._charge(self.cost.atomic_rmw)
            self._hook_sync(thread.tid, SyncKind.ATOMIC, ("atomic", addr),
                            instr.pc)
        else:
            self._charge(self.cost.sync_op)
            # Timestamp after acquiring (§4.2) so the unlock that let us in
            # has a smaller timestamp.
            self._hook_sync(thread.tid, SyncKind.LOCK, ("mutex", addr),
                            instr.pc)
        yield

    def _do_unlock(self, thread, frame, instr: ops.Unlock, instrumented):
        addr = resolve_addr(instr.var, frame)
        mutex = self._mutexes.get(addr)
        if mutex is None:
            from .sync import SyncError

            raise SyncError(f"unlock of never-locked mutex {addr:#x}")
        if instr.via_cas:
            self._charge(self.cost.atomic_rmw)
            self._hook_sync(thread.tid, SyncKind.ATOMIC, ("atomic", addr),
                            instr.pc)
        else:
            self._charge(self.cost.sync_op)
            # Timestamp before releasing (§4.2).
            self._hook_sync(thread.tid, SyncKind.UNLOCK, ("mutex", addr),
                            instr.pc)
        woken = mutex.release(thread.tid)
        if woken is not None:
            self._wake(woken)
        yield

    def _do_wait(self, thread, frame, instr: ops.Wait, instrumented):
        addr = resolve_addr(instr.var, frame)
        event = self._events.setdefault(addr, Event())
        if not event.wait(thread.tid, instr.consume):
            self._block(thread)
            yield  # parked until notify()
        self._charge(self.cost.sync_op)
        # Timestamp after the wait completes (§4.2).
        self._hook_sync(thread.tid, SyncKind.WAIT, ("event", addr), instr.pc)
        yield

    def _do_notify(self, thread, frame, instr: ops.Notify, instrumented):
        addr = resolve_addr(instr.var, frame)
        event = self._events.setdefault(addr, Event())
        self._charge(self.cost.sync_op)
        # Timestamp before the notify takes effect (§4.2).
        self._hook_sync(thread.tid, SyncKind.NOTIFY, ("event", addr), instr.pc)
        for tid in event.notify():
            self._wake(tid)
        yield

    def _do_fork(self, thread, frame, instr: ops.Fork, instrumented):
        params = tuple(resolve_addr(arg, frame) for arg in instr.args)
        self._charge(self.cost.fork)
        child = self._spawn(instr.func, params)
        # Timestamp the fork before the child can run (§4.2): the fork event
        # is emitted now; the child's THREAD_START acquire pairs with it.
        self._hook_sync(thread.tid, SyncKind.FORK, ("thread", child.tid), instr.pc)
        if instr.tid_slot is not None:
            frame.slots[instr.tid_slot] = child.tid
        yield

    def _do_join(self, thread, frame, instr: ops.Join, instrumented):
        target_tid = frame.slots[instr.tid_slot]
        target = self._threads[target_tid]
        if not target.finished:
            target.joiners.append(thread.tid)
            self._block(thread)
            yield  # parked until the target finishes
        self._charge(self.cost.join)
        # Timestamp after the join completes (§4.2).
        self._hook_sync(thread.tid, SyncKind.JOIN, ("thread", target_tid), instr.pc)
        yield

    def _do_atomic(self, thread, frame, instr: ops.AtomicRMW, instrumented):
        addr = resolve_addr(instr.addr, frame)
        self._charge(self.cost.atomic_rmw)
        self._hook_sync(thread.tid, SyncKind.ATOMIC, ("atomic", addr), instr.pc)
        yield

    def _do_alloc(self, thread, frame, instr: ops.Alloc, instrumented):
        base = self.heap.alloc(instr.size)
        frame.slots[instr.slot] = base
        self._charge(self.cost.alloc)
        for page in self.heap.pages_of_block(base, instr.size):
            self._hook_sync(thread.tid, SyncKind.ALLOC_PAGE, ("page", page),
                            instr.pc)
        yield

    def _do_free(self, thread, frame, instr: ops.Free, instrumented):
        base = frame.slots[instr.slot]
        size = self.heap.block_size(base)
        self._charge(self.cost.free)
        for page in self.heap.pages_of_block(base, size):
            self._hook_sync(thread.tid, SyncKind.FREE_PAGE, ("page", page),
                            instr.pc)
        self.heap.free(base)
        yield

    def _do_call(self, thread, frame, instr: ops.Call, instrumented):
        params = tuple(resolve_addr(arg, frame) for arg in instr.args)
        yield from self._exec_function(thread, instr.func, params)

    def _do_loop(self, thread, frame, instr: ops.Loop, instrumented):
        count = resolve_addr(instr.count, frame)
        if count:
            iterations = self.result.loop_iterations
            iterations[instr.pc] = iterations.get(instr.pc, 0) + count
        frame.push_loop()
        try:
            for _ in range(count):
                self._charge(self.cost.loop_iter)
                yield from self._exec_block(thread, frame, instr.body,
                                            instrumented)
                frame.advance_loop()
        finally:
            frame.pop_loop()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, entry_params: Tuple[int, ...] = ()) -> RunResult:
        """Execute the program to completion; return the run's measurements."""
        self._spawn(self.program.entry, entry_params)
        steps = 0
        while True:
            runnable = [
                tid for tid, t in self._threads.items()
                if t.status is ThreadStatus.RUNNABLE
            ]
            if not runnable:
                if self.gate is not None and self.gate.release_all():
                    continue  # a parked thread was the only way forward
                blocked = [
                    t.tid for t in self._threads.values()
                    if t.status is ThreadStatus.BLOCKED
                ]
                if blocked:
                    raise DeadlockError(
                        f"deadlock: threads {blocked} blocked, none runnable"
                    )
                break  # all threads finished
            tid = self.scheduler.next_thread(self._current, runnable)
            thread = self._threads[tid]
            self._current = tid
            try:
                next(thread.generator)
            except StopIteration:
                self._finish_thread(thread)
                self._current = None
            steps += 1
            if steps > self.max_steps:
                raise ExecutionLimitError(
                    f"exceeded max_steps={self.max_steps}"
                )
        self.result.steps = steps
        return self.result


_HANDLERS = {
    ops.Read: Executor._do_read,
    ops.Write: Executor._do_write,
    ops.Compute: Executor._do_compute,
    ops.Io: Executor._do_io,
    ops.Lock: Executor._do_lock,
    ops.Unlock: Executor._do_unlock,
    ops.Wait: Executor._do_wait,
    ops.Notify: Executor._do_notify,
    ops.Fork: Executor._do_fork,
    ops.Join: Executor._do_join,
    ops.AtomicRMW: Executor._do_atomic,
    ops.Alloc: Executor._do_alloc,
    ops.Free: Executor._do_free,
    ops.Call: Executor._do_call,
    ops.Loop: Executor._do_loop,
}
