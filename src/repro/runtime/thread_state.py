"""Per-thread interpreter state: threads, frames, and loop stacks."""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Optional, Tuple

from ..layout import tls_base_for

__all__ = ["ThreadStatus", "ThreadState", "Frame"]


class ThreadStatus(enum.Enum):
    """Lifecycle of a simulated thread."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"


class ThreadState:
    """One simulated thread: identity, TLS base, status and its interpreter.

    ``generator`` is the interpreter coroutine created by the executor; it
    yields one effect per instruction and is resumed with the effect's
    result.  ``resume_value`` holds the value to send on the next resume
    (set when a blocking operation completes).
    """

    __slots__ = (
        "tid",
        "tls_base",
        "status",
        "generator",
        "resume_value",
        "joiners",
        "entry_function",
        "instructions_retired",
    )

    def __init__(self, tid: int, entry_function: str):
        self.tid = tid
        self.tls_base = tls_base_for(tid)
        self.status = ThreadStatus.RUNNABLE
        self.generator: Optional[Generator] = None
        self.resume_value: Any = None
        #: tids blocked in ``Join`` waiting for this thread to finish.
        self.joiners: List[int] = []
        self.entry_function = entry_function
        self.instructions_retired = 0

    @property
    def finished(self) -> bool:
        return self.status is ThreadStatus.FINISHED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadState(tid={self.tid}, {self.status.value}, entry={self.entry_function!r})"


class Frame:
    """One activation record: parameters, slots, and the loop-index stack.

    Address expressions (:mod:`repro.tir.addr`) resolve against frames:
    ``Param`` reads :attr:`params`, ``HeapSlot`` reads :attr:`slots`,
    ``Tls`` reads ``thread.tls_base`` and ``Indexed`` reads
    :meth:`loop_index`.
    """

    __slots__ = ("thread", "function_name", "params", "slots", "_loop_indices")

    def __init__(self, thread: ThreadState, function_name: str,
                 params: Tuple[int, ...], num_slots: int):
        self.thread = thread
        self.function_name = function_name
        self.params = params
        self.slots: List[int] = [0] * num_slots
        self._loop_indices: List[int] = []

    def push_loop(self) -> None:
        self._loop_indices.append(0)

    def pop_loop(self) -> None:
        self._loop_indices.pop()

    def advance_loop(self) -> None:
        self._loop_indices[-1] += 1

    def loop_index(self, depth: int = 0) -> int:
        """Induction variable of the ``depth``-th enclosing loop (0=innermost)."""
        return self._loop_indices[-1 - depth]

    @property
    def loop_depth(self) -> int:
        return len(self._loop_indices)
