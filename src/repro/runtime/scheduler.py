"""Thread interleaving policies.

The executor consults a scheduler before every instruction to decide which
runnable thread steps next.  All policies are deterministic functions of
their seed, so a (program, scheduler) pair fully determines the execution —
including its logs and its data races.  The paper averages results over
three runs precisely because interleavings vary; our experiments do the same
by varying the seed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

__all__ = ["Scheduler", "RandomInterleaver", "RoundRobinScheduler"]


class Scheduler:
    """Interface: choose the next thread to step."""

    def next_thread(self, current: Optional[int], runnable: Sequence[int]) -> int:
        """Return the tid (from ``runnable``, non-empty) to step next.

        ``current`` is the tid that stepped last, or None if it just blocked
        or finished (or at the very first step).
        """
        raise NotImplementedError

    def fork_seed(self, index: int) -> "Scheduler":
        """A scheduler of the same policy with a derived seed (for re-runs).

        Distinct ``index`` values must yield distinct decision streams, and
        every derived stream must differ from the parent's — the race
        validator (:mod:`repro.validate`) relies on this to explore a fresh
        interleaving per attempt.
        """
        raise NotImplementedError

    def fresh(self) -> "Scheduler":
        """A pristine scheduler with this one's configuration.

        Schedulers carry mutable decision state (RNG position, quantum
        countdowns, priorities), so an instance that has driven one
        execution must never be reused for another: determinism — the
        invariant record/replay depends on — requires a fresh instance per
        run.
        """
        raise NotImplementedError


class RandomInterleaver(Scheduler):
    """Keep running the current thread; preempt with probability ``switch_prob``.

    This models an OS scheduler with occasional preemption plus the
    fine-grained nondeterminism of simultaneous multicore execution.  Lower
    ``switch_prob`` yields longer uninterrupted runs (coarser interleaving).
    """

    def __init__(self, seed: int = 0, switch_prob: float = 0.05):
        if not 0.0 <= switch_prob <= 1.0:
            raise ValueError("switch_prob must be in [0, 1]")
        self.seed = seed
        self.switch_prob = switch_prob
        self._rng = random.Random(seed)

    def next_thread(self, current: Optional[int], runnable: Sequence[int]) -> int:
        if (
            current is not None
            and current in runnable
            and self._rng.random() >= self.switch_prob
        ):
            return current
        return runnable[self._rng.randrange(len(runnable))]

    def fork_seed(self, index: int) -> "RandomInterleaver":
        return RandomInterleaver(seed=self.seed * 1_000_003 + index + 1,
                                 switch_prob=self.switch_prob)

    def fresh(self) -> "RandomInterleaver":
        return RandomInterleaver(seed=self.seed, switch_prob=self.switch_prob)


class RoundRobinScheduler(Scheduler):
    """Rotate among runnable threads every ``quantum`` instructions."""

    def __init__(self, quantum: int = 50):
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.quantum = quantum
        self._remaining = quantum
        self._last: Optional[int] = None

    def next_thread(self, current: Optional[int], runnable: Sequence[int]) -> int:
        if current is not None and current in runnable:
            if current == self._last:
                self._remaining -= 1
            else:
                self._remaining = self.quantum - 1
            if self._remaining > 0:
                self._last = current
                return current
        # Rotate: pick the runnable tid after `current` in tid order.
        ordered = sorted(runnable)
        if current is None or current not in ordered:
            chosen = ordered[0]
        else:
            chosen = ordered[(ordered.index(current) + 1) % len(ordered)]
        self._remaining = self.quantum
        self._last = chosen
        return chosen

    def fork_seed(self, index: int) -> "RoundRobinScheduler":
        # index 0 must not reproduce the parent's quantum (and therefore its
        # exact decision stream) — every derived policy is a new interleaving.
        return RoundRobinScheduler(quantum=self.quantum + index + 1)

    def fresh(self) -> "RoundRobinScheduler":
        return RoundRobinScheduler(quantum=self.quantum)
