"""Runtime synchronization objects: mutexes and events.

These give the TIR's ``Lock``/``Unlock``/``Wait``/``Notify`` instructions
their blocking semantics.  Sync objects are identified by address (their
*SyncVar*, in the paper's vocabulary) and created lazily on first use, just
as the real tool discovers synchronization objects dynamically.

The wake-up policies are deterministic (FIFO) so that a given scheduler seed
always reproduces the same execution.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

__all__ = ["Mutex", "Event", "SyncError"]


class SyncError(RuntimeError):
    """Invalid synchronization usage (e.g. unlocking an unowned mutex)."""


class Mutex:
    """A non-reentrant mutual-exclusion lock with a FIFO wait queue."""

    __slots__ = ("owner", "waiters")

    def __init__(self):
        self.owner: Optional[int] = None
        self.waiters: Deque[int] = deque()

    def acquire(self, tid: int) -> bool:
        """Try to acquire for ``tid``; returns False (and queues) if held."""
        if self.owner is None:
            self.owner = tid
            return True
        if self.owner == tid:
            raise SyncError(f"thread {tid} re-acquired a non-reentrant mutex")
        self.waiters.append(tid)
        return False

    def release(self, tid: int) -> Optional[int]:
        """Release by ``tid``; return the tid of the woken waiter, if any.

        Ownership passes directly to the woken waiter (no barging), which
        keeps executions deterministic.
        """
        if self.owner != tid:
            raise SyncError(
                f"thread {tid} released a mutex owned by {self.owner}"
            )
        if self.waiters:
            self.owner = self.waiters.popleft()
            return self.owner
        self.owner = None
        return None


class Event:
    """A condition/event object supporting both semaphore and sticky waits.

    ``Notify`` adds one pending signal and marks the event as having been
    signaled at least once.  A *consuming* wait (semaphore style) takes one
    pending signal or blocks; a *sticky* wait (manual-reset style) returns
    immediately once the event has ever been signaled.
    """

    __slots__ = ("pending", "signaled", "_consumers", "_watchers")

    def __init__(self):
        self.pending = 0
        self.signaled = False
        self._consumers: Deque[int] = deque()  # blocked consuming waiters
        self._watchers: Deque[int] = deque()   # blocked sticky waiters

    def wait(self, tid: int, consume: bool) -> bool:
        """Try to pass the event; returns False (and queues) if it blocks."""
        if consume:
            if self.pending > 0:
                self.pending -= 1
                return True
            self._consumers.append(tid)
            return False
        if self.signaled:
            return True
        self._watchers.append(tid)
        return False

    def notify(self) -> List[int]:
        """Signal once; return the tids woken by this signal."""
        self.signaled = True
        woken: List[int] = []
        # Every sticky watcher passes once the event has been signaled.
        while self._watchers:
            woken.append(self._watchers.popleft())
        # One pending signal either wakes one consumer or accumulates.
        if self._consumers:
            woken.append(self._consumers.popleft())
        else:
            self.pending += 1
        return woken

    @property
    def has_waiters(self) -> bool:
        return bool(self._consumers or self._watchers)
