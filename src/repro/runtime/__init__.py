"""Execution substrate: interpreter, scheduler, sync objects, heap, costs."""

from .chaos import ChaosScheduler
from .cost import DEFAULT_COST_MODEL, CostModel
from .executor import (
    DeadlockError,
    ExecutionLimitError,
    Executor,
    Harness,
    RunResult,
)
from .memory import Heap, HeapError
from .scheduler import RandomInterleaver, RoundRobinScheduler, Scheduler
from .sync import Event, Mutex, SyncError
from .thread_state import Frame, ThreadState, ThreadStatus

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Executor",
    "Harness",
    "RunResult",
    "DeadlockError",
    "ExecutionLimitError",
    "Heap",
    "HeapError",
    "Scheduler",
    "RandomInterleaver",
    "RoundRobinScheduler",
    "ChaosScheduler",
    "Mutex",
    "Event",
    "SyncError",
    "Frame",
    "ThreadState",
    "ThreadStatus",
]
