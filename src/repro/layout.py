"""Simulated address-space layout.

The TIR machine has a single flat address space shared by all threads,
partitioned into fixed regions.  The partition matters to two consumers:

* The allocator (:mod:`repro.runtime.memory`) hands out heap blocks from the
  heap region and maps addresses to pages for the paper's alloc-as-page-sync
  rule (§4.3).
* The race detector's rare/frequent classification (Table 4) counts "non-stack
  memory instructions"; :func:`is_stack_addr` identifies the thread-private
  region that plays the role of the stack.
"""

from __future__ import annotations

__all__ = [
    "PAGE_SIZE",
    "GLOBALS_BASE",
    "HEAP_BASE",
    "TLS_BASE",
    "TLS_SIZE",
    "is_stack_addr",
    "page_of",
    "tls_base_for",
]

#: Bytes per page; the granularity of allocation-as-synchronization.
PAGE_SIZE = 4096

#: Start of the global (static data) region.  Sync vars and named shared
#: variables live here.
GLOBALS_BASE = 0x1000_0000

#: Start of the heap region served by the bump allocator.
HEAP_BASE = 0x4000_0000

#: Start of the per-thread private (stack/TLS) region.
TLS_BASE = 0x8000_0000

#: Bytes of private region reserved per thread.
TLS_SIZE = 0x10_0000


def is_stack_addr(addr: int) -> bool:
    """True if ``addr`` lies in a thread-private (stack-analogue) region."""
    return addr >= TLS_BASE


def page_of(addr: int) -> int:
    """The page number containing ``addr``."""
    return addr // PAGE_SIZE


def tls_base_for(tid: int) -> int:
    """Base address of thread ``tid``'s private region."""
    return TLS_BASE + tid * TLS_SIZE
