"""Dryad channel workloads (§5.1).

The paper's Dryad benchmark exercises the shared-memory channel library
used for communication between computing nodes of the Dryad distributed
execution engine, in two link configurations: with and without the standard
C library statically linked in (when linked, LiteRace instruments all the
stdlib functions Dryad calls, which adds a large population of cold
library-side code — and 14 additional rare races in our model).

Model: ``CHANNELS`` point-to-point channels, one producer and one consumer
thread each.  A channel is a lock + a semaphore event + head/tail/depth
counters + a per-item stream region.  Producers write an item slot, update
counters under the channel lock, and signal; consumers wait, update
counters, and read the slot.  A monitor thread periodically inspects
channel depths; two finalizer threads tear the channels down at the end.
Worker threads start staggered (the engine brings channels up one at a
time), so the first executions of the hot channel routines come from a
single thread — which is precisely the situation where a *global* sampler
has already backed off by the time later threads arrive.

Planted races (ground truth attached as ``program.planted_races``):

==========================  ========  ======================================
site                        keys      archetype
==========================  ========  ======================================
``chan_reset``              2 (rare)  warmed cold: main warms it during
                                      setup; the two finalizers make the
                                      shared call → thread-local samplers
                                      only
``item_checksum``           1 (rare)  hot-cold: hot per-item helper; the
                                      monitor and the lead producer each
                                      make one shared call
``items_transferred``       2 (freq)  warm RW in the per-1024-items stats
                                      bump (pre-warmed by main)
``bytes_last_item``         1 (freq)  warm W in the same stats bump
``consumer_lag_flush``      2 (freq)  mid-frequency: consumers flush the
                                      shared lag statistic six times per
                                      run — too few dynamic occurrences
                                      for random samplers, skipped
                                      entirely by UCP
==========================  ========  ======================================

The stdlib variant keeps only ``items_transferred`` shared on the hot path
and adds 14 rare keys in cold stdlib entry points (locale/tz/stdio/atexit/
rand/heap setup plus hot-cold races inside ``str_hash`` and the stdio
flush), reproducing Table 4's striking 17-rare/2-frequent split for
Dryad+stdlib.
"""

from __future__ import annotations

from ..tir.addr import Indexed, Param, Tls
from ..tir.builder import ProgramBuilder
from ..tir.program import Program
from .patterns import RacePlan, RacyHelper, racy_access, tls_churn
from .spec import PaperRaceCounts, WorkloadSpec, register

__all__ = ["build_dryad", "build_dryad_stdlib"]

CHANNELS = 3
_ITEMS_FULL = 24_000
#: Shared transfer statistics are bumped once per this many items
#: (roughly two dozen updates per thread per run).
_STATS_EVERY = 1024
#: Consumers flush the shared lag statistic this many times per run.
_FLUSH_CHUNKS = 6

# Channel block layout (offsets into each channel's global array).
_OFF_LOCK = 0
_OFF_EVENT = 8
_OFF_HEAD = 16
_OFF_TAIL = 24
_OFF_DEPTH = 32


def _build(seed: int, scale: float, with_stdlib: bool) -> Program:
    name = "dryad-stdlib" if with_stdlib else "dryad"
    b = ProgramBuilder(name)
    plan = RacePlan()
    # Item count factors exactly into the loop nests used below:
    #   producer: flush_chunks * per_flush * STATS_EVERY   (stats per chunk)
    #   consumer: flush_chunks * (per_flush * STATS_EVERY) (lag per flush)
    per_flush = max(1, round(_ITEMS_FULL * scale / (_FLUSH_CHUNKS * _STATS_EVERY)))
    items = _FLUSH_CHUNKS * per_flush * _STATS_EVERY
    stat_chunks = _FLUSH_CHUNKS * per_flush
    # Channel transfer latency per item: the plain build waits on the
    # (slow) shared-memory pipe; the stdlib build does more CPU-side
    # buffering per item instead (see the calibration notes in
    # runtime/cost.py and EXPERIMENTS.md).
    item_io = 3000 if with_stdlib else 8000
    #: Channel bring-up is staggered: successive workers start roughly
    #: this many cycles apart (~40 items of the first producer).
    stagger = item_io * 40

    # -- shared state ------------------------------------------------------
    chans = [b.global_array(f"chan{c}", 8, 8) for c in range(CHANNELS)]
    streams = [b.global_array(f"stream{c}", items, 8) for c in range(CHANNELS)]
    xfer = b.global_addr("items_transferred")
    if with_stdlib:
        # Per-channel (uncontended) stats: with the stdlib linked in, only
        # items_transferred remains shared hot state.
        lags = [b.global_addr(f"consumer_lag{c}") for c in range(CHANNELS)]
        sizes = [b.global_addr(f"bytes_last{c}") for c in range(CHANNELS)]
    else:
        lags = [b.global_addr("consumer_lag")] * CHANNELS
        sizes = [b.global_addr("bytes_last_item")] * CHANNELS

    # -- racy helpers --------------------------------------------------------
    # Warmed-cold: channel-stats reset, warmed by main, raced by finalizers.
    chan_reset = RacyHelper(b, plan, "chan_reset", payload_reads=2,
                            expect_rare=True)
    # Hot-cold: per-item checksum helper (write-only racy slot).
    checksum = RacyHelper(b, plan, "item_checksum", read=False,
                          payload_reads=3, expect_rare=True)
    # Mid-frequency: shared lag statistic flushed every few thousand items.
    lag_flush = RacyHelper(b, plan, "consumer_lag_flush", payload_reads=1,
                           expect_rare=False, registered=not with_stdlib)

    if with_stdlib:
        # Hot stdlib routines called per item (instrumented because the
        # library is statically linked).
        with b.function("mem_copy", params=2) as f:
            with f.loop(12):
                f.read(Indexed(Param(0), 8, 0))
                f.write(Indexed(Param(1), 8, 0))
        # Hot-cold: string hashing used per item by consumers; the monitor
        # and a finalizer also hash a shared key once.
        str_hash = RacyHelper(b, plan, "str_hash", payload_reads=3,
                              expect_rare=True)
        # Hot-cold: buffered-IO flush mark inside a hot helper.
        buf_flush = RacyHelper(b, plan, "stdio_buf_flush", read=False,
                               payload_reads=1, expect_rare=True)
        # Warmed-cold stdlib per-thread initialization entry points.
        locale_init = RacyHelper(b, plan, "locale_init", expect_rare=True)
        tz_init = RacyHelper(b, plan, "tz_init", expect_rare=True)
        io_buf_init = RacyHelper(b, plan, "io_buf_init", expect_rare=True)
        # Cold-cold teardown / monitor sites.
        atexit_reg = RacyHelper(b, plan, "atexit_register", expect_rare=True)
        rand_seed = RacyHelper(b, plan, "rand_seed_init", expect_rare=True)
        heap_trim = RacyHelper(b, plan, "heap_trim_hint", read=False,
                               expect_rare=True)
        # A family of cold one-shot stdlib stubs (drives function count and
        # the cold-code mass of the +stdlib configuration; Table 2).
        for index in range(40):
            with b.function(f"stdlib_stub_{index}") as f:
                f.read(Tls(64 + 8 * index))
                f.compute(1)
                f.write(Tls(64 + 8 * index))

    # -- channel operations --------------------------------------------------
    # p0 = channel base
    with b.function("chan_push", params=1) as f:
        f.lock(Param(0, _OFF_LOCK))
        f.read(Param(0, _OFF_TAIL))
        f.write(Param(0, _OFF_TAIL))
        f.read(Param(0, _OFF_DEPTH))
        f.write(Param(0, _OFF_DEPTH))
        f.unlock(Param(0, _OFF_LOCK))
        f.notify(Param(0, _OFF_EVENT))

    # Shared transfer statistics, updated once per ``_STATS_EVERY`` items
    # (a per-request counter would manifest tens of thousands of times and
    # saturate every sampler; real frequent races recur at a human scale).
    # p0 = size-stat addr.
    with b.function("bump_channel_stats", params=1) as f:
        plan.site("items_transferred", racy_access(f, xfer),
                  expect_rare=False)
        size_site = racy_access(f, Param(0), read=False)
        f.compute(1)
    if not with_stdlib:
        plan.site("bytes_last_item", size_site, expect_rare=False)

    # p0 = channel base
    with b.function("chan_pop", params=1) as f:
        f.wait(Param(0, _OFF_EVENT))
        f.lock(Param(0, _OFF_LOCK))
        f.read(Param(0, _OFF_HEAD))
        f.write(Param(0, _OFF_HEAD))
        f.read(Param(0, _OFF_DEPTH))
        f.write(Param(0, _OFF_DEPTH))
        f.unlock(Param(0, _OFF_LOCK))
        f.compute(2)

    # -- per-item helpers ---------------------------------------------------
    # Hot work lives in helpers so that sampling operates at a meaningful
    # granularity (a thread-main's inline loop would be covered by a single
    # dispatch decision — the §7 pathology).
    with b.function("produce_item", params=1) as f:  # p0 = stream slot
        tls_churn(f, slots=2)
        f.compute(4)
        f.write(Param(0))

    with b.function("consume_item", params=1) as f:  # p0 = stream slot
        f.read(Param(0))
        tls_churn(f, slots=2)
        f.compute(3)

    # -- worker threads --------------------------------------------------------
    # Producer params: p0 channel, p1 stream, p2 size-stat,
    # p3 locale-init target, p4 iobuf-init target, p5 start stagger.
    with b.function("producer", params=6) as f:
        f.io(Param(5))
        if with_stdlib:
            locale_init.call_with(f, Param(3))
            io_buf_init.call_with(f, Param(4))
        with f.loop(stat_chunks):
            with f.loop(_STATS_EVERY):
                f.io(item_io)
                f.call(
                    "produce_item",
                    Indexed(Indexed(Param(1), 8 * _STATS_EVERY, 1), 8, 0),
                )
                checksum.call_tls(f, 1024)
                if with_stdlib:
                    f.call("mem_copy", Tls(2048), Tls(2304))
                    buf_flush.call_tls(f, 1536)
                f.call("chan_push", Param(0))
            f.call("bump_channel_stats", Param(2))

    with b.function("producer_lead", params=6) as f:
        f.call("producer", *[Param(i) for i in range(6)])
        # Lead producer's one cold use of the (by now hot) checksum helper.
        checksum.call_shared(f)
        if with_stdlib:
            buf_flush.call_shared(f)

    # Consumer params: p0 channel, p1 stream, p2 lag-stat, p3 tz-init
    # target, p4 start stagger.
    with b.function("consumer", params=5) as f:
        f.io(Param(4))
        if with_stdlib:
            tz_init.call_with(f, Param(3))
        with f.loop(_FLUSH_CHUNKS):
            with f.loop(per_flush):
                with f.loop(_STATS_EVERY):
                    f.call("chan_pop", Param(0))
                    f.io(item_io)
                    f.call(
                        "consume_item",
                        Indexed(
                            Indexed(
                                Indexed(Param(1),
                                        8 * _STATS_EVERY * per_flush, 2),
                                8 * _STATS_EVERY, 1),
                            8, 0),
                    )
                    if with_stdlib:
                        str_hash.call_tls(f, 2048)
            lag_flush.call_with(f, Param(2))

    with b.function("monitor") as f:
        with f.loop(4):
            f.io(max(2000, items * item_io // 4))
            for chan in chans:
                f.lock(chan + _OFF_LOCK)
                f.read(chan + _OFF_DEPTH)
                f.unlock(chan + _OFF_LOCK)
            tls_churn(f, slots=1)
        checksum.call_shared(f)
        if with_stdlib:
            buf_flush.call_shared(f)
            str_hash.call_shared(f)
            rand_seed.call_shared(f)
            heap_trim.call_shared(f)

    # Finalizer params: p0 rand-seed target, p1 heap-trim target, p2
    # str-hash target (racing pairs in the stdlib build: rand pairs
    # finalizer 0 with the monitor, heap pairs finalizer 1 with the
    # monitor, str_hash pairs finalizer 1 with the monitor, atexit pairs
    # the two finalizers).
    with b.function("finalizer", params=3) as f:
        tls_churn(f, slots=2)
        chan_reset.call_shared(f)
        if with_stdlib:
            atexit_reg.call_shared(f)
            rand_seed.call_with(f, Param(0))
            heap_trim.call_with(f, Param(1))
            str_hash.call_with(f, Param(2))
        f.compute(4)

    # -- main ------------------------------------------------------------------
    n_workers = 2 * CHANNELS
    with b.function("main", slots=n_workers + 3) as f:
        # Setup: initialize channel blocks and warm the reset helper.
        for chan in chans:
            for off in (_OFF_HEAD, _OFF_TAIL, _OFF_DEPTH):
                f.write(chan + off)
        with f.loop(40):
            chan_reset.call_private(f, "main")
            f.compute(2)
        # The engine has been running long before this measured window:
        # pre-warm the hot statistics routines so samplers see them as the
        # hot functions they are (main-thread accesses are fork-ordered,
        # hence race-free).
        with f.loop(2000):
            f.call("bump_channel_stats", b.global_addr("bytes_warm"))
        if with_stdlib:
            for index in range(40):
                f.call(f"stdlib_stub_{index}")
            with f.loop(30):
                locale_init.call_private(f, "main")
                tz_init.call_private(f, "main")
                io_buf_init.call_private(f, "main")
        f.fork("monitor", tid_slot=n_workers)
        slot = 0
        for c in range(CHANNELS):
            producer_fn = "producer_lead" if c == 0 else "producer"
            # Designated racing pairs for the stdlib init helpers:
            #   locale_init: producers of channels 0 and 1
            #   io_buf_init: producers of channels 1 and 2
            #   tz_init:     consumers of channels 0 and 1
            p_args = (
                chans[c], streams[c], sizes[c],
                locale_init.shared if with_stdlib and c in (0, 1)
                else 0 if not with_stdlib
                else locale_init.private_addr(f"p{c}"),
                io_buf_init.shared if with_stdlib and c in (1, 2)
                else 0 if not with_stdlib
                else io_buf_init.private_addr(f"p{c}"),
                stagger * (2 * c),
            )
            c_args = (
                chans[c], streams[c], lags[c],
                tz_init.shared if with_stdlib and c in (0, 1)
                else 0 if not with_stdlib
                else tz_init.private_addr(f"c{c}"),
                stagger * (2 * c + 1),
            )
            f.fork(producer_fn, *p_args, tid_slot=slot)
            f.fork("consumer", *c_args, tid_slot=slot + 1)
            slot += 2
        for s in range(n_workers):
            f.join(s)
        if with_stdlib:
            fin0_args = (rand_seed.shared, heap_trim.private_addr("f0"),
                         str_hash.private_addr("f0"))
            fin1_args = (rand_seed.private_addr("f1"), heap_trim.shared,
                         str_hash.shared)
        else:
            fin0_args = (0, 0, 0)
            fin1_args = (0, 0, 0)
        f.fork("finalizer", *fin0_args, tid_slot=n_workers + 1)
        f.fork("finalizer", *fin1_args, tid_slot=n_workers + 2)
        f.join(n_workers + 1)
        f.join(n_workers + 2)
        f.join(n_workers)

    program = b.build(entry="main")
    return plan.attach(program)


def build_dryad(seed: int = 0, scale: float = 1.0) -> Program:
    """Dryad channel test without the statically linked C library."""
    return _build(seed, scale, with_stdlib=False)


def build_dryad_stdlib(seed: int = 0, scale: float = 1.0) -> Program:
    """Dryad channel test with the C library statically linked in."""
    return _build(seed, scale, with_stdlib=True)


register(WorkloadSpec(
    name="dryad",
    title="Dryad Channel",
    description="Shared-memory channel library of the Dryad execution engine",
    builder=build_dryad,
    in_race_eval=True,
    in_overhead_eval=True,
    paper_races=PaperRaceCounts(total=8, rare=3, frequent=5),
    paper_literace_slowdown=1.0,
    paper_full_slowdown=1.14,
))

register(WorkloadSpec(
    name="dryad-stdlib",
    title="Dryad Channel + stdlib",
    description="Dryad channel test with the standard C library statically "
                "linked (stdlib functions instrumented too)",
    builder=build_dryad_stdlib,
    in_race_eval=True,
    in_overhead_eval=True,
    paper_races=PaperRaceCounts(total=19, rare=17, frequent=2),
    paper_literace_slowdown=1.0,
    paper_full_slowdown=1.8,
))
