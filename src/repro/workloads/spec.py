"""Workload registry: the benchmark-input pairs of the evaluation (§5.1).

Each workload is a TIR program modelling one of the paper's benchmark-input
pairs.  A :class:`WorkloadSpec` carries the builder plus which evaluations
the pair participates in (Table 4's race study covers six pairs; Table 5's
overhead study adds ConcRT and the two microbenchmarks) and the paper's
reported race counts for side-by-side comparison.

Built programs carry ground truth: ``program.planted_races`` lists the
deliberately planted race sites with their PCs, which tests use to validate
the detector independently of the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..tir.program import Program

__all__ = [
    "PlantedRace",
    "PaperRaceCounts",
    "WorkloadSpec",
    "register",
    "get",
    "build",
    "names",
    "race_eval_names",
    "overhead_eval_names",
]


@dataclass(frozen=True)
class PlantedRace:
    """Ground truth for one deliberately planted racy site."""

    name: str
    #: Static-race keys (sorted PC pairs) this site can produce.
    keys: Tuple[Tuple[int, int], ...]
    #: Whether the site is designed to manifest rarely (cold path).
    expect_rare: bool


@dataclass(frozen=True)
class PaperRaceCounts:
    """Table 4's reported counts for a benchmark-input pair."""

    total: int
    rare: int
    frequent: int


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark-input pair."""

    name: str
    title: str
    description: str
    builder: Callable[[int, float], Program]
    in_race_eval: bool
    in_overhead_eval: bool
    paper_races: Optional[PaperRaceCounts] = None
    #: Paper's Table 5 numbers for reference (LiteRace, full-logging slowdown).
    paper_literace_slowdown: Optional[float] = None
    paper_full_slowdown: Optional[float] = None
    #: Free-form labels ("scenario", ...) used by tooling to group specs.
    tags: Tuple[str, ...] = ()

    def build(self, seed: int = 0, scale: float = 1.0) -> Program:
        """Construct the program for one run (seed varies data placement)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.builder(seed, scale)


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"workload {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> WorkloadSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def build(name: str, seed: int = 0, scale: float = 1.0) -> Program:
    """Build the named workload (convenience wrapper over the registry)."""
    return get(name).build(seed=seed, scale=scale)


def names() -> List[str]:
    return sorted(_REGISTRY)


def race_eval_names() -> List[str]:
    """The six pairs of Table 4 / Figures 4-5, in the paper's order."""
    ordered = [
        "dryad-stdlib", "dryad", "apache-1", "apache-2",
        "firefox-start", "firefox-render",
    ]
    return [n for n in ordered if n in _REGISTRY and _REGISTRY[n].in_race_eval]


def overhead_eval_names() -> List[str]:
    """The ten pairs of Table 5 / Figure 6, in the paper's order."""
    ordered = [
        "lkrhash", "lflist", "dryad-stdlib", "dryad",
        "concrt-messaging", "concrt-scheduling",
        "apache-1", "apache-2", "firefox-start", "firefox-render",
    ]
    return [n for n in ordered
            if n in _REGISTRY and _REGISTRY[n].in_overhead_eval]
