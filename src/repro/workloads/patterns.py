"""Reusable building blocks for workload models.

The benchmark programs share a small vocabulary of multithreaded patterns:
worker pools, properly locked shared updates, thread-local churn, and —
deliberately — racy sites of the two populations the paper studies:

* **cold races** (§3.4's cold-region hypothesis): accesses in rarely
  executed code — per-thread initialization, error paths, utility functions
  that are globally hot but cold for the racing thread;
* **hot races**: unprotected accesses in per-request/per-item fast paths,
  manifesting many times per run.

Race sites are registered in a :class:`RacePlan`; after the program is
built the plan resolves each site's instructions to PC pairs and attaches
the ground truth to the program as ``program.planted_races``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..tir.builder import FunctionBuilder, ProgramBuilder
from ..tir.ops import Instr, Write
from ..tir.program import Program
from .spec import PlantedRace

__all__ = ["RacePlan", "RacyHelper", "racy_access", "locked_update",
           "tls_churn", "fan_out", "fan_in"]


@dataclass
class _Site:
    name: str
    instrs: List[Instr]
    expect_rare: bool
    self_pairs: bool = True


class RacePlan:
    """Collects planted race sites while a workload is being built."""

    def __init__(self):
        self._sites: List[_Site] = []

    def site(self, name: str, instrs: Sequence[Instr],
             expect_rare: bool, self_pairs: bool = True) -> None:
        """Register one racy site (its accesses, all to one shared address).

        ``self_pairs=False`` marks sites whose instructions each execute in
        exactly one thread (e.g. a write in a background thread racing a
        write in a worker): an instruction cannot race itself then, so only
        cross-instruction keys are expected.
        """
        self._sites.append(_Site(name, list(instrs), expect_rare, self_pairs))

    @staticmethod
    def _keys_for(instrs: Sequence[Instr],
                  self_pairs: bool) -> Tuple[Tuple[int, int], ...]:
        """Static-race keys a site can produce: every access pair involving
        a write (two threads executing the same write instruction race that
        instruction against itself, hence (w, w) self-pairs when the site's
        code is shared by several threads)."""
        keys = set()
        for first in instrs:
            for second in instrs:
                if first is second and not self_pairs:
                    continue
                if not (isinstance(first, Write) or isinstance(second, Write)):
                    continue
                low, high = sorted((first.pc, second.pc))
                keys.add((low, high))
        return tuple(sorted(keys))

    def attach(self, program: Program) -> Program:
        """Resolve sites to PC pairs and attach ground truth to ``program``."""
        planted = tuple(
            PlantedRace(
                name=site.name,
                keys=self._keys_for(site.instrs, site.self_pairs),
                expect_rare=site.expect_rare,
            )
            for site in self._sites
        )
        program.planted_races = planted
        return program


class RacyHelper:
    """A helper function with an unprotected access pattern on its pointer
    parameter — the vehicle for the paper's race populations.

    The helper reads/writes ``Param(0)`` without synchronization; whether
    that *races* depends entirely on who calls it with what:

    * ``call_private`` / ``call_tls`` — single-owner data; never races.
      Used to make the helper *hot* (warmed by the main thread during
      setup, or called per-item from worker fast paths), which drives the
      per-function sampling rate down.
    * ``call_shared`` — the racy call: two or more threads passing the same
      shared address produce a real race at the helper's PCs.

    Archetypes built from these calls:

    ========================  =================================================
    cold-cold                 only a few ``call_shared`` per run, helper
                              otherwise unused → every sampler that samples
                              first executions finds it
    warmed cold (TL-only)     main warms the helper during setup, then late
                              threads ``call_shared`` once each → global
                              samplers have already backed off; thread-local
                              samplers still see each thread's first call
    hot-cold                  a thread with a hot (floor-rate) helper makes
                              the shared call → even TL-Ad usually misses
                              one side; sets the detection ceiling
    hot-frequent              all workers ``call_shared`` per item → caught
                              by volume
    late-frequent             private calls early, shared calls only in the
                              run's second half → thread-local samplers have
                              backed off; UCP/random/global-periodic catch it
    ========================  =================================================
    """

    def __init__(self, b: ProgramBuilder, plan: RacePlan, name: str, *,
                 read: bool = True, write: bool = True, payload_reads: int = 0,
                 compute: int = 1, expect_rare: bool = True,
                 registered: bool = True):
        from ..tir.addr import Param

        self.b = b
        self.name = name
        with b.function(name, params=1) as f:
            for index in range(payload_reads):
                f.read(Param(0, 8 + 8 * index))
            if compute:
                f.compute(compute)
            instrs = racy_access(f, Param(0), read=read, write=write)
        if registered:
            # ``registered=False`` builds the helper without declaring a
            # race site — used when a workload variant never exercises the
            # helper on shared state (the function still exists, as dead
            # code does in a real binary).
            plan.site(name, instrs, expect_rare=expect_rare)
        self.shared = b.global_addr(f"{name}__shared")

    def call_shared(self, f: FunctionBuilder) -> None:
        """The racy call: pass the shared address."""
        f.call(self.name, self.shared)

    def call_private(self, f: FunctionBuilder, tag) -> None:
        """A non-racing call on data owned by whoever uses ``tag``."""
        f.call(self.name, self.b.global_addr(f"{self.name}__priv_{tag}"))

    def call_with(self, f: FunctionBuilder, operand) -> None:
        """Call with an arbitrary operand (e.g. a parameter of the caller).

        Whether this races depends on what address the operand resolves to
        at run time; workloads use it to select racing pairs via fork args.
        """
        f.call(self.name, operand)

    def private_addr(self, tag) -> int:
        """A non-shared target address for ``tag`` (for fork arguments)."""
        return self.b.global_addr(f"{self.name}__priv_{tag}")

    def call_tls(self, f: FunctionBuilder, offset: int) -> None:
        """A non-racing call on the calling thread's private region."""
        from ..tir.addr import Tls

        f.call(self.name, Tls(offset))


def racy_access(f: FunctionBuilder, addr, read: bool = True,
                write: bool = True) -> List[Instr]:
    """Emit an unprotected access pattern on ``addr``; return the instrs.

    ``read and write`` yields a read-modify-write (2 static races when two
    threads execute it); ``write`` alone yields a blind write (1 static
    race); ``read`` alone is only racy against a write elsewhere.
    """
    instrs: List[Instr] = []
    if read:
        instrs.append(f.read(addr))
    if write:
        instrs.append(f.write(addr))
    if not instrs:
        raise ValueError("racy_access needs read and/or write")
    return instrs


def locked_update(f: FunctionBuilder, lock, addrs: Sequence,
                  compute: int = 2) -> None:
    """A properly synchronized read-modify-write of ``addrs`` under ``lock``."""
    with f.critical(lock):
        for addr in addrs:
            f.read(addr)
        f.compute(compute)
        for addr in addrs:
            f.write(addr)


def tls_churn(f: FunctionBuilder, slots: int = 4, repeat: int = 1) -> None:
    """Thread-private traffic (the workload's stack-like accesses)."""
    from ..tir.addr import Tls

    for _ in range(repeat):
        for slot in range(slots):
            f.read(Tls(slot * 8))
            f.write(Tls(slot * 8))


def fan_out(f: FunctionBuilder, func: str, args_per_worker: Sequence[Tuple],
            first_slot: int = 0) -> List[int]:
    """Fork one thread per args tuple; return the tid slots used."""
    slots = []
    for index, args in enumerate(args_per_worker):
        slot = first_slot + index
        f.fork(func, *args, tid_slot=slot)
        slots.append(slot)
    return slots


def fan_in(f: FunctionBuilder, slots: Sequence[int]) -> None:
    """Join the threads whose tids are stored in ``slots``."""
    for slot in slots:
        f.join(slot)
