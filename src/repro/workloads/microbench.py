"""Synchronization-intensive microbenchmarks (§5.4).

LKRHash and LFList are the paper's adverse-case stress tests: they execute
synchronization operations far more frequently than the real applications,
and since LiteRace must log *every* synchronization operation to stay free
of false positives, they bound its worst-case overhead (paper: 2.4x and
2.1x for LiteRace, 14.7x and 16.1x for full logging).

* **LKRHash** — a high-throughput hash table combining lock-free techniques
  (interlocked operations on bucket headers) with high-level locks (table
  segment locks).  Modelled as 8 threads hammering segmented buckets:
  every operation does an atomic probe, a segment-lock critical section,
  and a handful of memory accesses.
* **LFList** — a lock-free linked list: every operation traverses nodes
  (reads) and publishes with compare-and-exchange; no locks at all.

Neither is part of the race study; no races are planted.
"""

from __future__ import annotations

from ..tir.addr import Indexed, Param
from ..tir.builder import ProgramBuilder
from ..tir.program import Program
from .patterns import RacePlan, tls_churn
from .spec import WorkloadSpec, register

__all__ = ["build_lkrhash", "build_lflist"]

_HASH_OPS = 6000
_LIST_OPS = 5000
_THREADS = 8


def build_lkrhash(seed: int = 0, scale: float = 1.0) -> Program:
    """LKRHash: segmented hash table, locks plus interlocked operations."""
    b = ProgramBuilder("lkrhash")
    plan = RacePlan()
    ops = max(20, int(_HASH_OPS * scale))
    segments = 16

    # Per-segment: lock + bucket head + chain entries + count.
    segs = [b.global_array(f"segment{s}", 8, 8) for s in range(segments)]

    # p0 = segment base.  One hash-table operation.
    with b.function("hash_op", params=1) as f:
        f.atomic_rmw(Param(0, 8))       # lock-free probe of the bucket head
        f.lock(Param(0))                # segment lock for the update
        f.read(Param(0, 24))            # walk the bucket chain
        f.read(Param(0, 32))
        f.read(Param(0, 40))
        f.read(Param(0, 16))
        f.write(Param(0, 16))
        f.unlock(Param(0))
        tls_churn(f, slots=1)
        f.compute(4)

    # p0 = worker index (selects the segment stride), p1 = ops
    with b.function("hash_worker", params=2) as f:
        for s in range(segments):
            with f.loop(Param(1)):
                f.call("hash_op", segs[s])

    with b.function("main", slots=_THREADS) as f:
        for s in range(segments):
            f.write(segs[s] + 16)
        for w in range(_THREADS):
            f.fork("hash_worker", w, max(1, ops // segments), tid_slot=w)
        for w in range(_THREADS):
            f.join(w)

    program = b.build(entry="main")
    return plan.attach(program)


def build_lflist(seed: int = 0, scale: float = 1.0) -> Program:
    """LFList: a lock-free linked list (CAS-published updates)."""
    b = ProgramBuilder("lflist")
    plan = RacePlan()
    ops = max(20, int(_LIST_OPS * scale))
    nodes = 48

    node_array = b.global_array("nodes", nodes, 16)
    head = b.global_addr("list_head")

    # One list operation: traverse a prefix of the list, then CAS-publish.
    with b.function("list_op") as f:
        f.atomic_rmw(head)                     # load head with a CAS probe
        with f.loop(8):
            f.read(Indexed(node_array, 16, 0))  # traverse next pointers
        f.compute(35)                           # key comparisons / hashing
        f.atomic_rmw(node_array + 8)           # CAS the insertion point
        tls_churn(f, slots=1)

    with b.function("list_worker", params=1) as f:
        with f.loop(Param(0)):
            f.call("list_op")

    with b.function("main", slots=_THREADS) as f:
        with f.loop(nodes):
            f.write(Indexed(node_array, 16, 0))
        for w in range(_THREADS):
            f.fork("list_worker", ops, tid_slot=w)
        for w in range(_THREADS):
            f.join(w)

    program = b.build(entry="main")
    return plan.attach(program)


register(WorkloadSpec(
    name="lkrhash",
    title="LKRHash",
    description="Hash table combining lock-free techniques with high-level "
                "synchronization (sync-intensive microbenchmark)",
    builder=build_lkrhash,
    in_race_eval=False,
    in_overhead_eval=True,
    paper_literace_slowdown=2.4,
    paper_full_slowdown=14.7,
))

register(WorkloadSpec(
    name="lflist",
    title="LFList",
    description="Lock-free linked list (CAS-heavy microbenchmark)",
    builder=build_lflist,
    in_race_eval=False,
    in_overhead_eval=True,
    paper_literace_slowdown=2.1,
    paper_full_slowdown=16.1,
))
