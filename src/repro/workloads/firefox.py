"""Firefox web-browser workloads (§5.1).

Two scenarios, as in the paper:

* **firefox-start** — browser start-up: profile load, a large population of
  one-shot component-registration functions (Firefox has by far the most
  functions in Table 2), then an event-loop warm-up across helper threads
  that come up staggered, as browser services do.
* **firefox-render** — rendering a page of 2500 positioned DIVs: layout
  workers sweep disjoint slices of the DIV array through a hot per-DIV
  style/layout/paint helper over multiple passes, alongside image-decoder,
  font and compositor threads.

Planted races (Table 4: start 12 = 5 rare + 7 frequent; render 16 =
10 rare + 6 frequent):

``firefox-start``
  rare: ``pref_service_init`` (RW, warmed cold), ``startup_cache_flag``
  (RW, cold-cold), ``telemetry_mark`` (W, hot-cold);
  frequent: ``event_count`` (RW) and ``paint_pending`` (W) in the warm
  per-200-iterations stat bump, ``layout_queue_flush`` (RW,
  mid-frequency), ``js_gc_hint`` (RW, late-frequent).

``firefox-render``
  rare: ``font_cache_init`` (RW, warmed), ``image_decoder_init`` (RW,
  warmed), ``glyph_cache_resize`` (RW, cold-cold), ``texture_upload_mark``
  (RW, hot-cold), ``dirty_region_merge`` (W, cold-cold),
  ``frame_budget_hint`` (W, warmed);
  frequent: ``frames_painted`` (RW), ``invalidate_flag`` (W) and
  ``vsync_mark`` (W, late-frequent) in the warm per-pass stat bump,
  ``style_cache_flush`` (RW, mid-frequency).
"""

from __future__ import annotations

from ..tir.addr import Indexed, Param, Tls
from ..tir.builder import ProgramBuilder
from ..tir.program import Program
from .patterns import RacePlan, RacyHelper, racy_access, tls_churn
from .spec import PaperRaceCounts, WorkloadSpec, register

__all__ = ["build_firefox_start", "build_firefox_render"]


# ----------------------------------------------------------------------
# firefox-start
# ----------------------------------------------------------------------
_START_ITERS = 16_000
_REGISTRATION_STUBS = 80
_START_HELPERS = 4


def build_firefox_start(seed: int = 0, scale: float = 1.0) -> Program:
    """Browser start-up: component registration plus event-loop warm-up."""
    b = ProgramBuilder("firefox-start")
    plan = RacePlan()
    iters = max(80, int(_START_ITERS * scale))
    # Each helper runs two phases, each split into two flush chunks, each
    # split into 200-iteration stat sub-chunks.
    chunk = max(200, iters // (_START_HELPERS * 2 * 2) // 200 * 200)
    stagger = chunk * 120

    event_count = b.global_addr("event_count")
    js_gc_hint = b.global_addr("js_gc_hint")
    paint_pending = b.global_addr("paint_pending")
    pref_table = b.global_array("pref_table", 48, 8)
    status_table = b.global_array("status_table", 32, 8)

    pref_init = RacyHelper(b, plan, "pref_service_init", payload_reads=2,
                           expect_rare=True)
    cache_flag = RacyHelper(b, plan, "startup_cache_flag", expect_rare=True)
    telemetry = RacyHelper(b, plan, "telemetry_mark", read=False,
                           expect_rare=True)
    layout_flush = RacyHelper(b, plan, "layout_queue_flush", payload_reads=1,
                              expect_rare=False)

    # One-shot component registration stubs: the cold-function mass that
    # makes Firefox the largest binary of Table 2.
    for index in range(_REGISTRATION_STUBS):
        with b.function(f"register_component_{index}") as f:
            f.read(pref_table + 8 * (index % 48))
            f.compute(2)
            f.write(Tls(96 + 8 * (index % 32)))

    # Hot event-loop helpers.  The status table is written once by the
    # main thread during startup and only read afterwards.
    with b.function("dispatch_event") as f:
        tls_churn(f, slots=1)
        f.compute(2)
        with f.loop(8):
            f.read(Indexed(status_table, 8, 0))
        f.write(Tls(24))
        telemetry.call_tls(f, 512)

    with b.function("style_flush") as f:
        f.read(pref_table)
        f.compute(2)
        with f.loop(8):
            f.read(Indexed(status_table, 8, 0))
        f.write(Tls(32))

    with b.function("js_tick", params=1) as f:  # p0 = gc-hint target
        tls_churn(f, slots=1)
        f.compute(3)
        with f.loop(4):
            f.read(Indexed(status_table, 8, 0))
        plan.site("js_gc_hint", racy_access(f, Param(0)), expect_rare=False)

    # Shared event statistics, bumped once per sub-chunk of the event loop.
    with b.function("bump_event_stats") as f:
        plan.site("event_count", racy_access(f, event_count),
                  expect_rare=False)
        plan.site("paint_pending",
                  racy_access(f, paint_pending, read=False),
                  expect_rare=False)
        f.compute(1)

    # Helper threads.  Params: p0 pref-init target, p1 gc-hint target
    # (early phase), p2 gc-hint target (late phase), p3 start stagger.
    def helper_phase(f, gc_target):
        with f.loop(2):
            with f.loop(chunk // 200):
                with f.loop(200):
                    f.call("dispatch_event")
                    f.call("style_flush")
                    f.call("js_tick", gc_target)
                f.call("bump_event_stats")
            layout_flush.call_shared(f)

    with b.function("helper", params=4) as f:
        f.io(Param(3))
        pref_init.call_with(f, Param(0))
        helper_phase(f, Param(1))
        helper_phase(f, Param(2))

    with b.function("helper_lead", params=4) as f:
        f.call("helper", Param(0), Param(1), Param(2), Param(3))
        # After two hot phases: the hot-cold shared telemetry write.
        telemetry.call_shared(f)

    with b.function("io_thread") as f:
        with f.loop(6):
            f.io(max(500, iters * 45))
            tls_churn(f, slots=2)
        cache_flag.call_shared(f)

    with b.function("timer_thread") as f:
        with f.loop(8):
            f.io(max(400, iters * 22))
            f.compute(2)
        cache_flag.call_shared(f)
        telemetry.call_shared(f)

    with b.function("main", slots=_START_HELPERS + 2) as f:
        # Profile load + XPCOM startup: warms the init and flush helpers.
        for index in range(48):
            f.write(pref_table + 8 * index)
        for index in range(32):
            f.write(status_table + 8 * index)
        with f.loop(30):
            pref_init.call_private(f, "xpcom")
            layout_flush.call_private(f, "xpcom")
            f.compute(3)
        # Session restore replays a burst of events before the helpers
        # start: the stat routines are already hot (main-thread accesses
        # are fork-ordered, hence race-free).
        with f.loop(2000):
            f.call("bump_event_stats")
        for index in range(_REGISTRATION_STUBS):
            f.call(f"register_component_{index}")
        f.fork("io_thread", tid_slot=_START_HELPERS)
        f.fork("timer_thread", tid_slot=_START_HELPERS + 1)
        for h in range(_START_HELPERS):
            fn = "helper_lead" if h == 0 else "helper"
            args = (
                pref_init.shared if h in (2, 3)
                else pref_init.private_addr(h),
                b.global_addr(f"gc_hint_{h}"),   # early phase: private
                js_gc_hint,                      # late phase: shared
                stagger * h,
            )
            f.fork(fn, *args, tid_slot=h)
        for h in range(_START_HELPERS):
            f.join(h)
        f.join(_START_HELPERS)
        f.join(_START_HELPERS + 1)

    program = b.build(entry="main")
    return plan.attach(program)


# ----------------------------------------------------------------------
# firefox-render
# ----------------------------------------------------------------------
_DIVS = 2500
_PASSES = 10
_RENDER_WORKERS = 4


def build_firefox_render(seed: int = 0, scale: float = 1.0) -> Program:
    """Rendering an HTML page of 2500 positioned DIVs."""
    b = ProgramBuilder("firefox-render")
    plan = RacePlan()
    passes = max(2, int(_PASSES * scale) // 2 * 2)
    slice_len = _DIVS // _RENDER_WORKERS
    stagger = slice_len * 80

    divs = b.global_array("div_array", _DIVS, 16)
    frames_painted = b.global_addr("frames_painted")
    invalidate_flag = b.global_addr("invalidate_flag")
    vsync_mark = b.global_addr("vsync_mark")

    font_init = RacyHelper(b, plan, "font_cache_init", payload_reads=2,
                           expect_rare=True)
    img_init = RacyHelper(b, plan, "image_decoder_init", expect_rare=True)
    glyph_resize = RacyHelper(b, plan, "glyph_cache_resize", expect_rare=True)
    texture_mark = RacyHelper(b, plan, "texture_upload_mark",
                              expect_rare=True)
    frame_budget = RacyHelper(b, plan, "frame_budget_hint", read=False,
                              expect_rare=True)
    style_cache = RacyHelper(b, plan, "style_cache_flush", payload_reads=1,
                             expect_rare=False)

    # Hot per-DIV helper: style + layout + paint for one DIV.  A single
    # function keeps the dispatch-check cost per DIV at one check (plus
    # the texture helper), which is what gives the paper's modest 1.3x
    # LiteRace overhead next to its enormous 33.5x full-logging overhead:
    # render is almost all loggable memory traffic.
    # Read-only style-rule table (written by main before the workers fork).
    style_rules = b.global_array("style_rules", 64, 8)

    # p0 = div record address.
    with b.function("render_div", params=1) as f:
        # style: match against the rule table, then update the div record.
        f.read(Param(0))
        with f.loop(8):
            f.read(Indexed(style_rules, 8, 0))
        f.compute(14)
        f.write(Param(0, 8))
        # layout
        f.read(Param(0, 8))
        f.compute(16)
        f.write(Param(0))
        tls_churn(f, slots=3)
        # paint
        f.read(Param(0))
        f.read(Param(0, 8))
        f.compute(15)
        texture_mark.call_tls(f, 640)

    # Shared frame statistics, bumped once per sub-slice of each sweep.
    # p0 = vsync-mark target.
    with b.function("bump_paint_stats", params=1) as f:
        plan.site("frames_painted", racy_access(f, frames_painted),
                  expect_rare=False)
        plan.site("invalidate_flag",
                  racy_access(f, invalidate_flag, read=False),
                  expect_rare=False)
        vsync_site = racy_access(f, Param(0), read=False)
        f.compute(1)
    plan.site("vsync_mark", vsync_site, expect_rare=False)

    # Layout workers sweep a disjoint slice of the DIV array; the shared
    # style cache is flushed once per two passes (mid-frequency).
    # Params: p0 slice base, p1 font target, p2 vsync private (early
    # passes), p3 vsync shared (late passes), p4 start stagger.
    def sweep_phase(f, vsync_target):
        with f.loop(passes // 2):
            with f.loop(2):
                with f.loop(slice_len):
                    f.call("render_div", Indexed(Param(0), 16, 0))
                f.call("bump_paint_stats", vsync_target)
            style_cache.call_shared(f)

    with b.function("render_worker", params=5) as f:
        f.io(Param(4))
        font_init.call_with(f, Param(1))
        sweep_phase(f, Param(2))
        sweep_phase(f, Param(3))

    with b.function("render_worker_lead", params=5) as f:
        f.call("render_worker", *[Param(i) for i in range(5)])
        texture_mark.call_shared(f)

    with b.function("image_decoder", params=1) as f:  # p0 img-init target
        img_init.call_with(f, Param(0))
        with f.loop(12):
            f.io(max(300, passes * slice_len * 12))
            tls_churn(f, slots=2)
            f.compute(8)
        glyph_resize.call_shared(f)
        frame_budget.call_shared(f)

    with b.function("font_loader", params=2) as f:  # p0 font, p1 img target
        font_init.call_with(f, Param(0))
        img_init.call_with(f, Param(1))
        with f.loop(6):
            f.io(max(300, passes * slice_len * 20))
            f.compute(4)
        glyph_resize.call_shared(f)
        dirty_a = f.write(b.global_addr("dirty_region"))

    with b.function("compositor") as f:
        with f.loop(10):
            f.io(max(300, passes * slice_len * 14))
            f.compute(3)
        texture_mark.call_shared(f)
        frame_budget.call_shared(f)
        dirty_b = f.write(b.global_addr("dirty_region"))
    plan.site("dirty_region_merge", [dirty_a, dirty_b], expect_rare=True,
              self_pairs=False)

    with b.function("main", slots=_RENDER_WORKERS + 3) as f:
        # Parse + frame-tree construction: warms the init/flush helpers.
        with f.loop(64):
            f.write(Indexed(style_rules, 8, 0))
        with f.loop(30):
            font_init.call_private(f, "parse")
            img_init.call_private(f, "parse")
            frame_budget.call_private(f, "parse")
            style_cache.call_private(f, "parse")
            f.compute(3)
        # The first (unmeasured) paint of the page happens during parse:
        # the stat routines are already hot (fork-ordered, race-free).
        with f.loop(2000):
            f.call("bump_paint_stats", b.global_addr("vsync_warm"))
        with f.loop(64):
            f.write(Indexed(divs, 16, 0))
        # Racing pairs: image_decoder_init — decoder + font loader;
        # font_cache_init — font loader + render worker 1; the other
        # shared calls (glyph/texture/budget/dirty) pair the long-lived
        # background threads, which share no locks and stay concurrent.
        f.fork("image_decoder", img_init.shared,
               tid_slot=_RENDER_WORKERS)
        f.fork("font_loader", font_init.shared, img_init.shared,
               tid_slot=_RENDER_WORKERS + 1)
        f.fork("compositor", tid_slot=_RENDER_WORKERS + 2)
        for w in range(_RENDER_WORKERS):
            fn = "render_worker_lead" if w == 0 else "render_worker"
            args = (
                divs + 16 * slice_len * w,
                font_init.shared if w == 1 else font_init.private_addr(w),
                b.global_addr(f"vsync_{w}"),
                vsync_mark,
                stagger * w,
            )
            f.fork(fn, *args, tid_slot=w)
        for w in range(_RENDER_WORKERS):
            f.join(w)
        f.join(_RENDER_WORKERS)
        f.join(_RENDER_WORKERS + 1)
        f.join(_RENDER_WORKERS + 2)

    program = b.build(entry="main")
    return plan.attach(program)


register(WorkloadSpec(
    name="firefox-start",
    title="Firefox Start",
    description="Firefox browser start-up (profile load, component "
                "registration, event-loop warm-up)",
    builder=build_firefox_start,
    in_race_eval=True,
    in_overhead_eval=True,
    paper_races=PaperRaceCounts(total=12, rare=5, frequent=7),
    paper_literace_slowdown=1.44,
    paper_full_slowdown=8.89,
))

register(WorkloadSpec(
    name="firefox-render",
    title="Firefox Render",
    description="Firefox rendering an HTML page with 2500 positioned DIVs",
    builder=build_firefox_render,
    in_race_eval=True,
    in_overhead_eval=True,
    paper_races=PaperRaceCounts(total=16, rare=10, frequent=6),
    paper_literace_slowdown=1.3,
    paper_full_slowdown=33.5,
))
