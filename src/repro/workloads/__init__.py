"""Benchmark workload models (§5.1) and the workload registry.

Importing this package registers every benchmark-input pair; use
:func:`build` to construct one::

    from repro import workloads
    program = workloads.build("apache-1", seed=1)
"""

from .spec import (
    PaperRaceCounts,
    PlantedRace,
    WorkloadSpec,
    build,
    get,
    names,
    overhead_eval_names,
    race_eval_names,
    register,
)

# Importing the modules below registers their workloads.
from . import (  # noqa: E402,F401
    apache,
    concrt,
    dryad,
    firefox,
    microbench,
    parsec_like,
    synthetic,
)
from .patterns import RacePlan, RacyHelper, racy_access
from .synthetic import random_program, two_thread_racer

# The declarative scenario catalog registers through the same registry
# (tagged "scenario"; see docs/scenarios.md).
from ..scenarios.catalog import register_catalog as _register_scenarios

_register_scenarios()

__all__ = [
    "PaperRaceCounts",
    "PlantedRace",
    "WorkloadSpec",
    "build",
    "get",
    "names",
    "overhead_eval_names",
    "race_eval_names",
    "register",
]
