"""Randomized synthetic programs for tests and property-based invariants.

These generators produce small, *valid-by-construction* TIR programs with a
controllable amount of sharing, locking and racing.  They are not paper
benchmarks; they exist so that the test suite can exercise the whole
pipeline (executor → log → merge → detector) across thousands of random
program shapes, checking invariants like:

* a sampled log never yields a race the full log's oracle disagrees with
  (no false positives, §3.2);
* the same seed always reproduces the same execution and report;
* the timestamp merge reconstructs a happens-before-equivalent order.
"""

from __future__ import annotations

import random
from typing import Optional

from ..tir.addr import HeapSlot, Indexed, Param, Tls
from ..tir.builder import ProgramBuilder
from ..tir.program import Program
from .patterns import RacePlan
from .spec import WorkloadSpec, register

__all__ = ["random_program", "two_thread_racer", "cas_lock_program",
           "heap_churn_program", "build_synthetic_small"]


def random_program(seed: int = 0, *, threads: int = 3, helpers: int = 4,
                   calls_per_thread: int = 30, shared_vars: int = 4,
                   locks: int = 2, lock_prob: float = 0.5,
                   alloc_prob: float = 0.2) -> Program:
    """A random but well-formed multithreaded program.

    Each helper function performs a few accesses to a randomly chosen
    shared variable, protected by a randomly chosen lock with probability
    ``lock_prob`` (unprotected accesses may genuinely race — that is the
    point).  Worker threads call a random sequence of helpers; the main
    thread forks and joins all workers.
    """
    rng = random.Random(seed)
    b = ProgramBuilder(f"synthetic-{seed}")
    shared = [b.global_addr(f"var{v}") for v in range(shared_vars)]
    lock_addrs = [b.global_addr(f"lock{l}") for l in range(locks)]

    for h in range(helpers):
        var = rng.choice(shared)
        lock: Optional[int] = (rng.choice(lock_addrs)
                               if rng.random() < lock_prob else None)
        with b.function(f"helper{h}", slots=1) as f:
            if lock is not None:
                f.lock(lock)
            f.read(var)
            if rng.random() < 0.8:
                f.write(var)
            f.compute(rng.randrange(1, 4))
            if lock is not None:
                f.unlock(lock)
            if rng.random() < alloc_prob:
                f.alloc(rng.choice((16, 64, 256)), 0)
                f.write(Tls(8))
                f.free(0)
            f.read(Tls(0))

    # Callees cannot vary per iteration, so each worker gets an unrolled
    # random call sequence.
    for t in range(threads):
        with b.function(f"worker{t}") as f:
            for _ in range(calls_per_thread):
                f.call(f"helper{rng.randrange(helpers)}")
                if rng.random() < 0.1:
                    f.compute(rng.randrange(1, 5))

    with b.function("main", slots=threads) as f:
        for t in range(threads):
            f.fork(f"worker{t}", tid_slot=t)
        for t in range(threads):
            f.join(t)

    return b.build(entry="main")


def two_thread_racer(seed: int = 0, *, synchronized: bool = False) -> Program:
    """The minimal two-thread program: one shared variable, one lock.

    With ``synchronized=True`` the accesses are lock-protected (no race);
    otherwise the two writes race — the exact pair of examples in the
    paper's Figure 1.
    """
    b = ProgramBuilder("figure1" + ("-left" if synchronized else "-right"))
    plan = RacePlan()
    x = b.global_addr("X")
    lock = b.global_addr("L")

    with b.function("writer") as f:
        if synchronized:
            f.lock(lock)
        instr = f.write(x)
        if synchronized:
            f.unlock(lock)
    if not synchronized:
        plan.site("figure1_race", [instr], expect_rare=True)

    with b.function("main", slots=2) as f:
        f.fork("writer", tid_slot=0)
        f.fork("writer", tid_slot=1)
        f.join(0)
        f.join(1)

    return plan.attach(b.build(entry="main"))


def cas_lock_program(seed: int = 0, *, threads: int = 4,
                     iterations: int = 200) -> Program:
    """Threads protecting a shared counter with a *user-level CAS lock*.

    The program is correctly synchronized (the runtime honours the mutual
    exclusion), but the profiler only sees raw atomic operations — §4.2's
    hard case.  With atomic timestamping the offline analysis reports zero
    races; with torn (non-atomic) timestamps the reconstructed order breaks
    and false races appear.  Used by the atomic-timestamps ablation and the
    no-false-positives tests.
    """
    b = ProgramBuilder("cas-lock")
    counter = b.global_addr("counter")
    cas_lock = b.global_addr("user_lock")

    with b.function("bump", params=1) as f:
        f.lock(cas_lock, via_cas=True)
        f.read(counter)
        f.compute(2)
        f.write(counter)
        f.unlock(cas_lock, via_cas=True)
        f.read(Tls(0))

    with b.function("worker", params=1) as f:
        with f.loop(Param(0)):
            f.call("bump", 0)

    with b.function("main", slots=threads) as f:
        f.write(counter)
        for t in range(threads):
            f.fork("worker", iterations, tid_slot=t)
        for t in range(threads):
            f.join(t)

    return b.build(entry="main")


def heap_churn_program(seed: int = 0, *, threads: int = 4,
                       iterations: int = 120,
                       block_size: int = 64) -> Program:
    """Threads repeatedly allocating, writing, and freeing heap blocks.

    The allocator recycles freed blocks LIFO, so a block written by one
    thread is frequently handed to another; only the §4.3 rule (allocation
    routines act as synchronization on the containing page) orders the two
    incarnations.  Used by the alloc-as-sync ablation: with the rule on,
    zero races; with it off, a storm of false races on recycled addresses.
    """
    b = ProgramBuilder("heap-churn")

    with b.function("churn_once", slots=1) as f:
        f.alloc(block_size, 0)
        with f.loop(4):
            f.write(Indexed(HeapSlot(0), 8, 0))
        f.compute(2)
        with f.loop(4):
            f.read(Indexed(HeapSlot(0), 8, 0))
        f.free(0)

    with b.function("churner", params=1) as f:
        with f.loop(Param(0)):
            f.call("churn_once")

    with b.function("main", slots=threads) as f:
        for t in range(threads):
            f.fork("churner", iterations, tid_slot=t)
        for t in range(threads):
            f.join(t)

    return b.build(entry="main")


def build_synthetic_small(seed: int = 0, scale: float = 1.0) -> Program:
    """Registry entry point: a modest random program for quick demos."""
    return random_program(seed, calls_per_thread=max(5, int(30 * scale)))


register(WorkloadSpec(
    name="synthetic",
    title="Synthetic",
    description="Randomized small multithreaded program (testing/demo)",
    builder=build_synthetic_small,
    in_race_eval=False,
    in_overhead_eval=False,
))
