"""ConcRT concurrency-runtime workloads (§5.1).

ConcRT is the .NET parallel-extensions concurrency runtime providing
lightweight tasks and synchronization primitives.  Two test inputs from its
concurrency suite are modelled:

* **concrt-messaging** — agent pairs exchanging messages through event
  objects.  Threads spend most of their time blocked or in message latency
  (I/O in our cost model), so instrumentation overhead is largely masked
  (paper: 1.03x LiteRace / 1.08x full logging).
* **concrt-scheduling** — the *Explicit Scheduling* test: a work-stealing
  task pool where workers continuously lock queues, pop tasks, and touch
  reference counts with atomic operations.  Synchronization density is
  high and compute per task low, so logging every sync op is expensive
  (paper: 2.4x LiteRace / 9.1x full logging).

Neither input participates in the race study (Table 4); both appear in the
effective-sampling-rate averages (Table 3) and the overhead study
(Table 5 / Figure 6).  No races are planted — the runtime's own
synchronization is correct, which the tests verify (full logging reports
zero races).
"""

from __future__ import annotations

from ..tir.addr import Param
from ..tir.builder import ProgramBuilder
from ..tir.program import Program
from .patterns import RacePlan, tls_churn
from .spec import WorkloadSpec, register

__all__ = ["build_concrt_messaging", "build_concrt_scheduling"]

_MESSAGES = 1500
_TASKS = 5000


def build_concrt_messaging(seed: int = 0, scale: float = 1.0) -> Program:
    """Agent pairs ping-ponging messages through events."""
    b = ProgramBuilder("concrt-messaging")
    plan = RacePlan()
    messages = max(10, int(_MESSAGES * scale))
    pairs = 4

    # Per-pair mailboxes: a slot plus two events (ping and pong).
    boxes = [b.global_array(f"mailbox{p}", 4, 8) for p in range(pairs)]

    with b.function("compose_message", params=1) as f:  # p0 = slot
        tls_churn(f, slots=2)
        f.compute(6)
        f.write(Param(0))

    with b.function("consume_message", params=1) as f:  # p0 = slot
        f.read(Param(0))
        tls_churn(f, slots=1)
        f.compute(4)

    # p0 = mailbox base, p1 = messages
    with b.function("sender", params=2) as f:
        with f.loop(Param(1)):
            f.call("compose_message", Param(0))
            f.notify(Param(0, 8))     # ping
            f.io(5500)                # message latency
            f.wait(Param(0, 16))      # pong

    with b.function("receiver", params=2) as f:
        with f.loop(Param(1)):
            f.wait(Param(0, 8))       # ping
            f.call("consume_message", Param(0))
            f.io(5500)
            f.notify(Param(0, 16))    # pong

    with b.function("main", slots=2 * pairs) as f:
        for p in range(pairs):
            f.fork("sender", boxes[p], messages, tid_slot=2 * p)
            f.fork("receiver", boxes[p], messages, tid_slot=2 * p + 1)
        for s in range(2 * pairs):
            f.join(s)

    program = b.build(entry="main")
    return plan.attach(program)


def build_concrt_scheduling(seed: int = 0, scale: float = 1.0) -> Program:
    """The Explicit Scheduling test: a lock-and-atomic-heavy task pool."""
    b = ProgramBuilder("concrt-scheduling")
    plan = RacePlan()
    tasks = max(20, int(_TASKS * scale))
    workers = 8

    # Per-worker deques (lock + head/tail), plus a global ready counter
    # maintained with atomic ops — the explicit-scheduling hot path.
    deques = [b.global_array(f"deque{w}", 8, 8) for w in range(workers)]
    ready_count = b.global_addr("ready_count")

    with b.function("pop_task", params=1) as f:  # p0 = deque base
        f.lock(Param(0))
        f.read(Param(0, 8))
        f.write(Param(0, 8))
        f.unlock(Param(0))
        f.atomic_rmw(ready_count)

    with b.function("run_task", params=1) as f:  # p0 = deque base
        f.read(Param(0, 16))
        f.compute(30)
        tls_churn(f, slots=1)
        f.atomic_rmw(Param(0, 24))  # task refcount

    # p0 = own deque, p1 = victim deque, p2 = tasks
    with b.function("sched_worker", params=3) as f:
        with f.loop(Param(2)):
            f.call("pop_task", Param(0))
            f.call("run_task", Param(0))
        # Steal phase: hit the victim's deque as well.
        with f.loop(Param(2)):
            f.call("pop_task", Param(1))
            f.call("run_task", Param(1))

    with b.function("main", slots=workers) as f:
        f.write(ready_count)
        for w in range(workers):
            f.fork("sched_worker", deques[w], deques[(w + 1) % workers],
                   tasks // 2, tid_slot=w)
        for w in range(workers):
            f.join(w)

    program = b.build(entry="main")
    return plan.attach(program)


register(WorkloadSpec(
    name="concrt-messaging",
    title="ConcRT Messaging",
    description="ConcRT concurrency-suite Messaging test: agent pairs "
                "exchanging messages through events",
    builder=build_concrt_messaging,
    in_race_eval=False,
    in_overhead_eval=True,
    paper_literace_slowdown=1.03,
    paper_full_slowdown=1.08,
))

register(WorkloadSpec(
    name="concrt-scheduling",
    title="ConcRT Explicit Scheduling",
    description="ConcRT concurrency-suite Explicit Scheduling test: "
                "work-stealing task pool, lock- and atomic-heavy",
    builder=build_concrt_scheduling,
    in_race_eval=False,
    in_overhead_eval=True,
    paper_literace_slowdown=2.4,
    paper_full_slowdown=9.1,
))
