"""A PARSEC-style scientific workload (§7, future work).

The paper observes that function-granularity sampling suits server and GUI
applications but not compute-bound scientific programs, whose threads spend
their lives inside a few high-trip-count loops: one dispatch decision then
covers millions of iterations, so the effective sampling rate degenerates
to ~100% (the whole run is one "first call").  §7 proposes loop-granularity
sampling as the fix.

This workload is deliberately built that way: each worker runs one long
option-pricing-style loop *inline* in its thread function.  The ablation
experiment (``repro.experiments.ablations``) applies
:func:`repro.core.instrument.split_loops` and shows the effective sampling
rate dropping from ~100% to the adaptive floor while the planted cold race
is still found.

One rare race is planted: two workers write the shared ``residual_norm``
accumulator once at the end of their sweep (cold-cold).
"""

from __future__ import annotations

from ..tir.addr import Indexed, Param
from ..tir.builder import ProgramBuilder
from ..tir.program import Program
from .patterns import RacePlan, racy_access
from .spec import WorkloadSpec, register

__all__ = ["build_parsec_like", "ITERATIONS"]

ITERATIONS = 40_000
_WORKERS = 4


def build_parsec_like(seed: int = 0, scale: float = 1.0) -> Program:
    """Compute-bound workload with hot inline loops (loop-split candidate)."""
    b = ProgramBuilder("parsec-like")
    plan = RacePlan()
    # Keep the trip count a multiple of the default split chunk (100).
    iterations = max(200, int(ITERATIONS * scale) // 100 * 100)

    # Sized to the sweep so the strided reads stay inside the array.
    inputs = b.global_array("option_inputs", iterations, 8)
    outputs = [b.global_array(f"prices_{w}", iterations, 8)
               for w in range(_WORKERS)]
    residual = b.global_addr("residual_norm")

    # p0 = output slice base, p1 = residual target.  The trip count is a
    # *static* constant, as it would be after constant propagation in a
    # compiled kernel — which is exactly what makes the loop a candidate
    # for the §7 loop-splitting rewrite.
    with b.function("price_worker", params=2) as f:
        with f.loop(iterations):
            f.read(Indexed(inputs, 8, 0))
            f.compute(6)
            f.write(Indexed(Param(0), 8, 0))
        # Cold epilogue: publish the residual without synchronization.
        site = racy_access(f, Param(1), read=False)
    plan.site("residual_norm", site, expect_rare=True)

    with b.function("main", slots=_WORKERS) as f:
        with f.loop(128):
            f.write(Indexed(inputs, 8, 0))
        for w in range(_WORKERS):
            # Workers 1 and 2 race on the shared residual accumulator.
            target = residual if w in (1, 2) else b.global_addr(f"res_{w}")
            f.fork("price_worker", outputs[w], target, tid_slot=w)
        for w in range(_WORKERS):
            f.join(w)

    program = b.build(entry="main")
    return plan.attach(program)


register(WorkloadSpec(
    name="parsec-like",
    title="PARSEC-like",
    description="Compute-bound scientific kernel with high-trip-count "
                "inline loops (the §7 loop-granularity case study)",
    builder=build_parsec_like,
    in_race_eval=False,
    in_overhead_eval=False,
))
