"""Apache web-server workloads (§5.1).

Two inputs, as in the paper:

* **apache-1** — a mixed workload: requests for a small static page, a
  larger page, and CGI requests (paper: 3000/3000/1000 with up to 30
  concurrent connections; we scale the counts and use a 16-thread worker
  pool plus a background logger).
* **apache-2** — a uniform workload of small static requests only.

Per-request work lives in handler helpers; workers run batches of requests
and update the shared scoreboard under its lock once per batch, so
cross-thread happens-before edges exist at batch granularity — sparse
enough for the planted hot races to manifest, as in a real server where
workers do not serialize per request.  The worker pool ramps up staggered
(children are spawned as load arrives), which matters for global samplers:
by the time late workers execute the hot handlers for *their* first time,
a global sampler has long backed off.

Planted races (keys = static PC pairs; per Table 4 apache-1 has 17 races,
8 rare / 9 frequent; apache-2 has 16, 9 rare / 7 frequent):

=======================  ======  =========  ==================================
site                     keys    variant    archetype
=======================  ======  =========  ==================================
child_init               2 rare  both       warmed cold (thread-local only)
config_reload            2 rare  both       cold-cold (two workers, once each)
access_log_append        2 rare  both       hot-cold (hot helper; logger +
                                            lead worker make shared calls)
url_hash_insert          1 rare  both       hot-cold, write-only
ssl_session_init         2 rare  apache-2   warmed cold
pid_file_touch           1 rare  apache-1   cold-cold write (logger + lead)
total_requests           2 freq  both       warm RW in the per-10-batches
                                            request-stat bump (pre-warmed)
keepalive_flag           1 freq  both       warm W, same stat bump
bytes_sent               2 freq  apache-1   warm RW in the transfer-stat bump
request_time_stat        2 freq  apache-2   warm RW in the request-stat bump
conn_pool_flush          2 freq  both       mid-frequency: flushed once per
                                            25 batches (10 calls/thread)
cgi_active               2 freq  apache-1   late-frequent (private first
                                            half, shared second half)
=======================  ======  =========  ==================================
"""

from __future__ import annotations

from ..tir.addr import HeapSlot, Indexed, Param
from ..tir.builder import ProgramBuilder
from ..tir.program import Program
from .patterns import RacePlan, RacyHelper, racy_access, tls_churn
from .spec import PaperRaceCounts, WorkloadSpec, register

__all__ = ["build_apache_1", "build_apache_2"]

WORKERS = 16

# Per-batch request mix and per-worker batch counts (before scaling).
_MIX_1 = {"small": 6, "large": 6, "cgi": 2}
_BATCHES_1 = 250
_MIX_2 = {"small": 16, "large": 0, "cgi": 0}
_BATCHES_2 = 300

#: Workers bump shared request statistics once per this many batches.
_STATS_EVERY = 10
#: Workers flush connection-pool stats once per this many batches.
_FLUSH_EVERY = 25
#: Cycles between successive worker spawns (pool ramp-up).
_STAGGER = 60_000


def _build(seed: int, scale: float, variant: int) -> Program:
    name = f"apache-{variant}"
    b = ProgramBuilder(name)
    plan = RacePlan()
    mix = _MIX_1 if variant == 1 else _MIX_2
    batches = max(4, int((_BATCHES_1 if variant == 1 else _BATCHES_2) * scale))
    # Two phases (early/late), each split into conn-stat flush chunks,
    # each split into request-stat sub-chunks.
    half = max(2, batches // 2)
    flush_chunks = max(1, half // _FLUSH_EVERY)
    chunk = half // flush_chunks
    stat_runs = max(1, chunk // _STATS_EVERY)
    stat_chunk = chunk // stat_runs
    chunk = stat_chunk * stat_runs
    half = chunk * flush_chunks

    # -- shared state ----------------------------------------------------
    sb_lock = b.global_addr("scoreboard_lock")
    sb_busy = b.global_addr("scoreboard_busy")
    sb_total = b.global_addr("scoreboard_total")
    log_lock = b.global_addr("log_lock")
    log_buf = b.global_addr("log_buffer_head")
    cfg_cache = b.global_array("config_cache", 64, 8)
    total_requests = b.global_addr("total_requests")
    keepalive_flag = b.global_addr("keepalive_flag")
    bytes_sent = b.global_addr("bytes_sent")
    cgi_active = b.global_addr("cgi_active")
    request_time = b.global_addr("request_time_stat")

    # -- racy helpers -------------------------------------------------------
    child_init = RacyHelper(b, plan, "child_init", payload_reads=2,
                            expect_rare=True)
    config_reload = RacyHelper(b, plan, "config_reload", expect_rare=True)
    access_log = RacyHelper(b, plan, "access_log_append", payload_reads=1,
                            expect_rare=True)
    url_hash = RacyHelper(b, plan, "url_hash_insert", read=False,
                          payload_reads=2, expect_rare=True)
    conn_stats = RacyHelper(b, plan, "conn_pool_flush", payload_reads=1,
                            expect_rare=False)
    # ssl_session_init is exercised on shared state only in apache-2; the
    # function exists in both builds.
    ssl_init = RacyHelper(b, plan, "ssl_session_init", expect_rare=True,
                          registered=variant == 2)

    # -- request handlers (hot) ---------------------------------------------
    with b.function("handle_static_small") as f:
        tls_churn(f, slots=1)
        f.compute(2)
        with f.loop(6):
            f.read(Indexed(cfg_cache, 8, 0))
        access_log.call_tls(f, 768)
        url_hash.call_tls(f, 896)
        f.io(450)

    with b.function("handle_static_large") as f:
        tls_churn(f, slots=2)
        f.compute(4)
        with f.loop(24):
            f.read(Indexed(cfg_cache, 8, 0))
        access_log.call_tls(f, 768)
        f.io(2500)

    # Shared server statistics, updated once per batch rather than per
    # request: frequent races in real servers recur at a human scale, not
    # tens of thousands of times a second on one counter.
    # p0 = request-time-stat target.
    with b.function("bump_request_stats", params=1) as f:
        plan.site("total_requests", racy_access(f, total_requests),
                  expect_rare=False)
        plan.site("keepalive_flag",
                  racy_access(f, keepalive_flag, read=False),
                  expect_rare=False)
        time_site = racy_access(f, Param(0))
        f.compute(1)
    if variant == 2:
        plan.site("request_time_stat", time_site, expect_rare=False)

    with b.function("bump_transfer_stats") as f:
        bytes_site = racy_access(f, bytes_sent)
        f.compute(1)
    if variant == 1:
        plan.site("bytes_sent", bytes_site, expect_rare=False)

    with b.function("handle_cgi", params=1, slots=1) as f:  # p0 cgi stat
        # The racy stat update sits *before* the allocation: the recycled
        # CGI buffer's page-synchronization (§4.3) orders the handlers'
        # heap accesses, and an access inside that window would be ordered
        # along with them.
        cgi_site = racy_access(f, Param(0))
        f.alloc(512, 0)
        with f.loop(16):
            f.write(Indexed(HeapSlot(0), 8, 0))
        f.compute(10)
        f.free(0)
        f.io(30000)
    if variant == 1:
        plan.site("cgi_active", cgi_site, expect_rare=False)

    with b.function("update_scoreboard") as f:
        f.lock(sb_lock)
        f.read(sb_busy)
        f.write(sb_busy)
        f.read(sb_total)
        f.write(sb_total)
        f.unlock(sb_lock)

    # -- worker threads ----------------------------------------------------
    # Params: p0 child-init, p1 reload, p2 ssl, p3 time-stat,
    # p4 cgi-stat (early phase), p5 start stagger.
    def request_batch(f, cgi_target):
        with f.loop(mix["small"]):
            f.call("handle_static_small")
        if mix["large"]:
            with f.loop(mix["large"]):
                f.call("handle_static_large")
        if mix["cgi"]:
            with f.loop(mix["cgi"]):
                f.call("handle_cgi", cgi_target)

    def phase(f, cgi_target):
        with f.loop(flush_chunks):
            with f.loop(stat_runs):
                with f.loop(stat_chunk):
                    request_batch(f, cgi_target)
                    f.call("update_scoreboard")
                f.call("bump_request_stats", Param(3))
                if mix["large"]:
                    f.call("bump_transfer_stats")
            conn_stats.call_shared(f)

    with b.function("worker", params=6) as f:
        f.io(Param(5))
        child_init.call_with(f, Param(0))
        ssl_init.call_with(f, Param(2))
        phase(f, Param(4))      # early phase: CGI stats per-worker
        phase(f, cgi_active)    # late phase: CGI stats shared
        config_reload.call_with(f, Param(1))

    with b.function("worker_lead", params=6) as f:
        f.call("worker", *[Param(i) for i in range(6)])
        # Lead worker's cold uses of the (hot) log and url-hash helpers.
        access_log.call_shared(f)
        url_hash.call_shared(f)
        if variant == 1:
            lead_pid = f.write(b.global_addr("pid_file"))

    with b.function("logger") as f:
        with f.loop(4):
            f.io(max(4000, batches * 2500))
            f.lock(log_lock)
            f.read(log_buf)
            f.write(log_buf)
            f.unlock(log_lock)
            tls_churn(f, slots=1)
        access_log.call_shared(f)
        url_hash.call_shared(f)
        if variant == 1:
            logger_pid = f.write(b.global_addr("pid_file"))
    if variant == 1:
        plan.site("pid_file_touch", [lead_pid, logger_pid],
                  expect_rare=True, self_pairs=False)

    # -- main ------------------------------------------------------------------
    with b.function("main", slots=WORKERS + 1) as f:
        for index in range(16):
            f.write(cfg_cache + 8 * index)
        # Master-process warmups (config checks, pool setup) that make the
        # cold helpers globally hot before any worker runs.
        with f.loop(30):
            child_init.call_private(f, "master")
            ssl_init.call_private(f, "master")
            conn_stats.call_private(f, "master")
            f.compute(2)
        # The server has been running long before this measured window:
        # pre-warm the hot statistics routines so samplers see them as the
        # hot functions they are (main-thread accesses are fork-ordered,
        # hence race-free).
        with f.loop(2000):
            f.call("bump_request_stats", b.global_addr("time_stat_master"))
            f.call("bump_transfer_stats")
            f.call("update_scoreboard")
        f.fork("logger", tid_slot=WORKERS)
        for w in range(WORKERS):
            fn = "worker_lead" if w == 0 else "worker"
            args = (
                child_init.shared if w in (10, 11)
                else child_init.private_addr(w),
                config_reload.shared if w in (5, 9)
                else config_reload.private_addr(w),
                (ssl_init.shared if w in (6, 12) and variant == 2
                 else ssl_init.private_addr(w)),
                request_time if variant == 2
                else b.global_addr(f"time_stat_{w}"),
                b.global_addr(f"cgi_stat_{w}"),
                _STAGGER * w,
            )
            f.fork(fn, *args, tid_slot=w)
        for w in range(WORKERS):
            f.join(w)
        f.join(WORKERS)

    program = b.build(entry="main")
    return plan.attach(program)


def build_apache_1(seed: int = 0, scale: float = 1.0) -> Program:
    """Apache with the mixed small/large/CGI request workload."""
    return _build(seed, scale, variant=1)


def build_apache_2(seed: int = 0, scale: float = 1.0) -> Program:
    """Apache with the uniform small-static-page workload."""
    return _build(seed, scale, variant=2)


register(WorkloadSpec(
    name="apache-1",
    title="Apache-1",
    description="Apache httpd, mixed workload: small/large static pages "
                "plus CGI requests",
    builder=build_apache_1,
    in_race_eval=True,
    in_overhead_eval=True,
    paper_races=PaperRaceCounts(total=17, rare=8, frequent=9),
    paper_literace_slowdown=1.02,
    paper_full_slowdown=1.4,
))

register(WorkloadSpec(
    name="apache-2",
    title="Apache-2",
    description="Apache httpd, uniform workload of small static requests",
    builder=build_apache_2,
    in_race_eval=True,
    in_overhead_eval=True,
    paper_races=PaperRaceCounts(total=16, rare=9, frequent=7),
    paper_literace_slowdown=1.04,
    paper_full_slowdown=3.2,
))
