"""Call graph, thread contexts, and fork/join ordering facts.

The dynamic detector sees one thread per executed ``Fork``.  Statically we
approximate threads by **contexts**: the entry context (the main thread)
plus one context per ``Fork`` instruction.  A function's accesses execute
in every context from which the function is reachable through ``Call``
edges; ``Fork`` edges start a new context.

Each context carries a **multiplicity** — whether its fork site can
execute more than once (a fork inside a ``Loop``, or in a function that is
itself activated more than once).  A context with multiplicity MANY models
several concurrent threads running the same code, so two accesses in the
same MANY context can race with each other.

Two refinements recover the common *init → fork → join → teardown*
structure of the bundled workloads, both justified by happens-before edges
the dynamic detector also records:

* **Fork ordering** — main-thread work that fully precedes the fork that
  (transitively) starts a context happens-before everything in that
  context, via the FORK edge.
* **Join ordering** — main-thread work after the ``Join`` of a context's
  one fork happens-after everything in it, via the JOIN edge.

Both are computed positionally over the entry function's top-level
statement list: statement ``i`` fully precedes statement ``j`` iff
``i < j`` (TIR has no early exits, so top-level statements execute in
order, to completion).  Anything not provably ordered is treated as
potentially parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..tir import ops
from ..tir.program import Program

__all__ = ["CallGraph", "ENTRY_CONTEXT"]

#: The context id of the main thread.
ENTRY_CONTEXT = "entry"

#: Context ids: the entry marker, or the PC of the Fork instruction.
ContextId = Union[str, int]

_MANY = 2


def _saturate(n: int) -> int:
    return min(n, _MANY)


@dataclass
class _Site:
    """One Call or Fork instruction, with its static position."""

    instr: ops.Instr
    owner: str
    in_loop: bool
    top_index: int  # index of the containing top-level statement
    depth: int      # 0 = directly in the function body


class CallGraph:
    """Whole-program reachability, contexts, and ordering facts."""

    def __init__(self, program: Program):
        self.program = program
        self.entry = program.entry
        self.call_sites: List[_Site] = []
        self.fork_sites: List[_Site] = []
        self._collect_sites()
        self._compute_activations()
        self._compute_contexts()
        self._compute_reach_tops()
        self._compute_anchors()
        self._compute_joins()

    # ------------------------------------------------------------------
    def _collect_sites(self) -> None:
        self._fork_by_pc: Dict[int, _Site] = {}
        for name, func in self.program.functions.items():
            for instr, in_loop, top, depth in _walk(func.body):
                if isinstance(instr, ops.Call):
                    self.call_sites.append(_Site(instr, name, in_loop,
                                                 top, depth))
                elif isinstance(instr, ops.Fork):
                    site = _Site(instr, name, in_loop, top, depth)
                    self.fork_sites.append(site)
                    self._fork_by_pc[instr.pc] = site

    def _compute_activations(self) -> None:
        """How many times each function may be activated: 0, 1, or MANY."""
        self.activations: Dict[str, int] = {
            name: 0 for name in self.program.functions
        }
        self.activations[self.entry] = 1
        for _ in range(len(self.program.functions) + 2):
            changed = False
            counts = {name: 0 for name in self.program.functions}
            counts[self.entry] = 1
            for site in self.call_sites + self.fork_sites:
                weight = _MANY if site.in_loop else 1
                contribution = self.activations[site.owner] * weight
                target = site.instr.func
                counts[target] = _saturate(counts[target] + contribution)
            for name, count in counts.items():
                if count != self.activations[name]:
                    self.activations[name] = count
                    changed = True
            if not changed:
                break

    def _compute_contexts(self) -> None:
        """The set of contexts each function may execute in."""
        self.contexts: Dict[str, Set[ContextId]] = {
            name: set() for name in self.program.functions
        }
        self.contexts[self.entry].add(ENTRY_CONTEXT)
        changed = True
        while changed:
            changed = False
            for site in self.call_sites:
                added = self.contexts[site.owner] - \
                    self.contexts[site.instr.func]
                if added:
                    self.contexts[site.instr.func] |= added
                    changed = True
            for site in self.fork_sites:
                if (self.contexts[site.owner]
                        and site.instr.pc not in
                        self.contexts[site.instr.func]):
                    self.contexts[site.instr.func].add(site.instr.pc)
                    changed = True

    def multiplicity(self, context: ContextId) -> int:
        """1 if the context is a single thread, MANY otherwise."""
        if context == ENTRY_CONTEXT:
            return 1
        site = self._fork_by_pc[context]
        weight = _MANY if site.in_loop else 1
        return _saturate(self.activations[site.owner] * weight)

    # ------------------------------------------------------------------
    def _compute_reach_tops(self) -> None:
        """``reach_tops[f]``: the entry-body top-level statement indices
        under whose dynamic extent ``f`` may execute *in the entry
        context* (reached from the entry purely through Calls)."""
        self.reach_tops: Dict[str, Set[int]] = {
            name: set() for name in self.program.functions
        }
        changed = True
        while changed:
            changed = False
            for site in self.call_sites:
                if ENTRY_CONTEXT not in self.contexts[site.owner]:
                    continue
                tops = ({site.top_index} if site.owner == self.entry
                        else self.reach_tops[site.owner])
                added = tops - self.reach_tops[site.instr.func]
                if added:
                    self.reach_tops[site.instr.func] |= added
                    changed = True

    def entry_tops(self, owner: str, pc: int) -> Set[int]:
        """Entry-body top indices covering all entry-context executions of
        the instruction at ``pc`` (owned by ``owner``)."""
        if owner == self.entry:
            top = self._top_index_of(pc)
            return {top} if top is not None else set()
        return set(self.reach_tops[owner])

    def _top_index_of(self, pc: int) -> Optional[int]:
        entry_func = self.program.functions[self.entry]
        for index, stmt in enumerate(entry_func.body):
            if stmt.pc == pc:
                return index
            if isinstance(stmt, ops.Loop):
                if any(sub.pc == pc for sub in _loop_instrs(stmt)):
                    return index
        return None

    def _compute_anchors(self) -> None:
        """``anchors[F]``: entry-body top indices before which *no* thread
        of context F can start, or None when unknown."""
        self.anchors: Dict[int, Optional[Set[int]]] = {}
        for site in self.fork_sites:
            self._anchor_of(site.instr.pc, ())

    def _anchor_of(self, fork_pc: int,
                   stack: Tuple[int, ...]) -> Optional[Set[int]]:
        if fork_pc in self.anchors:
            return self.anchors[fork_pc]
        if fork_pc in stack:
            return None  # recursive fork chain: give up, stay conservative
        site = self._fork_by_pc[fork_pc]
        result: Set[int] = set()
        for context in self.contexts[site.owner]:
            if context == ENTRY_CONTEXT:
                tops = self.entry_tops(site.owner, fork_pc)
                if not tops:
                    self.anchors[fork_pc] = None
                    return None
                result |= tops
            else:
                inherited = self._anchor_of(context, stack + (fork_pc,))
                if inherited is None:
                    self.anchors[fork_pc] = None
                    return None
                result |= inherited
        self.anchors[fork_pc] = result
        return result

    def _compute_joins(self) -> None:
        """``join_top[F]``: the entry-body top index after which all
        threads of context F have terminated, when provable."""
        self.join_top: Dict[int, int] = {}
        entry_func = self.program.functions[self.entry]
        slot_writers: Dict[int, List[_Site]] = {}
        for site in self.fork_sites:
            slot = site.instr.tid_slot
            if site.owner == self.entry and slot is not None:
                slot_writers.setdefault(slot, []).append(site)
        for slot, writers in slot_writers.items():
            if len(writers) != 1:
                continue  # slot reused: the Join targets only the last fork
            site = writers[0]
            if site.depth != 0:
                continue  # a fork under a loop runs more than once
            for index, stmt in enumerate(entry_func.body):
                if (isinstance(stmt, ops.Join) and stmt.tid_slot == slot
                        and index > site.top_index):
                    self.join_top[site.instr.pc] = index
                    break

    # ------------------------------------------------------------------
    def ordered_against(self, owner: str, pc: int,
                        context: ContextId) -> bool:
        """True when every entry-context execution of ``pc`` is ordered
        (by fork or join happens-before edges) against every thread of
        ``context``."""
        if context == ENTRY_CONTEXT:
            return False
        tops = self.entry_tops(owner, pc)
        if not tops:
            return False  # can't place the access: stay conservative
        anchors = self.anchors.get(context)
        if anchors is not None and anchors and max(tops) < min(anchors):
            return True
        join = self.join_top.get(context)
        if join is not None and min(tops) > join:
            return True
        return False

    def may_be_parallel(self, owner_a: str, pc_a: int,
                        owner_b: str, pc_b: int) -> bool:
        """May some execution of ``pc_a`` run concurrently with some
        execution of ``pc_b`` in a different thread?"""
        for ca in self.contexts[owner_a]:
            for cb in self.contexts[owner_b]:
                if ca == cb:
                    if self.multiplicity(ca) >= _MANY:
                        return True
                    continue
                if ca == ENTRY_CONTEXT and \
                        self.ordered_against(owner_a, pc_a, cb):
                    continue
                if cb == ENTRY_CONTEXT and \
                        self.ordered_against(owner_b, pc_b, ca):
                    continue
                return True
        return False


def _walk(body, in_loop=False, top=None, depth=0):
    """Yield ``(instr, in_loop, top_index, depth)`` over a body tree."""
    for index, instr in enumerate(body):
        top_index = index if top is None else top
        yield instr, in_loop, top_index, depth
        if isinstance(instr, ops.Loop):
            yield from _walk(instr.body, True, top_index, depth + 1)


def _loop_instrs(loop: ops.Loop):
    for instr in loop.body:
        yield instr
        if isinstance(instr, ops.Loop):
            yield from _loop_instrs(instr)
