"""Static race-freedom analysis over finalized TIR programs.

LiteRace pays a logging call for every sampled memory operation, but many
accesses are *statically* provably race-free — thread-local, read-only
shared, or consistently lock-dominated.  Following the whitelist idea of
"Compiling Away the Overhead of Race Detection" and HardRace (PAPERS.md),
this package proves such accesses safe ahead of time so the
instrumentation pass can skip their logging entirely:

* :mod:`.escape` — thread-escape / abstract-value analysis giving every
  operand an over-approximating address :class:`~.model.Footprint`;
* :mod:`.callgraph` — contexts (entry + one per ``Fork`` site), context
  multiplicities, and fork/join happens-before ordering facts;
* :mod:`.lockset` — a must-lockset dataflow with concrete and
  lock-per-object relative tokens;
* :mod:`.classify` — the pairwise filter producing a
  :class:`~.report.StaticReport` of per-PC verdicts and surviving
  candidate racy pairs.

Only ``Read``/``Write`` PCs are ever pruned.  Synchronization operations
are structurally unprunable, so the happens-before graph the detector
reconstructs stays complete and the no-false-positive guarantee of the
paper is untouched; pruning an access the analysis wrongly judged safe is
the only possible failure mode, and the analysis errs conservative at
every join.  ``python -m repro staticpass`` and the
``experiments.staticprune`` ablation cross-check the verdicts against the
dynamic detector's full-logging oracle.
"""

from __future__ import annotations

from ..tir.program import Program
from .classify import classify
from .model import Footprint, Verdict
from .report import StaticReport

__all__ = ["analyze", "StaticReport", "Verdict", "Footprint"]


def analyze(program: Program) -> StaticReport:
    """Classify every memory-op PC of ``program``; see :mod:`.classify`."""
    return classify(program)
