"""Abstract values for the static race-freedom analysis.

The analysis reasons about the addresses a TIR operand *may* resolve to
without running the program.  A :class:`Footprint` over-approximates that
set with four components:

* **intervals** — closed ``[lo, hi]`` ranges of concrete addresses (globals
  and other statically-known integers).  Unbounded ``Indexed`` walks are
  clamped at the end of the containing address-space region, which encodes
  the (checked-by-construction) assumption that TIR address arithmetic
  never crosses a region boundary.
* **tls** — the access goes through :class:`~repro.tir.addr.Tls`.  TLS
  addresses are private to the executing thread by construction, so two TLS
  footprints never alias *across* threads; they may alias an ``unknown``
  footprint.
* **heap sites** — the access reaches a heap block allocated at a given
  ``Alloc`` PC.  Sites are split into *fresh* (reached through the
  allocating frame's own slot) and *escaped* (reached through a value that
  left the allocating frame via a ``Call``/``Fork`` argument).  Two fresh
  references to the same site in different threads are necessarily
  different blocks — each frame allocated its own — so a pair of accesses
  conflicts on a site only when at least one side is escaped.
* **unknown** — anything (top).  Overlaps everything, including TLS.

Footprints form a join-semilattice; every operation over-approximates, so
any imprecision makes the final verdicts strictly *more* conservative
(fewer pruned PCs), never unsound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..layout import HEAP_BASE, TLS_BASE

__all__ = ["Footprint", "Verdict", "EMPTY", "UNKNOWN", "TLS_FOOTPRINT"]

#: Cap on the number of disjoint intervals tracked per footprint; beyond it
#: the list collapses to its convex hull (sound: the hull is a superset).
_MAX_INTERVALS = 64

#: Cap for interval ends in the thread-private region (no meaningful
#: region above TLS to clamp against).
_ADDR_CEILING = 1 << 62


def _region_end(addr: int) -> int:
    """Last address of the layout region containing ``addr``."""
    if addr < HEAP_BASE:
        return HEAP_BASE - 1
    if addr < TLS_BASE:
        return TLS_BASE - 1
    return _ADDR_CEILING


def _normalize(intervals) -> Tuple[Tuple[int, int], ...]:
    """Sort, merge, and cap an interval list."""
    if not intervals:
        return ()
    merged = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    if len(merged) > _MAX_INTERVALS:
        merged = [(merged[0][0], merged[-1][1])]
    return tuple(tuple(pair) for pair in merged)


@dataclass(frozen=True)
class Footprint:
    """An over-approximation of the addresses an operand may denote."""

    intervals: Tuple[Tuple[int, int], ...] = ()
    tls: bool = False
    heap_fresh: FrozenSet[int] = field(default_factory=frozenset)
    heap_escaped: FrozenSet[int] = field(default_factory=frozenset)
    unknown: bool = False

    # -- constructors --------------------------------------------------
    @staticmethod
    def exact(addr: int) -> "Footprint":
        return Footprint(intervals=((addr, addr),))

    @staticmethod
    def fresh_heap(alloc_pc: int) -> "Footprint":
        return Footprint(heap_fresh=frozenset((alloc_pc,)))

    # -- lattice operations --------------------------------------------
    def join(self, other: "Footprint") -> "Footprint":
        if self.unknown or other.unknown:
            return UNKNOWN
        return Footprint(
            intervals=_normalize(self.intervals + other.intervals),
            tls=self.tls or other.tls,
            heap_fresh=self.heap_fresh | other.heap_fresh,
            heap_escaped=self.heap_escaped | other.heap_escaped,
        )

    def shift(self, offset: int) -> "Footprint":
        """The footprint of ``expr + offset``.

        Offsets move interval endpoints; TLS stays TLS and heap blocks stay
        the same block (offsets address fields within it).
        """
        if offset == 0 or self.unknown:
            return self
        return Footprint(
            intervals=_normalize(
                (lo + offset, hi + offset) for lo, hi in self.intervals
            ),
            tls=self.tls,
            heap_fresh=self.heap_fresh,
            heap_escaped=self.heap_escaped,
        )

    def widen(self, stride: int, count_bound: Optional[int]) -> "Footprint":
        """The footprint of ``base + stride * i`` for ``0 <= i < count``.

        ``count_bound`` of ``None`` means the trip count is not statically
        known; interval ends are then clamped at the containing region's
        boundary (the documented no-region-crossing assumption).
        """
        if self.unknown or stride == 0 or count_bound == 0:
            return self
        out = []
        for lo, hi in self.intervals:
            if count_bound is None:
                if stride > 0:
                    out.append((lo, _region_end(lo)))
                else:
                    # Walking downward: clamp at the region's start, which
                    # conservatively is address 0 (regions are contiguous
                    # from 0 for the purposes of over-approximation).
                    out.append((0, hi))
            else:
                span = stride * (count_bound - 1)
                if stride > 0:
                    out.append((lo, hi + span))
                else:
                    out.append((lo + span, hi))
        return Footprint(
            intervals=_normalize(out),
            tls=self.tls,
            heap_fresh=self.heap_fresh,
            heap_escaped=self.heap_escaped,
        )

    def escaped(self) -> "Footprint":
        """This value after leaving its frame via a Call/Fork argument."""
        if self.unknown or not self.heap_fresh:
            return self
        return Footprint(
            intervals=self.intervals,
            tls=self.tls,
            heap_fresh=frozenset(),
            heap_escaped=self.heap_escaped | self.heap_fresh,
        )

    # -- queries -------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return (not self.unknown and not self.tls and not self.intervals
                and not self.heap_fresh and not self.heap_escaped)

    def single_exact(self) -> Optional[int]:
        """The one concrete address this footprint denotes, if any."""
        if (self.unknown or self.tls or self.heap_fresh
                or self.heap_escaped or len(self.intervals) != 1):
            return None
        lo, hi = self.intervals[0]
        return lo if lo == hi else None

    def max_exact(self) -> Optional[int]:
        """An upper bound when the value is a plain bounded integer."""
        if (self.unknown or self.tls or self.heap_fresh
                or self.heap_escaped or not self.intervals):
            return None
        return self.intervals[-1][1]

    def may_contain(self, addr: int) -> bool:
        """May this footprint denote the concrete address ``addr``?"""
        if self.unknown:
            return True
        return any(lo <= addr <= hi for lo, hi in self.intervals)

    def conflicts(self, other: "Footprint") -> bool:
        """May the two footprints denote the same address in *different*
        threads?  (TLS never aliases cross-thread; two fresh references to
        the same heap site are different blocks in different threads.)"""
        if self.is_empty or other.is_empty:
            return False
        if self.unknown or other.unknown:
            return True
        if _intervals_overlap(self.intervals, other.intervals):
            return True
        mine = self.heap_fresh | self.heap_escaped
        theirs = other.heap_fresh | other.heap_escaped
        for site in mine & theirs:
            both_fresh_only = (site in self.heap_fresh
                               and site in other.heap_fresh
                               and site not in self.heap_escaped
                               and site not in other.heap_escaped)
            if not both_fresh_only:
                return True
        return False


def _intervals_overlap(a, b) -> bool:
    i = j = 0
    while i < len(a) and j < len(b):
        lo_a, hi_a = a[i]
        lo_b, hi_b = b[j]
        if lo_a <= hi_b and lo_b <= hi_a:
            return True
        if hi_a < hi_b:
            i += 1
        else:
            j += 1
    return False


EMPTY = Footprint()
UNKNOWN = Footprint(unknown=True)
TLS_FOOTPRINT = Footprint(tls=True)


class Verdict(enum.Enum):
    """Per-PC classification of a Read/Write instruction."""

    #: Only ever touched by (at most) one thread at a time.
    THREAD_LOCAL = "thread-local"
    #: Shared, but every parallel access that can reach the same address
    #: is a read.
    READ_ONLY = "read-only"
    #: Every potentially-racing parallel pair shares a common lock.
    LOCK_DOMINATED = "lock-dominated"
    #: Could not be proven safe; stays instrumented.
    MAY_RACE = "may-race"

    @property
    def safe(self) -> bool:
        return self is not Verdict.MAY_RACE
