"""Thread-escape / abstract-value analysis over TIR operands.

Computes, for every function, an over-approximating :class:`Footprint` for
each parameter (joined over all ``Call``/``Fork`` sites, to a fixpoint) and
each heap slot, then evaluates every ``Read``/``Write`` operand to a
footprint.  ``Indexed`` operands are widened by the trip-count bound of the
loop that supplies their induction variable; dynamic trip counts widen to
the end of the containing address-space region.

Escape happens at argument evaluation: a heap block whose base is passed
as a ``Call``/``Fork`` argument is marked *escaped* in the receiver, which
is what lets :meth:`Footprint.conflicts` distinguish per-frame private
blocks from genuinely shared ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..tir import ops
from ..tir.addr import HeapSlot, Indexed, Param, Tls
from ..tir.program import Program
from .model import EMPTY, TLS_FOOTPRINT, UNKNOWN, Footprint

__all__ = ["Access", "ValueAnalysis"]

#: Fixpoint iteration cap; params still changing afterwards (offset-
#: accumulating recursion) are widened to unknown.
_MAX_ITERATIONS = 30


@dataclass(frozen=True)
class Access:
    """One static Read/Write instruction, abstractly evaluated."""

    pc: int
    owner: str
    is_write: bool
    footprint: Footprint
    #: ``(param_index, offset)`` when the operand is a direct ``Param``
    #: reference — the shape the relative-lockset matcher understands.
    rel_base: Optional[Tuple[int, int]]


class ValueAnalysis:
    """Parameter/slot footprints and per-access evaluation."""

    def __init__(self, program: Program):
        self.program = program
        self.param_fp: Dict[Tuple[str, int], Footprint] = {}
        for name, func in program.functions.items():
            for index in range(func.num_params):
                self.param_fp[(name, index)] = EMPTY
        # The executor may pass arbitrary entry parameters.
        entry = program.functions[program.entry]
        for index in range(entry.num_params):
            self.param_fp[(program.entry, index)] = UNKNOWN
        self._compute_slot_footprints()
        self._solve_params()
        self.accesses = self._collect_accesses()

    # ------------------------------------------------------------------
    def _compute_slot_footprints(self) -> None:
        """Frame slots hold heap-block bases (``Alloc``) or thread ids
        (``Fork``); both are purely local facts."""
        self.slot_fp: Dict[Tuple[str, int], Footprint] = {}
        for name, func in self.program.functions.items():
            for instr in func.instructions():
                if isinstance(instr, ops.Alloc):
                    key = (name, instr.slot)
                    fp = self.slot_fp.get(key, EMPTY)
                    self.slot_fp[key] = fp.join(
                        Footprint.fresh_heap(instr.pc))
                elif isinstance(instr, ops.Fork) and \
                        instr.tid_slot is not None:
                    # A tid is a small integer, not an address; if the
                    # workload nevertheless dereferences it, stay sound.
                    key = (name, instr.tid_slot)
                    self.slot_fp[key] = UNKNOWN

    # ------------------------------------------------------------------
    def eval_value(self, expr, owner: str,
                   bounds: Tuple[Optional[int], ...] = ()) -> Footprint:
        """Footprint of an operand/argument in ``owner``'s frame.

        ``bounds`` is the stack of enclosing loop trip-count bounds,
        outermost first (``None`` = statically unbounded).
        """
        if isinstance(expr, int):
            return Footprint.exact(expr)
        if isinstance(expr, Param):
            base = self.param_fp.get((owner, expr.index), UNKNOWN)
            return base.shift(expr.offset)
        if isinstance(expr, Tls):
            return TLS_FOOTPRINT
        if isinstance(expr, HeapSlot):
            base = self.slot_fp.get((owner, expr.slot), EMPTY)
            return base.shift(expr.offset)
        if isinstance(expr, Indexed):
            base = self.eval_value(expr.base, owner, bounds)
            depth_index = len(bounds) - 1 - expr.depth
            bound = bounds[depth_index] if 0 <= depth_index < len(bounds) \
                else None
            return base.widen(expr.stride, bound)
        return UNKNOWN

    def loop_bound(self, count, owner: str,
                   bounds: Tuple[Optional[int], ...]) -> Optional[int]:
        """Static upper bound for a loop trip count, if derivable."""
        if isinstance(count, int):
            return count
        return self.eval_value(count, owner, bounds).max_exact()

    # ------------------------------------------------------------------
    def _solve_params(self) -> None:
        for iteration in range(_MAX_ITERATIONS):
            changed = self._propagate_once()
            if not changed:
                return
        # Did not converge (e.g. recursion accumulating offsets): widen
        # every parameter that is still moving.
        moving = self._propagate_once(collect_only=True)
        for key in moving:
            self.param_fp[key] = UNKNOWN

    def _propagate_once(self, collect_only: bool = False):
        changed_keys = set()
        for name, func in self.program.functions.items():
            self._propagate_body(name, func.body, (), changed_keys,
                                 collect_only)
        return changed_keys if collect_only else bool(changed_keys)

    def _propagate_body(self, owner: str, body, bounds, changed_keys,
                        collect_only: bool) -> None:
        for instr in body:
            if isinstance(instr, (ops.Call, ops.Fork)):
                for index, arg in enumerate(instr.args):
                    key = (instr.func, index)
                    if key not in self.param_fp:
                        continue
                    fp = self.eval_value(arg, owner, bounds).escaped()
                    joined = self.param_fp[key].join(fp)
                    if joined != self.param_fp[key]:
                        changed_keys.add(key)
                        if not collect_only:
                            self.param_fp[key] = joined
            elif isinstance(instr, ops.Loop):
                bound = self.loop_bound(instr.count, owner, bounds)
                self._propagate_body(owner, instr.body, bounds + (bound,),
                                     changed_keys, collect_only)

    # ------------------------------------------------------------------
    def _collect_accesses(self) -> List[Access]:
        accesses: List[Access] = []
        for name, func in self.program.functions.items():
            self._collect_body(name, func.body, (), accesses)
        return accesses

    def _collect_body(self, owner: str, body, bounds, out) -> None:
        for instr in body:
            if isinstance(instr, (ops.Read, ops.Write)):
                operand = instr.addr
                rel = ((operand.index, operand.offset)
                       if isinstance(operand, Param) else None)
                out.append(Access(
                    pc=instr.pc,
                    owner=owner,
                    is_write=isinstance(instr, ops.Write),
                    footprint=self.eval_value(operand, owner, bounds),
                    rel_base=rel,
                ))
            elif isinstance(instr, ops.Loop):
                bound = self.loop_bound(instr.count, owner, bounds)
                self._collect_body(owner, instr.body, bounds + (bound,),
                                   out)
