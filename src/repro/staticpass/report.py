"""The :class:`StaticReport` artifact: verdicts, pairs, and cross-checks.

The report is what every consumer of the static pass sees: per-PC verdicts
for all memory operations, the surviving candidate racy PC pairs, and a
:meth:`StaticReport.prune_set` that the instrumentation pass and executor
use to drop logging for provably-safe accesses.

Soundness contract (checked by :meth:`cross_check` and the
``experiments.staticprune`` ablation): every race the dynamic detector can
report — a pair of memory-op PCs — must appear in ``candidate_pairs``, and
both PCs must carry the MAY_RACE verdict.  Only MAY_RACE PCs are ever
instrumented away from, so a violation here would mean pruning could lose
a race.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from ..tir.program import Program
from .model import Verdict

__all__ = ["StaticReport"]


@dataclass
class StaticReport:
    """Result of :func:`repro.staticpass.analyze` for one program."""

    program_name: str
    #: Verdict per Read/Write PC.
    verdicts: Dict[int, Verdict]
    #: Sorted ``(pc, pc)`` pairs that may race (superset of anything the
    #: dynamic detector can ever report).
    candidate_pairs: FrozenSet[Tuple[int, int]]
    #: Human-readable ``function+offset`` per analyzed PC.
    symbols: Dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def prune_set(self) -> FrozenSet[int]:
        """Memory-op PCs that are provably race-free (safe to not log)."""
        return frozenset(pc for pc, verdict in self.verdicts.items()
                         if verdict.safe)

    @property
    def num_memory_pcs(self) -> int:
        return len(self.verdicts)

    @property
    def num_pruned(self) -> int:
        return len(self.prune_set())

    def histogram(self) -> Dict[Verdict, int]:
        counts = {verdict: 0 for verdict in Verdict}
        for verdict in self.verdicts.values():
            counts[verdict] += 1
        return counts

    # ------------------------------------------------------------------
    def cross_check(self, race_pairs) -> List[Tuple[int, int]]:
        """Compare against dynamically-detected races.

        ``race_pairs`` is an iterable of sorted ``(pc, pc)`` race keys from
        the dynamic detector (e.g. ``RaceReport.static_races``).  Returns
        the pairs the static pass wrongly ruled out — empty iff the pass
        was sound on this run.
        """
        missed = []
        for pair in race_pairs:
            low, high = min(pair), max(pair)
            if (low, high) not in self.candidate_pairs:
                missed.append((low, high))
                continue
            if self.verdicts.get(low, Verdict.MAY_RACE).safe or \
                    self.verdicts.get(high, Verdict.MAY_RACE).safe:
                missed.append((low, high))
        return missed

    def check_planted(self, program: Program) -> List[Tuple[int, int]]:
        """Planted ground-truth races the static pass wrongly ruled out."""
        pairs = [key for race in program.planted_races for key in race.keys]
        return self.cross_check(pairs)

    # ------------------------------------------------------------------
    def render(self, max_pairs: int = 12) -> str:
        """A short human-readable summary."""
        counts = self.histogram()
        total = self.num_memory_pcs
        lines = [
            f"static race-freedom analysis: {self.program_name}",
            f"  memory-op sites : {total}",
        ]
        for verdict in Verdict:
            count = counts[verdict]
            share = (100.0 * count / total) if total else 0.0
            lines.append(f"  {verdict.value:<15}: {count:>4}  "
                         f"({share:5.1f}%)")
        lines.append(f"  prunable sites  : {self.num_pruned} of {total}")
        pairs = sorted(self.candidate_pairs)
        lines.append(f"  candidate racy pairs: {len(pairs)}")
        for low, high in pairs[:max_pairs]:
            first = self.symbols.get(low, f"pc{low}")
            second = self.symbols.get(high, f"pc{high}")
            lines.append(f"    {first} <-> {second}")
        if len(pairs) > max_pairs:
            lines.append(f"    ... and {len(pairs) - max_pairs} more")
        return "\n".join(lines)
