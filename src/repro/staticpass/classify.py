"""Pairwise classification: footprints × contexts × locksets → verdicts.

Every pair of memory-op PCs is tested with three over-approximating
filters; a pair survives as a *candidate race* only if it passes all of
them:

1. **footprint conflict** — the operands may denote the same address in
   different threads (:meth:`Footprint.conflicts`);
2. **parallelism** — some two executions of the pair can run concurrently
   in different threads (:meth:`CallGraph.may_be_parallel`, which knows
   about fork/join ordering against the main thread);
3. **no common lock** — the must-locksets share no token.  Concrete
   tokens intersect directly.  Relative tokens (``lock at param+δ``)
   match when both accesses are direct ``Param`` references and the
   lock-to-data deltas agree: if access ``p`` at ``base_p + a`` holds the
   lock at ``base_p + l`` and access ``q`` at ``base_q + a'`` holds
   ``base_q + l'`` with ``l - a == l' - a'``, then on *every* instance
   where the operands alias (``base_p + a == base_q + a'``) the two lock
   addresses coincide — a common lock per object, the lock-per-bucket /
   lock-per-channel idiom.

Write-free surviving pairs are not races (read-read) but mark both PCs as
shared; those become READ_ONLY rather than THREAD_LOCAL.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from ..tir.program import Program
from .callgraph import CallGraph
from .escape import Access, ValueAnalysis
from .lockset import LocksetAnalysis
from .model import Verdict
from .report import StaticReport

__all__ = ["classify"]


def classify(program: Program) -> StaticReport:
    """Run all analyses over ``program`` and fold them into a report."""
    values = ValueAnalysis(program)
    graph = CallGraph(program)
    locks = LocksetAnalysis(program, values)

    accesses = values.accesses
    may_race: Set[int] = set()
    lock_saved: Set[int] = set()
    shared_read: Set[int] = set()
    pairs: Set[Tuple[int, int]] = set()

    for i, p in enumerate(accesses):
        for q in accesses[i:]:
            if not p.footprint.conflicts(q.footprint):
                continue
            if not graph.may_be_parallel(p.owner, p.pc, q.owner, q.pc):
                continue
            if not (p.is_write or q.is_write):
                shared_read.add(p.pc)
                shared_read.add(q.pc)
                continue
            if _common_lock(p, q, locks):
                lock_saved.add(p.pc)
                lock_saved.add(q.pc)
                continue
            may_race.add(p.pc)
            may_race.add(q.pc)
            pairs.add((min(p.pc, q.pc), max(p.pc, q.pc)))

    verdicts: Dict[int, Verdict] = {}
    for access in accesses:
        if access.pc in may_race:
            verdicts[access.pc] = Verdict.MAY_RACE
        elif access.pc in lock_saved:
            verdicts[access.pc] = Verdict.LOCK_DOMINATED
        elif access.pc in shared_read:
            verdicts[access.pc] = Verdict.READ_ONLY
        else:
            verdicts[access.pc] = Verdict.THREAD_LOCAL

    symbols = {access.pc: program.symbolize(access.pc)
               for access in accesses}
    return StaticReport(
        program_name=program.name,
        verdicts=verdicts,
        candidate_pairs=frozenset(pairs),
        symbols=symbols,
    )


def _common_lock(p: Access, q: Access, locks: LocksetAnalysis) -> bool:
    """Do ``p`` and ``q`` provably share a lock on every aliasing pair of
    executions?"""
    lp = locks.lockset(p.pc)
    lq = locks.lockset(q.pc)
    if not lp or not lq:
        return False
    exact_p = {t[1] for t in lp if t[0] == "x"}
    exact_q = {t[1] for t in lq if t[0] == "x"}
    if exact_p & exact_q:
        return True
    # Relative (lock-per-object) matching.
    if p.rel_base is not None and q.rel_base is not None:
        deltas_p = _rel_deltas(lp, p)
        deltas_q = _rel_deltas(lq, q)
        if deltas_p & deltas_q:
            return True
    # Single-address overlap: with both operands pinned to one concrete
    # address, relative locks resolve to concrete addresses too.
    ap = p.footprint.single_exact()
    aq = q.footprint.single_exact()
    if ap is not None and ap == aq:
        resolved_p = exact_p | {ap + delta for delta in _rel_deltas(lp, p)}
        resolved_q = exact_q | {aq + delta for delta in _rel_deltas(lq, q)}
        if resolved_p & resolved_q:
            return True
    return False


def _rel_deltas(tokens: FrozenSet[Tuple], access: Access) -> Set[int]:
    """Lock-minus-data deltas of the relative locks pinned to the
    access's own parameter base."""
    if access.rel_base is None:
        return set()
    index, data_offset = access.rel_base
    return {t[2] - data_offset for t in tokens
            if t[0] == "r" and t[1] == index}
