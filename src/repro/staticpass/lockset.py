"""Static must-lockset dataflow over TIR function bodies.

For every ``Read``/``Write`` PC, computes an under-approximation of the
set of locks *definitely held* whenever that PC executes — the classic
must-analysis direction: dropping a lock we actually hold is always sound
(the access merely stays instrumented), while claiming a lock we might not
hold would not be.

Lock tokens come in two shapes:

* ``("x", addr)`` — the mutex at a statically-known concrete address.
* ``("r", param_index, offset)`` — the mutex at ``param + offset`` in the
  *current frame*.  Relative tokens capture the lock-per-object idiom
  (``Lock(Param(0))`` guarding fields of ``Param(0, k)``): two accesses
  through the same kind of relative lock share a concrete lock on every
  program instance where their operands alias, because the lock address is
  pinned to the object address (see :func:`repro.staticpass.classify`).

``via_cas`` locks participate like any other: the TIR keeps the flag, so —
unlike the dynamic profiler of §4.2, which must *guess* that a CAS loop is
a lock — the static pass knows these are real mutual exclusion, and the
runtime additionally emits ATOMIC happens-before edges for them.
``AtomicRMW`` itself confers no static exclusion (optimistic CAS loops do
not make their neighbourhood atomic); it is a sync op and therefore never
a pruning candidate in the first place.

Propagation: function entry sets are the intersection of the caller-held
concrete locks over all ``Call`` sites; ``Fork`` targets start with the
empty set (a child holds nothing — and, because the runtime's mutexes are
owner-release-only, a child can never release its parent's locks either).
``Loop`` bodies run to an invariant fixpoint, so a lock released inside an
iteration is not credited to the next one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..tir import ops
from ..tir.addr import Param
from ..tir.program import Program
from .escape import ValueAnalysis

__all__ = ["LocksetAnalysis", "Summary"]

Token = Tuple
_MAX_OUTER = 20
_MAX_LOOP = 20


@dataclass
class Summary:
    """What a call to this function may do to the caller's locks."""

    may_release: FrozenSet[int]
    releases_unknown: bool

    def __or__(self, other: "Summary") -> "Summary":
        return Summary(self.may_release | other.may_release,
                       self.releases_unknown or other.releases_unknown)


class LocksetAnalysis:
    """Per-PC must-locksets for every memory operation in ``program``."""

    def __init__(self, program: Program, values: ValueAnalysis):
        self.program = program
        self.values = values
        self._compute_summaries()
        self._solve()

    def lockset(self, pc: int) -> FrozenSet[Token]:
        return self.locksets.get(pc, frozenset())

    # ------------------------------------------------------------------
    # Release summaries (may-analysis, least fixpoint)
    # ------------------------------------------------------------------
    def _compute_summaries(self) -> None:
        self.summaries: Dict[str, Summary] = {
            name: Summary(frozenset(), False)
            for name in self.program.functions
        }
        for _ in range(len(self.program.functions) + 2):
            changed = False
            for name, func in self.program.functions.items():
                new = self._summarize_body(name, func.body)
                if new != self.summaries[name]:
                    self.summaries[name] = new
                    changed = True
            if not changed:
                break

    def _summarize_body(self, owner: str, body) -> Summary:
        summary = Summary(frozenset(), False)
        for instr in body:
            if isinstance(instr, ops.Unlock):
                addr = self.values.eval_value(
                    instr.var, owner).single_exact()
                if addr is None:
                    summary = Summary(summary.may_release, True)
                else:
                    summary = Summary(summary.may_release | {addr},
                                      summary.releases_unknown)
            elif isinstance(instr, ops.Call):
                summary = summary | self.summaries[instr.func]
            elif isinstance(instr, ops.Loop):
                summary = summary | self._summarize_body(owner, instr.body)
        return summary

    # ------------------------------------------------------------------
    # Entry sets + per-PC locksets (must-analysis, intersections)
    # ------------------------------------------------------------------
    def _solve(self) -> None:
        fork_targets = {
            instr.func
            for func in self.program.functions.values()
            for instr in func.instructions()
            if isinstance(instr, ops.Fork)
        }
        entry: Dict[str, Optional[FrozenSet[Token]]] = {
            name: None for name in self.program.functions
        }
        entry[self.program.entry] = frozenset()
        for name in fork_targets:
            entry[name] = frozenset()

        for _ in range(_MAX_OUTER):
            self.locksets: Dict[int, FrozenSet[Token]] = {}
            contributions: Dict[str, FrozenSet[Token]] = {}
            for name, func in self.program.functions.items():
                if entry[name] is None:
                    continue
                self._transfer_body(name, func.body, entry[name],
                                    contributions)
            new_entry = dict(entry)
            for name, tokens in contributions.items():
                if name in fork_targets or name == self.program.entry:
                    continue  # pinned to the empty set
                if new_entry[name] is None:
                    new_entry[name] = tokens
                else:
                    new_entry[name] = new_entry[name] & tokens
            if new_entry == entry:
                break
            entry = new_entry
        self.entry_sets = entry

    def _record(self, pc: int, tokens: FrozenSet[Token]) -> None:
        if pc in self.locksets:
            self.locksets[pc] &= tokens
        else:
            self.locksets[pc] = tokens

    def _transfer_body(self, owner: str, body,
                       tokens: FrozenSet[Token],
                       contributions: Dict[str, FrozenSet[Token]]
                       ) -> FrozenSet[Token]:
        for instr in body:
            if isinstance(instr, (ops.Read, ops.Write)):
                self._record(instr.pc, tokens)
            elif isinstance(instr, ops.Lock):
                tokens = tokens | self._lock_tokens(instr.var, owner)
            elif isinstance(instr, ops.Unlock):
                tokens = self._remove(tokens, instr.var, owner)
            elif isinstance(instr, ops.Call):
                exact = frozenset(t for t in tokens if t[0] == "x")
                if instr.func in contributions:
                    contributions[instr.func] &= exact
                else:
                    contributions[instr.func] = exact
                summary = self.summaries[instr.func]
                if summary.releases_unknown:
                    tokens = frozenset()
                elif summary.may_release:
                    tokens = frozenset(
                        t for t in tokens
                        if t[0] == "x" and t[1] not in summary.may_release
                    )
            elif isinstance(instr, ops.Loop):
                tokens = self._loop_fixpoint(owner, instr, tokens,
                                             contributions)
        return tokens

    def _loop_fixpoint(self, owner: str, loop: ops.Loop,
                       tokens: FrozenSet[Token],
                       contributions) -> FrozenSet[Token]:
        invariant = tokens
        for _ in range(_MAX_LOOP):
            out = self._transfer_body(owner, loop.body, invariant,
                                      contributions)
            refined = tokens & out
            if refined == invariant:
                break
            invariant = refined
        else:
            invariant = frozenset()
        # One pass at the stable invariant records the final per-PC sets;
        # the loop may execute zero times, so the post-state intersects
        # the skip path with the body's exit state.
        return tokens & self._transfer_body(owner, loop.body, invariant,
                                            contributions)

    # ------------------------------------------------------------------
    def _lock_tokens(self, var, owner: str) -> FrozenSet[Token]:
        out = set()
        addr = self.values.eval_value(var, owner).single_exact()
        if addr is not None:
            out.add(("x", addr))
        if isinstance(var, Param):
            out.add(("r", var.index, var.offset))
        return frozenset(out)

    def _remove(self, tokens: FrozenSet[Token], var,
                owner: str) -> FrozenSet[Token]:
        """Drop every held token the unlocked variable *may* alias."""
        fp = self.values.eval_value(var, owner)
        kept = set()
        for token in tokens:
            if token[0] == "x":
                if not fp.may_contain(token[1]):
                    kept.add(token)
            else:  # relative: same param + different offset is distinct
                if (isinstance(var, Param) and var.index == token[1]
                        and var.offset != token[2]):
                    kept.add(token)
        return frozenset(kept)
