"""Optional numpy: one import-time decision for every vectorized path.

numpy is an *optional* accelerator (``pip install .[fast]``) — nothing in
the detector pipeline requires it, and every consumer must keep working on
the pure-Python path.  This module makes the selection exactly once, at
import:

* ``np`` is the numpy module, or ``None`` when numpy is not installed;
* setting ``REPRO_NO_NUMPY=1`` in the environment forces ``np = None``
  even when numpy is installed — the escape hatch for benchmarking the
  fallback path (``make bench-smoke`` runs both) and for sidestepping a
  broken numpy build without uninstalling it;
* ``HAVE_NUMPY`` is the boolean every call site gates on.

Consumers import ``np`` from here instead of importing numpy themselves so
the override cannot be half-applied (one module vectorized, another not):
the kernel selection is global and consistent by construction.
"""

from __future__ import annotations

import os

__all__ = ["np", "HAVE_NUMPY"]

if os.environ.get("REPRO_NO_NUMPY") == "1":
    np = None
else:
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        np = None

HAVE_NUMPY = np is not None
