"""Command-line interface: run LiteRace on a workload and report races.

Examples::

    python -m repro run apache-1 --sampler TL-Ad --seed 1
    python -m repro run dryad --sampler Full --scale 0.2
    python -m repro compare firefox-render --seeds 1,2
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from . import workloads
from .analysis.tables import format_percent, format_table
from .core.literace import LiteRace, run_baseline, run_marked
from .core.samplers import SAMPLER_ORDER
from .detector.hb import HappensBeforeDetector
from .eventlog.events import SyncEvent


def _cmd_list(args) -> int:
    rows = []
    for name in workloads.names():
        spec = workloads.get(name)
        flags = []
        if spec.in_race_eval:
            flags.append("race-eval")
        if spec.in_overhead_eval:
            flags.append("overhead-eval")
        rows.append([name, spec.title, ", ".join(flags) or "-",
                     spec.description])
    print(format_table(["name", "title", "studies", "description"], rows,
                       title="Registered workloads"))
    return 0


def _cmd_run(args) -> int:
    program = workloads.build(args.workload, seed=args.seed,
                              scale=args.scale)
    baseline = run_baseline(program, seed=args.seed)
    tool = LiteRace(sampler=args.sampler, seed=args.seed,
                    num_counters=args.counters,
                    static_prune=args.static_prune)
    result = tool.run(program)
    if result.static_report is not None:
        static = result.static_report
        print(f"static pruning: {static.num_pruned} of "
              f"{static.num_memory_pcs} memory-op sites provably "
              f"race-free; {result.run.pruned_memory_ops:,} log calls "
              f"skipped this run")
    if args.log_out:
        from .eventlog.store import save_log

        written = save_log(result.log, args.log_out)
        print(f"log written to {args.log_out} ({written:,} bytes)")

    from .core.triage import render_triage

    if args.suppressions:
        from .core.suppressions import SuppressionList

        with open(args.suppressions) as handle:
            rules = SuppressionList.parse(handle.read())
        kept, suppressed = rules.split(result.report, program)
        if suppressed.num_static:
            print(f"({suppressed.num_static} known-benign race(s) "
                  f"suppressed by {args.suppressions})")
        result.report = kept

    header = (f"{program.name}: {program.num_functions} functions, "
              f"{baseline.memory_ops:,} memory ops, "
              f"{baseline.threads_created} threads — sampler "
              f"{tool.sampler.short_name}")
    print(render_triage(program, result, title=header))
    return 0


def _cmd_analyze(args) -> int:
    """Offline analysis of a saved log (§4.4: profile now, triage later)."""
    from .detector.hb import HappensBeforeDetector
    from .detector.merge import merge_thread_logs
    from .eventlog.store import load_log

    log = load_log(args.log)
    merged = merge_thread_logs(log)
    detector = HappensBeforeDetector(alloc_as_sync=not args.no_alloc_sync)
    detector.feed_all(merged.events)
    report = detector.report

    print(f"log      : {args.log} — {log.sync_count:,} sync events, "
          f"{log.memory_count:,} memory events, "
          f"{len(log.per_thread())} threads")
    if merged.inconsistencies:
        print(f"WARNING  : {merged.inconsistencies} timestamp "
              f"inconsistencies during order reconstruction")
    if not report.num_static:
        print("no data races detected")
        return 0
    print(f"{report.num_static} static data race(s) "
          f"({report.num_dynamic} dynamic):")
    for pc1, pc2, count in report.summary_rows():
        example = report.examples[(pc1, pc2)]
        print(f"  pcs ({pc1}, {pc2})  seen {count}x  "
              f"e.g. addr {example.addr:#x} between threads "
              f"{example.first_tid} and {example.second_tid}")
    return 0


def _cmd_staticpass(args) -> int:
    """Run the static race-freedom analysis; optionally cross-check it
    against the full-logging dynamic oracle (soundness gate)."""
    from .staticpass import analyze

    if args.all:
        names = list(workloads.names())
    elif args.workload:
        names = [args.workload]
    else:
        print("staticpass: name a workload or pass --all", file=sys.stderr)
        return 2

    violations = 0
    for name in names:
        program = workloads.build(name, seed=args.seed, scale=args.scale)
        report = analyze(program)
        if args.verbose or len(names) == 1:
            print(report.render())
        else:
            print(f"{name:18} {report.num_pruned:>3} of "
                  f"{report.num_memory_pcs:>3} sites prunable, "
                  f"{len(report.candidate_pairs)} candidate pair(s)")
        planted_missed = report.check_planted(program)
        for low, high in planted_missed:
            violations += 1
            print(f"  SOUNDNESS VIOLATION (planted): "
                  f"{program.symbolize(low)} <-> {program.symbolize(high)}")
        if args.check:
            oracle = LiteRace(sampler="Full", seed=args.seed).run(program)
            pruned = LiteRace(sampler="Full", seed=args.seed,
                              static_prune=True).run(program)
            lost = (oracle.report.static_races
                    - pruned.report.static_races)
            statically_missed = report.cross_check(
                oracle.report.static_races)
            for low, high in sorted(set(lost) | set(statically_missed)):
                violations += 1
                print(f"  SOUNDNESS VIOLATION (dynamic): "
                      f"{program.symbolize(low)} <-> "
                      f"{program.symbolize(high)}")
            before = oracle.run.sampled_memory_ops
            after = pruned.run.sampled_memory_ops
            cut = (1 - after / before) if before else 0.0
            print(f"  oracle races {len(oracle.report.static_races)}, "
                  f"with pruning {len(pruned.report.static_races)}; "
                  f"logged memory ops {before:,} -> {after:,} "
                  f"(-{cut:.0%})")
    if violations:
        print(f"{violations} soundness violation(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_compare(args) -> int:
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    samplers = list(SAMPLER_ORDER)
    totals = {name: [0, 0] for name in samplers}
    esrs = {name: [] for name in samplers}
    for seed in seeds:
        program = workloads.build(args.workload, seed=seed,
                                  scale=args.scale)
        marked = run_marked(program, samplers, seed=seed)
        full = HappensBeforeDetector()
        full.feed_all(marked.log.events)
        reference = full.report.static_races
        for name in samplers:
            bit = marked.harness.sampler_bit(name)
            sub = HappensBeforeDetector()
            sub.feed_all(
                e for e in marked.log.events
                if isinstance(e, SyncEvent) or (e.mask & (1 << bit))
            )
            totals[name][0] += len(sub.report.static_races & reference)
            totals[name][1] += len(reference)
            esrs[name].append(marked.log.memory_logged_by(bit)
                              / max(1, marked.log.memory_count))
    rows = []
    for name in samplers:
        found, reference = totals[name]
        esr = sum(esrs[name]) / len(esrs[name])
        rate = found / reference if reference else float("nan")
        rows.append([name, format_percent(esr), f"{found}/{reference}",
                     format_percent(rate)])
    print(format_table(
        ["sampler", "ESR", "races found", "detection rate"], rows,
        title=f"Sampler comparison on {args.workload} "
              f"(seeds {','.join(map(str, seeds))})",
    ))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="LiteRace (PLDI 2009) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered workloads")

    run_p = sub.add_parser("run", help="profile one workload and report races")
    run_p.add_argument("workload")
    run_p.add_argument("--sampler", default="TL-Ad",
                       help="sampler short name (default TL-Ad)")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--counters", type=int, default=128,
                       help="timestamp counters (default 128)")
    run_p.add_argument("--log-out", default=None,
                       help="write the event log to this file")
    run_p.add_argument("--suppressions", default=None,
                       help="file of known-benign races to filter out")
    run_p.add_argument("--static-prune", action="store_true",
                       help="skip logging for accesses the static pass "
                            "proves race-free (repro.staticpass)")

    sp_p = sub.add_parser(
        "staticpass",
        help="static race-freedom analysis over a workload's TIR")
    sp_p.add_argument("workload", nargs="?", default=None)
    sp_p.add_argument("--all", action="store_true",
                      help="analyze every registered workload")
    sp_p.add_argument("--seed", type=int, default=1)
    sp_p.add_argument("--scale", type=float, default=1.0)
    sp_p.add_argument("--check", action="store_true",
                      help="also run the full-logging dynamic oracle and "
                           "fail on any race the pruned run loses")
    sp_p.add_argument("--verbose", action="store_true",
                      help="full per-workload verdict breakdown")

    an_p = sub.add_parser(
        "analyze", help="offline analysis of a saved event log")
    an_p.add_argument("log", help="a .ltrc file written by run --log-out")
    an_p.add_argument("--no-alloc-sync", action="store_true",
                      help="disable the §4.3 allocation-as-sync rule")

    cmp_p = sub.add_parser("compare",
                           help="compare all samplers on one workload (§5.3)")
    cmp_p.add_argument("workload")
    cmp_p.add_argument("--seeds", default="1")
    cmp_p.add_argument("--scale", type=float, default=1.0)

    args = parser.parse_args(argv)
    handler = {"list": _cmd_list, "run": _cmd_run,
               "analyze": _cmd_analyze, "compare": _cmd_compare,
               "staticpass": _cmd_staticpass}
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
