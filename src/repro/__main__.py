"""Command-line interface: run LiteRace on a workload and report races.

Examples::

    python -m repro run apache-1 --sampler TL-Ad --seed 1
    python -m repro run dryad --sampler Full --scale 0.2
    python -m repro compare firefox-render --seeds 1,2
    python -m repro list

Telemetry service (fleet-style central triage)::

    python -m repro serve --unix /tmp/literace.sock --workers 4
    python -m repro submit run1.ltrc --connect unix:/tmp/literace.sock
    python -m repro run apache-1 --telemetry unix:/tmp/literace.sock
    python -m repro status --connect unix:/tmp/literace.sock --report
"""

from __future__ import annotations

import argparse
import sys

from . import workloads
from .analysis.tables import format_percent, format_table
from .core.literace import LiteRace, run_baseline, run_marked
from .core.samplers import SAMPLER_ORDER
from .detector.hb import HappensBeforeDetector
from .eventlog.events import SyncEvent


def _cmd_list(args) -> int:
    rows = []
    for name in workloads.names():
        spec = workloads.get(name)
        flags = []
        if spec.in_race_eval:
            flags.append("race-eval")
        if spec.in_overhead_eval:
            flags.append("overhead-eval")
        rows.append([name, spec.title, ", ".join(flags) or "-",
                     spec.description])
    print(format_table(["name", "title", "studies", "description"], rows,
                       title="Registered workloads"))
    return 0


def _cmd_workloads(args) -> int:
    """Enumerate the registry with eval membership and planted-race
    counts (``repro workloads list [--json]``)."""
    import json

    if args.action != "list":
        print("workloads: unknown action; try `repro workloads list`",
              file=sys.stderr)
        return 2
    rows = []
    for name in workloads.names():
        spec = workloads.get(name)
        program = spec.build(seed=1, scale=0.05)
        planted = program.planted_races or ()
        rows.append({
            "name": name,
            "title": spec.title,
            "tags": list(spec.tags),
            "race_eval": spec.in_race_eval,
            "overhead_eval": spec.in_overhead_eval,
            "planted_races": len(planted),
            "planted_keys": sum(len(p.keys) for p in planted),
        })
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    table_rows = []
    for row in rows:
        studies = [label for label, member in
                   (("race-eval", row["race_eval"]),
                    ("overhead-eval", row["overhead_eval"])) if member]
        table_rows.append([
            row["name"], ", ".join(row["tags"]) or "-",
            ", ".join(studies) or "-",
            f"{row['planted_races']} ({row['planted_keys']} keys)",
        ])
    print(format_table(["name", "tags", "studies", "planted races"],
                       table_rows, title="Workload registry"))
    return 0


def _coerce_override(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _scenario_overrides(pairs):
    """Turn ``pools.readers.threads=12`` pairs into a nested override dict."""
    overrides = {}
    for pair in pairs or ():
        path, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"--set needs key=value, got {pair!r}")
        node = overrides
        keys = path.split(".")
        for key in keys[:-1]:
            node = node.setdefault(key, {})
        node[keys[-1]] = _coerce_override(value)
    return overrides


def _cmd_scenario(args) -> int:
    """Inspect, parameterize, and check declarative scenarios."""
    import json

    from . import scenarios
    from .core.literace import LiteRace as _LiteRace

    names = scenarios.scenario_names() if args.all else [args.name]
    if not args.all and args.name is None:
        print("scenario: name a scenario or pass --all; known: "
              + ", ".join(scenarios.scenario_names()), file=sys.stderr)
        return 2

    failures = 0
    for name in names:
        spec = scenarios.scenario(name)
        if args.set:
            spec = spec.derive(_scenario_overrides(args.set))
        scale = args.scale
        if args.requests:
            scale = spec.scale_for_requests(args.requests)
        if args.json:
            print(json.dumps(spec.to_dict(), indent=2))
            continue
        program = scenarios.compile_scenario(spec, seed=args.seed,
                                             scale=scale)
        planted = program.planted_races or ()
        pools = ", ".join(f"{p.name}×{p.threads}" for p in spec.pools)
        print(f"{spec.name}: {spec.title}")
        print(f"  pools   : {pools} ({spec.total_threads} threads)")
        print(f"  regions : "
              + ", ".join(f"{r.name}[{r.kind}]" for r in spec.regions))
        print(f"  races   : "
              + ", ".join(f"{r.name}({r.rate})" for r in spec.races))
        print(f"  compiled: scale {scale:g} -> {program.num_functions} "
              f"functions, {len(planted)} planted sites "
              f"({sum(len(p.keys) for p in planted)} keys)")
        if args.check:
            expected = {key for site in planted for key in site.keys}
            result = _LiteRace(sampler="Full", seed=args.seed).run(program)
            found = result.report.static_races
            if found == expected:
                print(f"  check   : OK — Full logging finds exactly the "
                      f"{len(expected)} planted keys "
                      f"({len(result.log.events):,} events)")
            else:
                failures += 1
                print(f"  check   : FAIL — extra {sorted(found - expected)}, "
                      f"missing {sorted(expected - found)}")
    return 1 if failures else 0


def _cmd_loadgen(args) -> int:
    """Stream trace-driven scenario traffic into a telemetry server."""
    from . import scenarios
    from .scenarios.loadgen import LoadGenerator

    spec = scenarios.scenario(args.scenario)
    if args.set:
        spec = spec.derive(_scenario_overrides(args.set))
    generator = LoadGenerator(
        spec, args.connect,
        requests=args.requests,
        concurrency=args.concurrency,
        seed=args.seed,
        template_scale=args.template_scale,
        templates=args.templates,
        max_template_events=args.template_events,
        segment_events=args.segment_events,
        compress=args.compress,
    )
    generator.prepare()
    print(f"loadgen: {len(generator._templates)} template(s) of "
          + ", ".join(str(count) for _, count in generator._templates)
          + f" events; replaying against {args.connect} ...", flush=True)
    stats = generator.run()
    print(stats.summary())
    return 0 if stats.failed == 0 and stats.completed == stats.requests else 1


def _cmd_run(args) -> int:
    program = workloads.build(args.workload, seed=args.seed,
                              scale=args.scale)
    baseline = run_baseline(program, seed=args.seed)
    tool = LiteRace(sampler=args.sampler, seed=args.seed,
                    num_counters=args.counters,
                    static_prune=args.static_prune)
    sink = None
    telemetry_client = None
    if args.telemetry:
        from .service import TelemetryClient, TelemetrySink

        telemetry_client = TelemetryClient(args.telemetry)
        sink = TelemetrySink(telemetry_client,
                             name=f"{program.name}/seed{args.seed}")
    result = tool.run(program, sink=sink)
    if sink is not None:
        ack = sink.close()
        telemetry_client.close()
        print(f"telemetry: streamed {sink.events_sent:,} events in "
              f"{sink.segments_sent} segment(s) to {args.telemetry}; "
              f"server reports {ack.get('races', 0)} race(s) for this run")
    if result.static_report is not None:
        static = result.static_report
        print(f"static pruning: {static.num_pruned} of "
              f"{static.num_memory_pcs} memory-op sites provably "
              f"race-free; {result.run.pruned_memory_ops:,} log calls "
              f"skipped this run")
    if args.log_out:
        from .eventlog.store import save_log

        written = save_log(result.log, args.log_out)
        print(f"log written to {args.log_out} ({written:,} bytes)")

    from .core.triage import render_triage

    if args.suppressions:
        from .core.suppressions import SuppressionList

        with open(args.suppressions) as handle:
            rules = SuppressionList.parse(handle.read())
        kept, suppressed = rules.split(result.report, program)
        if suppressed.num_static:
            print(f"({suppressed.num_static} known-benign race(s) "
                  f"suppressed by {args.suppressions})")
        result.report = kept

    verdicts = None
    if args.validate and result.report.occurrences:
        from .validate import DirectorConfig, pairs_from_report, validate_pairs

        validation = validate_pairs(
            program, pairs_from_report(result.report),
            config=DirectorConfig(budget=args.budget, base_seed=args.seed),
            minimize=args.minimize,
            static_report=result.static_report,
            workload=args.workload, seed=args.seed, scale=args.scale,
            source="run",
        )
        verdicts = validation.verdict_map()
        if args.witness_dir:
            saved = validation.save_witnesses(args.witness_dir)
            print(f"validation: {saved} witness trace(s) written to "
                  f"{args.witness_dir}")

    header = (f"{program.name}: {program.num_functions} functions, "
              f"{baseline.memory_ops:,} memory ops, "
              f"{baseline.threads_created} threads — sampler "
              f"{tool.sampler.short_name}")
    print(render_triage(program, result, title=header, verdicts=verdicts))
    return 0


def _cmd_validate(args) -> int:
    """Actively validate candidate race pairs from a log, a telemetry
    report, or the static pass — confirm with replayable witnesses."""
    import json
    import os

    from .validate import (
        DirectorConfig,
        pairs_from_log,
        pairs_from_static,
        pairs_from_telemetry,
        validate_pairs,
    )

    source = args.source
    if source == "auto":
        if args.target in workloads.names():
            source = "static"
        elif args.target.endswith(".json"):
            source = "telemetry"
        else:
            source = "log"

    if source == "static":
        workload = args.workload or args.target
    else:
        workload = args.workload
        if not workload:
            print("validate: --workload is required to rebuild the program "
                  "the log/report came from", file=sys.stderr)
            return 2
    program = workloads.build(workload, seed=args.seed, scale=args.scale)

    static_report = None
    if source == "log":
        from .eventlog.store import load_log

        pairs = pairs_from_log(load_log(args.target))
    elif source == "telemetry":
        with open(args.target, "r", encoding="utf-8") as handle:
            pairs = pairs_from_telemetry(json.load(handle))
    elif source == "static":
        from .staticpass import analyze

        static_report = analyze(program)
        pairs = pairs_from_static(static_report)
    else:
        print(f"validate: unknown source {source!r}", file=sys.stderr)
        return 2

    if not pairs:
        print(f"validate: no candidate pairs from {source} source — "
              f"nothing to do")
        return 0
    print(f"validating {len(pairs)} candidate pair(s) from {source} "
          f"source against {program.name} "
          f"(budget {args.budget} attempt(s)/pair)...")

    report = validate_pairs(
        program, pairs,
        config=DirectorConfig(budget=args.budget, base_seed=args.seed),
        minimize=args.minimize, static_report=static_report,
        workload=workload, seed=args.seed, scale=args.scale, source=source,
    )

    witness_dir = args.witness_dir
    if witness_dir is None and args.out:
        witness_dir = os.path.splitext(args.out)[0] + "_witnesses"
    if witness_dir and report.confirmed:
        saved = report.save_witnesses(witness_dir)
        print(f"{saved} witness trace(s) written to {witness_dir}")
    if args.out:
        report.save(args.out, program)
        print(f"validation report written to {args.out}")
    if args.suppressions_out:
        rules = report.to_suppressions(program)
        with open(args.suppressions_out, "w", encoding="utf-8") as handle:
            handle.write(rules.to_text())
        print(f"{len(rules)} infeasible-pair suppression rule(s) written "
              f"to {args.suppressions_out}")

    for line in report.summary_lines(program):
        print(line)
    return 0


def _cmd_analyze(args) -> int:
    """Offline analysis of a saved log (§4.4: profile now, triage later)."""
    from .detector.flat import FlatDetector
    from .eventlog.encode import read_log_header

    with open(args.log, "rb") as handle:
        data = handle.read()
    version, sections, offset = read_log_header(data)
    detector = FlatDetector("hb", alloc_as_sync=not args.no_alloc_sync)

    if version == 2:
        # Segmented logs carry the interleaving on the wire, so the frames
        # stream straight into the batched detector as columns — no event
        # objects, no merge pass.
        from .eventlog.segment import SegmentBatcher

        sync_count = 0
        memory_count = 0
        threads = set()

        def sink(cols) -> None:
            nonlocal sync_count, memory_count
            sync_count += cols.sync_count
            memory_count += cols.memory_count
            tids = cols.tids
            threads.update(tids.tolist() if hasattr(tids, "tolist")
                           else tids)
            detector.feed_batch(cols)

        with SegmentBatcher(sink) as batcher:
            for _ in range(sections):
                _, offset = batcher.push(data, offset)
        if offset != len(data):
            raise ValueError("trailing bytes after last segment")
        num_threads = len(threads)
        inconsistencies = 0
    else:
        from .detector.merge import merge_thread_logs
        from .eventlog.encode import decode_log

        log = decode_log(data)
        merged = merge_thread_logs(log)
        detector.feed_all(merged.events)
        sync_count = log.sync_count
        memory_count = log.memory_count
        num_threads = len(log.per_thread())
        inconsistencies = merged.inconsistencies
    report = detector.report

    print(f"log      : {args.log} — {sync_count:,} sync events, "
          f"{memory_count:,} memory events, "
          f"{num_threads} threads")
    if inconsistencies:
        print(f"WARNING  : {inconsistencies} timestamp "
              f"inconsistencies during order reconstruction")
    if not report.num_static:
        print("no data races detected")
        return 0
    print(f"{report.num_static} static data race(s) "
          f"({report.num_dynamic} dynamic):")
    for pc1, pc2, count in report.summary_rows():
        example = report.examples[(pc1, pc2)]
        print(f"  pcs ({pc1}, {pc2})  seen {count}x  "
              f"e.g. addr {example.addr:#x} between threads "
              f"{example.first_tid} and {example.second_tid}")
    return 0


def _cmd_bench(args) -> int:
    """Measure detector/server throughput and write BENCH_detector.json."""
    from . import bench

    events = args.events or bench.DEFAULT_EVENTS
    repeats = args.repeats or bench.DEFAULT_REPEATS
    segment_events = args.segment_events or bench.DEFAULT_SEGMENT_EVENTS
    if args.quick:
        events = min(events, 4000)
        repeats = min(repeats, 2)
    doc = bench.run_bench(events_per_stream=events, repeats=repeats,
                          segment_events=segment_events,
                          progress=print)
    if args.out:
        bench.write_bench(doc, args.out)
        print(f"bench results written to {args.out}")
    return 0


def _cmd_staticpass(args) -> int:
    """Run the static race-freedom analysis; optionally cross-check it
    against the full-logging dynamic oracle (soundness gate)."""
    from .staticpass import analyze

    if args.all:
        names = list(workloads.names())
    elif args.workload:
        names = [args.workload]
    else:
        print("staticpass: name a workload or pass --all", file=sys.stderr)
        return 2

    violations = 0
    for name in names:
        program = workloads.build(name, seed=args.seed, scale=args.scale)
        report = analyze(program)
        if args.verbose or len(names) == 1:
            print(report.render())
        else:
            print(f"{name:18} {report.num_pruned:>3} of "
                  f"{report.num_memory_pcs:>3} sites prunable, "
                  f"{len(report.candidate_pairs)} candidate pair(s)")
        planted_missed = report.check_planted(program)
        for low, high in planted_missed:
            violations += 1
            print(f"  SOUNDNESS VIOLATION (planted): "
                  f"{program.symbolize(low)} <-> {program.symbolize(high)}")
        if args.check:
            oracle = LiteRace(sampler="Full", seed=args.seed).run(program)
            pruned = LiteRace(sampler="Full", seed=args.seed,
                              static_prune=True).run(program)
            lost = (oracle.report.static_races
                    - pruned.report.static_races)
            statically_missed = report.cross_check(
                oracle.report.static_races)
            for low, high in sorted(set(lost) | set(statically_missed)):
                violations += 1
                print(f"  SOUNDNESS VIOLATION (dynamic): "
                      f"{program.symbolize(low)} <-> "
                      f"{program.symbolize(high)}")
            before = oracle.run.sampled_memory_ops
            after = pruned.run.sampled_memory_ops
            cut = (1 - after / before) if before else 0.0
            print(f"  oracle races {len(oracle.report.static_races)}, "
                  f"with pruning {len(pruned.report.static_races)}; "
                  f"logged memory ops {before:,} -> {after:,} "
                  f"(-{cut:.0%})")
    if violations:
        print(f"{violations} soundness violation(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    """Run the race-telemetry daemon until SHUTDOWN or Ctrl-C."""
    from .service import TelemetryServer

    addresses = []
    if args.unix:
        addresses.append(f"unix:{args.unix}")
    if args.tcp:
        addresses.append(f"tcp:{args.tcp}")
    if not addresses:
        print("serve: pass --unix PATH and/or --tcp HOST:PORT",
              file=sys.stderr)
        return 2

    program = None
    if args.workload:
        program = workloads.build(args.workload, seed=args.seed,
                                  scale=args.scale)
    suppressions = None
    if args.suppressions:
        from .core.suppressions import SuppressionList

        with open(args.suppressions) as handle:
            suppressions = SuppressionList.parse(handle.read())

    server = TelemetryServer(
        addresses,
        workers=args.workers,
        shards=args.shards,
        queue_depth=args.queue_depth,
        state_dir=args.state_dir,
        program=program,
        suppressions=suppressions,
    )
    server.start()
    print(f"telemetry server listening on {', '.join(server.addresses)} — "
          f"{args.workers} worker(s), {server.num_shards} shard(s)",
          flush=True)
    server.serve_forever()
    print("telemetry server stopped")
    return 0


def _cmd_submit(args) -> int:
    """Stream a saved log and/or validation verdicts to a telemetry
    server."""
    from .service import TelemetryClient

    if not args.log and not args.verdicts:
        print("submit: pass a log file and/or --verdicts FILE",
              file=sys.stderr)
        return 2

    with TelemetryClient(args.connect) as client:
        if args.log:
            from .eventlog.store import load_log

            log = load_log(args.log)
            result = client.submit_log(
                log,
                name=args.name or args.log,
                segment_events=args.segment_events,
                compress=args.compress,
            )
            print(f"submitted {args.log}: {result.events:,} events in "
                  f"{result.segments} segment(s), {result.bytes_sent:,} "
                  f"bytes on the wire; server found {result.races} race(s) "
                  f"in this log")
            if result.merge_inconsistencies:
                print(f"WARNING  : {result.merge_inconsistencies} timestamp "
                      f"inconsistencies during order reconstruction")
        if args.verdicts:
            from .validate import ValidationReport

            report = ValidationReport.load(args.verdicts)
            rows = [{"pcs": list(entry.pair),
                     "verdict": entry.verdict.value}
                    for entry in report.verdicts]
            accepted = client.submit_verdicts(rows)
            print(f"submitted {accepted} validation verdict(s) from "
                  f"{args.verdicts}")
    return 0


def _cmd_status(args) -> int:
    """Query a running telemetry server's counters (and report)."""
    import json

    from .service import TelemetryClient

    with TelemetryClient(args.connect) as client:
        status = client.status()
        report = client.report() if args.report else None
        if args.shutdown:
            client.shutdown_server()

    if args.json:
        payload = {"status": status}
        if report is not None:
            payload["report"] = report
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print("telemetry server status")
    print("=======================")
    for key in sorted(status):
        if key != "shard_lag":
            print(f"{key:18}: {status[key]}")
    lag = status.get("shard_lag", {})
    if lag:
        rendered = ", ".join(f"s{k}={v}" for k, v in sorted(lag.items()))
        print(f"{'shard_lag':18}: {rendered}")
    if report is not None:
        print(f"\nfleet report: {report['num_static']} static race(s), "
              f"{report['num_dynamic']} dynamic occurrence(s) across "
              f"{report['clients_completed']} completed client(s)"
              + (f", {report['suppressed']} suppressed"
                 if report.get("suppressed") else ""))
        for row in report["report"]["races"]:
            symbols = row.get("symbols")
            where = (f"{symbols[0]} <-> {symbols[1]}" if symbols
                     else f"pcs ({row['pcs'][0]}, {row['pcs'][1]})")
            print(f"  {where}  seen {row['count']}x  "
                  f"e.g. addr {row['example']['addr']:#x}")
    if args.shutdown:
        print("\nshutdown requested")
    return 0


def _cmd_compare(args) -> int:
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    samplers = list(SAMPLER_ORDER)
    totals = {name: [0, 0] for name in samplers}
    esrs = {name: [] for name in samplers}
    for seed in seeds:
        program = workloads.build(args.workload, seed=seed,
                                  scale=args.scale)
        marked = run_marked(program, samplers, seed=seed)
        full = HappensBeforeDetector()
        full.feed_all(marked.log.events)
        reference = full.report.static_races
        for name in samplers:
            bit = marked.harness.sampler_bit(name)
            sub = HappensBeforeDetector()
            sub.feed_all(
                e for e in marked.log.events
                if isinstance(e, SyncEvent) or (e.mask & (1 << bit))
            )
            totals[name][0] += len(sub.report.static_races & reference)
            totals[name][1] += len(reference)
            esrs[name].append(marked.log.memory_logged_by(bit)
                              / max(1, marked.log.memory_count))
    rows = []
    for name in samplers:
        found, reference = totals[name]
        esr = sum(esrs[name]) / len(esrs[name])
        rate = found / reference if reference else float("nan")
        rows.append([name, format_percent(esr), f"{found}/{reference}",
                     format_percent(rate)])
    print(format_table(
        ["sampler", "ESR", "races found", "detection rate"], rows,
        title=f"Sampler comparison on {args.workload} "
              f"(seeds {','.join(map(str, seeds))})",
    ))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="LiteRace (PLDI 2009) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered workloads")

    wl_p = sub.add_parser(
        "workloads", help="registry tooling (workloads list [--json])")
    wl_p.add_argument("action", nargs="?", default="list",
                      help="only `list` for now")
    wl_p.add_argument("--json", action="store_true",
                      help="machine-readable output")

    scn_p = sub.add_parser(
        "scenario", help="inspect/parameterize/check declarative scenarios")
    scn_p.add_argument("name", nargs="?", default=None,
                       help="a scenario from the catalog")
    scn_p.add_argument("--all", action="store_true",
                       help="every catalog scenario")
    scn_p.add_argument("--json", action="store_true",
                       help="dump the declarative spec as JSON")
    scn_p.add_argument("--check", action="store_true",
                       help="compile and verify Full logging finds exactly "
                            "the planted race keys")
    scn_p.add_argument("--seed", type=int, default=1)
    scn_p.add_argument("--scale", type=float, default=1.0)
    scn_p.add_argument("--requests", type=int, default=None,
                       help="compile at the scale serving this many "
                            "requests (overrides --scale)")
    scn_p.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override spec fields by dotted path, e.g. "
                            "--set pools.readers.threads=12 (repeatable)")

    lg_p = sub.add_parser(
        "loadgen", help="replay trace-driven scenario traffic into a "
                        "telemetry server at volume")
    lg_p.add_argument("scenario", help="a scenario from the catalog")
    lg_p.add_argument("--connect", required=True, metavar="ADDR",
                      help="server address (unix:PATH or tcp:HOST:PORT)")
    lg_p.add_argument("--requests", type=int, default=None,
                      help="submissions to make (default: the scenario's "
                           "nominal traffic volume)")
    lg_p.add_argument("--concurrency", type=int, default=8,
                      help="concurrent submitter threads (default 8)")
    lg_p.add_argument("--seed", type=int, default=1)
    lg_p.add_argument("--templates", type=int, default=2,
                      help="distinct recorded runs to replay (default 2)")
    lg_p.add_argument("--template-scale", type=float, default=0.02,
                      help="compile scale of each template run")
    lg_p.add_argument("--template-events", type=int, default=400,
                      help="cap events per template (0 = full run)")
    lg_p.add_argument("--segment-events", type=int, default=256,
                      help="events per wire segment (default 256)")
    lg_p.add_argument("--compress", action="store_true",
                      help="zlib-compress segment payloads")
    lg_p.add_argument("--set", action="append", metavar="KEY=VALUE",
                      help="spec overrides by dotted path (see scenario)")

    run_p = sub.add_parser("run", help="profile one workload and report races")
    run_p.add_argument("workload")
    run_p.add_argument("--sampler", default="TL-Ad",
                       help="sampler short name (default TL-Ad)")
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--counters", type=int, default=128,
                       help="timestamp counters (default 128)")
    run_p.add_argument("--log-out", default=None,
                       help="write the event log to this file")
    run_p.add_argument("--suppressions", default=None,
                       help="file of known-benign races to filter out")
    run_p.add_argument("--static-prune", action="store_true",
                       help="skip logging for accesses the static pass "
                            "proves race-free (repro.staticpass)")
    run_p.add_argument("--telemetry", default=None, metavar="ADDR",
                       help="stream events live to a telemetry server "
                            "(unix:PATH or tcp:HOST:PORT)")
    run_p.add_argument("--validate", action="store_true",
                       help="actively confirm each reported race with "
                            "directed scheduling (repro.validate)")
    run_p.add_argument("--budget", type=int, default=5,
                       help="directed attempts per race pair (default 5)")
    run_p.add_argument("--minimize", action="store_true",
                       help="delta-debug confirmed witnesses to minimal "
                            "reproducers")
    run_p.add_argument("--witness-dir", default=None,
                       help="write confirmed witness traces (.ltrt) here")

    sp_p = sub.add_parser(
        "staticpass",
        help="static race-freedom analysis over a workload's TIR")
    sp_p.add_argument("workload", nargs="?", default=None)
    sp_p.add_argument("--all", action="store_true",
                      help="analyze every registered workload")
    sp_p.add_argument("--seed", type=int, default=1)
    sp_p.add_argument("--scale", type=float, default=1.0)
    sp_p.add_argument("--check", action="store_true",
                      help="also run the full-logging dynamic oracle and "
                           "fail on any race the pruned run loses")
    sp_p.add_argument("--verbose", action="store_true",
                      help="full per-workload verdict breakdown")

    val_p = sub.add_parser(
        "validate",
        help="actively validate reported races: directed scheduling "
             "confirms each candidate pair with a replayable witness")
    val_p.add_argument("target",
                       help="a .ltrc log, a telemetry report.json, or (with "
                            "--source static) a workload name")
    val_p.add_argument("--source", default="auto",
                       choices=["auto", "log", "telemetry", "static"],
                       help="where the candidate pairs come from "
                            "(default: guess from the target)")
    val_p.add_argument("--workload", default=None,
                       help="workload that produced the log/report (used to "
                            "rebuild the program)")
    val_p.add_argument("--seed", type=int, default=1)
    val_p.add_argument("--scale", type=float, default=1.0)
    val_p.add_argument("--budget", type=int, default=5,
                       help="directed attempts per pair (default 5)")
    val_p.add_argument("--minimize", action="store_true",
                       help="delta-debug confirmed witnesses to minimal "
                            "reproducers")
    val_p.add_argument("--out", default=None,
                       help="write the validation report (JSON) here")
    val_p.add_argument("--witness-dir", default=None,
                       help="write witness traces here (default: derived "
                            "from --out)")
    val_p.add_argument("--suppressions-out", default=None,
                       help="export infeasible pairs as suppression rules")

    an_p = sub.add_parser(
        "analyze", help="offline analysis of a saved event log")
    an_p.add_argument("log", help="a .ltrc file written by run --log-out")
    an_p.add_argument("--no-alloc-sync", action="store_true",
                      help="disable the §4.3 allocation-as-sync rule")

    bench_p = sub.add_parser(
        "bench", help="measure detector events/sec and server segments/sec "
                      "on fixed synthetic streams")
    bench_p.add_argument("--events", type=int, default=None,
                         help="events per stream (default 100000)")
    bench_p.add_argument("--repeats", type=int, default=None,
                         help="timing repeats, best-of (default 5)")
    bench_p.add_argument("--segment-events", type=int, default=None,
                         help="events per wire segment (default 512)")
    bench_p.add_argument("--quick", action="store_true",
                         help="tiny smoke run (schema checks, not numbers)")
    bench_p.add_argument("--out", default=None, metavar="FILE",
                         help="write BENCH_detector.json-style results here")

    cmp_p = sub.add_parser("compare",
                           help="compare all samplers on one workload (§5.3)")
    cmp_p.add_argument("workload")
    cmp_p.add_argument("--seeds", default="1")
    cmp_p.add_argument("--scale", type=float, default=1.0)

    serve_p = sub.add_parser(
        "serve", help="run the race-telemetry daemon (sharded streaming "
                      "detection over fleet-submitted logs)")
    serve_p.add_argument("--unix", default=None, metavar="PATH",
                         help="listen on this Unix socket")
    serve_p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                         help="listen on this TCP endpoint")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="detector worker processes (default 2)")
    serve_p.add_argument("--shards", type=int, default=None,
                         help="address-range shards (default: one per "
                              "worker)")
    serve_p.add_argument("--queue-depth", type=int, default=64,
                         help="bounded ingest queue length — the "
                              "backpressure knob (default 64)")
    serve_p.add_argument("--state-dir", default=None,
                         help="persist the rolling fleet report here and "
                              "reload it on restart")
    serve_p.add_argument("--workload", default=None,
                         help="symbolize report PCs against this workload's "
                              "program")
    serve_p.add_argument("--seed", type=int, default=1)
    serve_p.add_argument("--scale", type=float, default=1.0)
    serve_p.add_argument("--suppressions", default=None,
                         help="known-benign races to drop from the fleet "
                              "report (needs --workload)")

    submit_p = sub.add_parser(
        "submit", help="stream a saved event log to a telemetry server")
    submit_p.add_argument("log", nargs="?", default=None,
                          help="a .ltrc file written by run --log-out")
    submit_p.add_argument("--connect", required=True, metavar="ADDR",
                          help="server address (unix:PATH or tcp:HOST:PORT)")
    submit_p.add_argument("--name", default=None,
                          help="client name shown in server accounting")
    submit_p.add_argument("--segment-events", type=int, default=512,
                          help="events per wire segment (default 512)")
    submit_p.add_argument("--compress", action="store_true",
                          help="zlib-compress segment payloads")
    submit_p.add_argument("--verdicts", default=None, metavar="FILE",
                          help="also attach validation verdicts from a "
                               "repro validate --out report")

    status_p = sub.add_parser(
        "status", help="query a telemetry server's counters and report")
    status_p.add_argument("--connect", required=True, metavar="ADDR",
                          help="server address (unix:PATH or tcp:HOST:PORT)")
    status_p.add_argument("--report", action="store_true",
                          help="also fetch the deduped fleet race report")
    status_p.add_argument("--json", action="store_true",
                          help="machine-readable output")
    status_p.add_argument("--shutdown", action="store_true",
                          help="ask the server to shut down afterwards")

    args = parser.parse_args(argv)
    handler = {"list": _cmd_list, "run": _cmd_run,
               "analyze": _cmd_analyze, "compare": _cmd_compare,
               "staticpass": _cmd_staticpass, "serve": _cmd_serve,
               "submit": _cmd_submit, "status": _cmd_status,
               "validate": _cmd_validate, "bench": _cmd_bench,
               "workloads": _cmd_workloads, "scenario": _cmd_scenario,
               "loadgen": _cmd_loadgen}
    return handler[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
