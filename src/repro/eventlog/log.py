"""In-memory event logs produced by the profiling harness.

An :class:`EventLog` records the stream of events of one execution in true
temporal order (the order the serialized simulator produced them), which is
also what the paper's per-thread buffers flushed to disk represent.  It
supports the two views the offline detector needs:

* the *global stream* (oracle order, used by the online detector and by
  tests), and
* *per-thread streams* (what is actually written to disk), from which the
  offline detector must reconstruct a valid order using the logical
  timestamps (§4.2).

It also implements the §5.3 comparison methodology: every memory event
carries a bitmask of which evaluated samplers logged it, and
:meth:`filtered` produces the sub-log a given sampler would have written —
all sync events, plus exactly its memory events.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from .events import Event, MemoryEvent, SyncEvent, SyncKind, SyncVar

__all__ = ["EventLog"]


class EventLog:
    """An append-only log of sync and memory events."""

    def __init__(self):
        self.events: List[Event] = []
        self.sync_count = 0
        self.memory_count = 0
        #: per-sampler-bit count of logged memory events
        self._mask_counts: Dict[int, int] = {}

    # -- appends ---------------------------------------------------------
    def append_sync(self, tid: int, kind: SyncKind, var: SyncVar,
                    timestamp: int, pc: int) -> SyncEvent:
        event = SyncEvent(tid, kind, var, timestamp, pc)
        self.events.append(event)
        self.sync_count += 1
        return event

    def append_memory(self, tid: int, addr: int, pc: int, is_write: bool,
                      mask: int = 1) -> MemoryEvent:
        event = MemoryEvent(tid, addr, pc, is_write, mask)
        self.events.append(event)
        self.memory_count += 1
        bit = 0
        remaining = mask
        while remaining:
            if remaining & 1:
                self._mask_counts[bit] = self._mask_counts.get(bit, 0) + 1
            remaining >>= 1
            bit += 1
        return event

    # -- views -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def per_thread(self) -> Dict[int, List[Event]]:
        """Events grouped by thread, preserving each thread's program order."""
        streams: Dict[int, List[Event]] = {}
        for event in self.events:
            streams.setdefault(event.tid, []).append(event)
        return streams

    def filtered(self, sampler_bit: int) -> "EventLog":
        """The sub-log sampler ``sampler_bit`` would have produced.

        All synchronization events are retained (they are never sampled,
        §3.2); memory events are retained iff the sampler's bit is set in
        their mask.
        """
        sub = EventLog()
        want = 1 << sampler_bit
        for event in self.events:
            if isinstance(event, SyncEvent):
                sub.events.append(event)
                sub.sync_count += 1
            elif event.mask & want:
                sub.events.append(
                    MemoryEvent(event.tid, event.addr, event.pc,
                                event.is_write, 1)
                )
                sub.memory_count += 1
        return sub

    def memory_logged_by(self, sampler_bit: int) -> int:
        """How many memory events carry the given sampler's bit."""
        return self._mask_counts.get(sampler_bit, 0)

    def sync_vars(self) -> Tuple[SyncVar, ...]:
        """The distinct SyncVars appearing in the log, in first-seen order."""
        seen: Dict[SyncVar, None] = {}
        for event in self.events:
            if isinstance(event, SyncEvent):
                seen.setdefault(event.var)
        return tuple(seen)
