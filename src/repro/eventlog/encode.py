"""Byte-accurate binary encoding of event logs.

Log *volume* is one of the paper's headline overhead metrics (Table 5
reports MB/s for LiteRace vs full logging), so the encoding is real: events
serialize to bytes with the layout below, and sizes are measured on the
wire, not estimated.

Wire format (little-endian):

* File header: magic ``b"LTRC"`` + version u16 + thread-section count u16.
* Per-thread section: tid u32 + event count u32, then that thread's events
  in program order (tids are therefore *not* repeated per event, matching
  the paper's per-thread log buffers).
* Memory event: kind byte (0 = read, 1 = write) + addr u32 + pc u32
  — 9 bytes, the "addresses and program counter values" of §3.3.
* Sync event: kind byte (2 + SyncKind index) + var-domain byte + var-id u32
  + timestamp u32 + pc u32 — 14 bytes, the "memory addresses of the
  synchronization variables along with their timestamps".

That layout is **version 1**.  **Version 2** (the telemetry-service format,
:mod:`repro.eventlog.segment`) replaces the per-thread sections with framed
*segments* carrying the event stream in processing order, with optional
zlib compression; the file header is unchanged except that the count field
holds the number of segments.  :func:`decode_log` reads both versions;
:func:`encode_log` writes v1 by default and v2 on request.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from .events import MemoryEvent, SyncKind
from .log import EventLog

__all__ = [
    "encode_log",
    "decode_log",
    "encoded_size",
    "read_log_header",
    "MEMORY_EVENT_BYTES",
    "SYNC_EVENT_BYTES",
]

_MAGIC = b"LTRC"
_VERSION = 1
_VERSION_SEGMENTED = 2

MEMORY_EVENT_BYTES = 9
SYNC_EVENT_BYTES = 14

_HEADER = struct.Struct("<4sHH")
_SECTION = struct.Struct("<II")
_MEMORY = struct.Struct("<BII")
_SYNC = struct.Struct("<BBIII")

_KIND_CODES: Dict[SyncKind, int] = {kind: 2 + i for i, kind in enumerate(SyncKind)}
_CODE_KINDS: Dict[int, SyncKind] = {code: kind for kind, code in _KIND_CODES.items()}

_DOMAIN_CODES = {"mutex": 0, "event": 1, "thread": 2, "atomic": 3, "page": 4}
_CODE_DOMAINS = {code: name for name, code in _DOMAIN_CODES.items()}

_PC_NONE = 0xFFFF_FFFF


def _encode_pc(pc: int) -> int:
    return _PC_NONE if pc < 0 else pc


def _decode_pc(raw: int) -> int:
    return -1 if raw == _PC_NONE else raw


def encode_log(log: EventLog, *, version: int = 1,
               compress: bool = False,
               segment_events: int = 4096) -> bytes:
    """Serialize ``log`` to its on-disk representation.

    ``version=1`` (the default) writes the per-thread-section layout;
    ``compress`` is rejected there because v1 readers predate it.
    ``version=2`` writes framed segments preserving the global stream
    order, optionally zlib-compressed, ``segment_events`` per frame.
    """
    if version == _VERSION_SEGMENTED:
        from .segment import split_log

        frames = split_log(log, segment_events=segment_events,
                           compress=compress)
        if len(frames) > 0xFFFF:
            raise ValueError("too many segments for one file; "
                             "raise segment_events")
        parts = [_HEADER.pack(_MAGIC, _VERSION_SEGMENTED, len(frames))]
        parts.extend(frames)
        return b"".join(parts)
    if version != _VERSION:
        raise ValueError(f"unknown log version {version}")
    if compress:
        raise ValueError("compression requires version=2")
    streams = log.per_thread()
    parts: List[bytes] = [_HEADER.pack(_MAGIC, _VERSION, len(streams))]
    for tid in sorted(streams):
        events = streams[tid]
        parts.append(_SECTION.pack(tid, len(events)))
        for event in events:
            if isinstance(event, MemoryEvent):
                parts.append(
                    _MEMORY.pack(int(event.is_write),
                                 event.addr & 0xFFFF_FFFF,
                                 _encode_pc(event.pc))
                )
            else:
                domain, ident = event.var
                parts.append(
                    _SYNC.pack(_KIND_CODES[event.kind],
                               _DOMAIN_CODES[domain],
                               ident & 0xFFFF_FFFF,
                               event.timestamp & 0xFFFF_FFFF,
                               _encode_pc(event.pc))
                )
    return b"".join(parts)


def read_log_header(data: bytes):
    """Parse a log file header without touching the body.

    Returns ``(version, section_count, body_offset)`` — for v2 logs
    ``section_count`` is the number of segment frames starting at
    ``body_offset``, which lets columnar consumers walk the frames
    directly instead of materializing event objects via
    :func:`decode_log`.
    """
    magic, version, section_count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError("not a LiteRace log (bad magic)")
    return version, section_count, _HEADER.size


def decode_log(data: bytes) -> EventLog:
    """Parse bytes produced by :func:`encode_log` back into an event log.

    Both versions are read.  For v1, per-thread program order is preserved
    but the interleaving *between* threads is not on the wire (it never is,
    for a real tool) — the offline detector reconstructs it from
    timestamps.  For v2 the segment stream order *is* the interleaving the
    producer saw, and it survives the round trip.
    """
    magic, version, section_count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError("not a LiteRace log (bad magic)")
    if version == _VERSION_SEGMENTED:
        from .segment import decode_segment

        log = EventLog()
        offset = _HEADER.size
        for _ in range(section_count):
            events, offset = decode_segment(data, offset)
            for event in events:
                if isinstance(event, MemoryEvent):
                    log.append_memory(event.tid, event.addr, event.pc,
                                      event.is_write)
                else:
                    log.append_sync(event.tid, event.kind, event.var,
                                    event.timestamp, event.pc)
        if offset != len(data):
            raise ValueError("trailing bytes after last segment")
        return log
    if version != _VERSION:
        raise ValueError(f"unsupported log version {version}")
    offset = _HEADER.size
    log = EventLog()
    for _ in range(section_count):
        tid, count = _SECTION.unpack_from(data, offset)
        offset += _SECTION.size
        for _ in range(count):
            kind_code = data[offset]
            if kind_code < 2:
                flag, addr, pc = _MEMORY.unpack_from(data, offset)
                offset += _MEMORY.size
                log.append_memory(tid, addr, _decode_pc(pc), bool(flag))
            else:
                code, domain_code, ident, ts, pc = _SYNC.unpack_from(data, offset)
                offset += _SYNC.size
                log.append_sync(tid, _CODE_KINDS[code],
                                (_CODE_DOMAINS[domain_code], ident),
                                ts, _decode_pc(pc))
    if offset != len(data):
        raise ValueError("trailing bytes after last section")
    return log


def encoded_size(log: EventLog) -> int:
    """Size in bytes of ``log`` on the wire, without materializing it."""
    streams = log.per_thread()
    return (
        _HEADER.size
        + _SECTION.size * len(streams)
        + MEMORY_EVENT_BYTES * log.memory_count
        + SYNC_EVENT_BYTES * log.sync_count
    )
