"""Framed log *segments*: the version-2 wire format (telemetry service).

The version-1 format of :mod:`repro.eventlog.encode` serializes a finished
log as per-thread sections — the right shape for a file written once at the
end of a run, but useless for *streaming*: a client shipping events off the
machine while the run is live cannot know section sizes up front, and the
telemetry server wants to analyze events incrementally, not after the run.

A **segment** is the streaming unit: a self-delimiting frame holding a slice
of the event stream *in processing order* (each event carries its tid
explicitly, so the interleaving survives the wire — unlike v1, which only
preserves per-thread program order).  Producers guarantee that the
concatenation of a client's segments is a valid happens-before processing
order: either the true temporal order of a live run
(:class:`repro.service.client.TelemetrySink`) or the timestamp-merged order
of a saved log (:func:`repro.detector.merge.merge_thread_logs`).

Segment frame layout (little-endian)::

    magic b"LTRS" + version u16 (=2) + flags u16 + event-count u32
    + payload-length u32 + payload

where flags bit 0 selects zlib compression of the payload, and the payload
packs events back to back:

* memory event: kind u8 (0 = read, 1 = write) + tid u32 + addr u32 + pc u32
* sync event:   kind u8 (2 + SyncKind index) + var-domain u8 + tid u32
  + var-id u32 + timestamp u32 + pc u32

A version-2 *file* is the v1 file header (magic ``b"LTRC"``, version 2,
segment count in place of the section count) followed by that many segment
frames; :func:`repro.eventlog.encode.decode_log` reads both versions.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Sequence, Tuple

from .events import Event, MemoryEvent, SyncEvent
from .encode import (
    _CODE_DOMAINS,
    _CODE_KINDS,
    _DOMAIN_CODES,
    _KIND_CODES,
    _PC_NONE,
    _encode_pc,
)
from .log import EventLog

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "FLAG_ZLIB",
    "SegmentColumns",
    "encode_segment",
    "decode_segment",
    "decode_segment_columns",
    "columns_from_events",
    "segment_event_count",
    "split_log",
]

SEGMENT_MAGIC = b"LTRS"
SEGMENT_VERSION = 2

#: Flags bit 0: payload is zlib-compressed.
FLAG_ZLIB = 0x0001

_SEG_HEADER = struct.Struct("<4sHHII")
_MEMORY2 = struct.Struct("<BIII")
_SYNC2 = struct.Struct("<BBIIII")


def _pack_events(events: Sequence[Event]) -> bytes:
    parts: List[bytes] = []
    for event in events:
        if isinstance(event, MemoryEvent):
            parts.append(_MEMORY2.pack(int(event.is_write),
                                       event.tid & 0xFFFF_FFFF,
                                       event.addr & 0xFFFF_FFFF,
                                       _encode_pc(event.pc)))
        else:
            domain, ident = event.var
            parts.append(_SYNC2.pack(_KIND_CODES[event.kind],
                                     _DOMAIN_CODES[domain],
                                     event.tid & 0xFFFF_FFFF,
                                     ident & 0xFFFF_FFFF,
                                     event.timestamp & 0xFFFF_FFFF,
                                     _encode_pc(event.pc)))
    return b"".join(parts)


def encode_segment(events: Sequence[Event], *, compress: bool = False) -> bytes:
    """Serialize ``events`` (in processing order) to one segment frame."""
    payload = _pack_events(events)
    flags = 0
    if compress:
        packed = zlib.compress(payload)
        # Tiny segments can grow under zlib; keep whichever is smaller so
        # the flag always means "this payload needs inflating".
        if len(packed) < len(payload):
            payload = packed
            flags |= FLAG_ZLIB
    return _SEG_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, flags,
                            len(events), len(payload)) + payload


def segment_event_count(data: bytes, offset: int = 0) -> int:
    """Events in the segment frame at ``offset``, validating its header."""
    if len(data) - offset < _SEG_HEADER.size:
        raise ValueError("truncated segment header")
    magic, version, _, count, payload_len = _SEG_HEADER.unpack_from(data, offset)
    if magic != SEGMENT_MAGIC:
        raise ValueError("not a LiteRace segment (bad magic)")
    if version != SEGMENT_VERSION:
        raise ValueError(f"unsupported segment version {version}")
    if len(data) - offset - _SEG_HEADER.size < payload_len:
        raise ValueError("truncated segment payload")
    return count


class SegmentColumns:
    """One decoded segment as parallel columns — no per-event objects.

    The batched detector hot path (:class:`repro.detector.flat.FlatDetector`)
    consumes these directly; ``to_events()`` materializes the traditional
    object stream for the compatibility path and for tests.

    Layout: ``ops``/``tids``/``addrs``/``pcs`` are parallel lists of length
    ``count`` in stream order.  ``ops[i]`` is the wire kind code (0 = read,
    1 = write, 2+ = sync kind); for memory events ``addrs[i]`` is the
    accessed address, for sync events it is the SyncVar identifier.  The two
    sync-only columns (``sync_domains``, ``sync_timestamps``) are packed
    densely — the *j*-th sync event in the stream reads its domain code and
    timestamp at index *j* — so the memory-event common case pays for four
    list appends, not six.
    """

    __slots__ = ("count", "ops", "tids", "addrs", "pcs",
                 "sync_domains", "sync_timestamps",
                 "memory_count", "sync_count")

    def __init__(self):
        self.count = 0
        self.ops: List[int] = []
        self.tids: List[int] = []
        self.addrs: List[int] = []
        self.pcs: List[int] = []
        self.sync_domains: List[int] = []
        self.sync_timestamps: List[int] = []
        self.memory_count = 0
        self.sync_count = 0

    def to_events(self) -> List[Event]:
        """Materialize the columns back into the object event stream."""
        events: List[Event] = []
        append = events.append
        domains = self.sync_domains
        timestamps = self.sync_timestamps
        j = 0
        for i in range(self.count):
            op = self.ops[i]
            if op < 2:
                append(MemoryEvent(self.tids[i], self.addrs[i],
                                   self.pcs[i], bool(op)))
            else:
                domain = domains[j]
                append(SyncEvent(self.tids[i], _CODE_KINDS[op],
                                 (_CODE_DOMAINS.get(domain, domain),
                                  self.addrs[i]),
                                 timestamps[j], self.pcs[i]))
                j += 1
        return events


def columns_from_events(events: Sequence[Event]) -> SegmentColumns:
    """Convert an in-memory event stream into :class:`SegmentColumns`.

    This is the entry ramp into the batched detector path for producers
    that still hold object streams (saved logs, the per-event ``feed``
    compatibility shims).  Unknown SyncVar domains (possible only for
    in-memory events, never on the wire) pass through unchanged.
    """
    cols = SegmentColumns()
    ops = cols.ops
    tids = cols.tids
    addrs = cols.addrs
    pcs = cols.pcs
    domains = cols.sync_domains
    timestamps = cols.sync_timestamps
    n = 0
    syncs = 0
    for event in events:
        if isinstance(event, MemoryEvent):
            ops.append(1 if event.is_write else 0)
            tids.append(event.tid)
            addrs.append(event.addr)
            pcs.append(event.pc)
        else:
            domain, ident = event.var
            ops.append(_KIND_CODES[event.kind])
            tids.append(event.tid)
            addrs.append(ident)
            pcs.append(event.pc)
            domains.append(_DOMAIN_CODES.get(domain, domain))
            timestamps.append(event.timestamp)
            syncs += 1
        n += 1
    cols.count = n
    cols.sync_count = syncs
    cols.memory_count = n - syncs
    return cols


#: Highest valid sync kind code on the wire (codes are 2 + SyncKind index).
_MAX_KIND_CODE = max(_CODE_KINDS)


def decode_segment_columns(data: bytes,
                           offset: int = 0) -> Tuple[SegmentColumns, int]:
    """Parse one segment frame at ``offset`` into columns.

    This is the hot decode path: one pass over the payload appending plain
    ints into parallel lists, with no event-object or enum allocation.
    Corrupt payloads raise (bad kind/domain codes, trailing bytes, short
    records) — a poisoned segment must never silently mis-detect.
    """
    count = segment_event_count(data, offset)
    _, _, flags, _, payload_len = _SEG_HEADER.unpack_from(data, offset)
    start = offset + _SEG_HEADER.size
    payload = bytes(data[start:start + payload_len])
    if flags & FLAG_ZLIB:
        payload = zlib.decompress(payload)
    cols = SegmentColumns()
    ops = cols.ops
    tids = cols.tids
    addrs = cols.addrs
    pcs = cols.pcs
    domains = cols.sync_domains
    timestamps = cols.sync_timestamps
    memory_unpack = _MEMORY2.unpack_from
    sync_unpack = _SYNC2.unpack_from
    memory_size = _MEMORY2.size
    sync_size = _SYNC2.size
    payload_end = len(payload)
    pos = 0
    syncs = 0
    for _ in range(count):
        if pos >= payload_end:
            raise ValueError("truncated event in segment payload")
        kind_code = payload[pos]
        if kind_code < 2:
            flag, tid, addr, pc = memory_unpack(payload, pos)
            pos += memory_size
            ops.append(flag)
            tids.append(tid)
            addrs.append(addr)
            pcs.append(-1 if pc == _PC_NONE else pc)
        else:
            code, domain_code, tid, ident, ts, pc = sync_unpack(payload, pos)
            pos += sync_size
            if code > _MAX_KIND_CODE:
                raise ValueError(f"bad sync kind code {code}")
            if domain_code not in _CODE_DOMAINS:
                raise ValueError(f"bad sync-var domain code {domain_code}")
            ops.append(code)
            tids.append(tid)
            addrs.append(ident)
            pcs.append(-1 if pc == _PC_NONE else pc)
            domains.append(domain_code)
            timestamps.append(ts)
            syncs += 1
    if pos != payload_end:
        raise ValueError("trailing bytes in segment payload")
    cols.count = count
    cols.sync_count = syncs
    cols.memory_count = count - syncs
    return cols, start + payload_len


def decode_segment(data: bytes, offset: int = 0) -> Tuple[List[Event], int]:
    """Parse one segment frame at ``offset``.

    Returns the decoded events (stream order, tids preserved) and the offset
    of the first byte after the frame.  Implemented on top of
    :func:`decode_segment_columns` so the object path and the columnar hot
    path can never drift apart.
    """
    cols, end = decode_segment_columns(data, offset)
    return cols.to_events(), end


def split_log(log: EventLog, *, segment_events: int = 512,
              compress: bool = False) -> List[bytes]:
    """Chop ``log``'s global event stream into encoded segment frames.

    The stream order is preserved across the segment boundary, so feeding
    the decoded segments to a detector in order replays the log exactly.
    """
    if segment_events < 1:
        raise ValueError("segment_events must be >= 1")
    frames: List[bytes] = []
    events = log.events
    for start in range(0, len(events), segment_events):
        frames.append(encode_segment(events[start:start + segment_events],
                                     compress=compress))
    return frames
