"""Framed log *segments*: the version-2 wire format (telemetry service).

The version-1 format of :mod:`repro.eventlog.encode` serializes a finished
log as per-thread sections — the right shape for a file written once at the
end of a run, but useless for *streaming*: a client shipping events off the
machine while the run is live cannot know section sizes up front, and the
telemetry server wants to analyze events incrementally, not after the run.

A **segment** is the streaming unit: a self-delimiting frame holding a slice
of the event stream *in processing order* (each event carries its tid
explicitly, so the interleaving survives the wire — unlike v1, which only
preserves per-thread program order).  Producers guarantee that the
concatenation of a client's segments is a valid happens-before processing
order: either the true temporal order of a live run
(:class:`repro.service.client.TelemetrySink`) or the timestamp-merged order
of a saved log (:func:`repro.detector.merge.merge_thread_logs`).

Segment frame layout (little-endian)::

    magic b"LTRS" + version u16 (=2) + flags u16 + event-count u32
    + payload-length u32 + payload

where flags bit 0 selects zlib compression of the payload, and the payload
packs events back to back:

* memory event: kind u8 (0 = read, 1 = write) + tid u32 + addr u32 + pc u32
* sync event:   kind u8 (2 + SyncKind index) + var-domain u8 + tid u32
  + var-id u32 + timestamp u32 + pc u32

A version-2 *file* is the v1 file header (magic ``b"LTRC"``, version 2,
segment count in place of the section count) followed by that many segment
frames; :func:`repro.eventlog.encode.decode_log` reads both versions.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Sequence, Tuple

from .events import Event, MemoryEvent, SyncEvent
from .encode import (
    _CODE_DOMAINS,
    _CODE_KINDS,
    _DOMAIN_CODES,
    _KIND_CODES,
    _decode_pc,
    _encode_pc,
)
from .log import EventLog

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "FLAG_ZLIB",
    "encode_segment",
    "decode_segment",
    "segment_event_count",
    "split_log",
]

SEGMENT_MAGIC = b"LTRS"
SEGMENT_VERSION = 2

#: Flags bit 0: payload is zlib-compressed.
FLAG_ZLIB = 0x0001

_SEG_HEADER = struct.Struct("<4sHHII")
_MEMORY2 = struct.Struct("<BIII")
_SYNC2 = struct.Struct("<BBIIII")


def _pack_events(events: Sequence[Event]) -> bytes:
    parts: List[bytes] = []
    for event in events:
        if isinstance(event, MemoryEvent):
            parts.append(_MEMORY2.pack(int(event.is_write),
                                       event.tid & 0xFFFF_FFFF,
                                       event.addr & 0xFFFF_FFFF,
                                       _encode_pc(event.pc)))
        else:
            domain, ident = event.var
            parts.append(_SYNC2.pack(_KIND_CODES[event.kind],
                                     _DOMAIN_CODES[domain],
                                     event.tid & 0xFFFF_FFFF,
                                     ident & 0xFFFF_FFFF,
                                     event.timestamp & 0xFFFF_FFFF,
                                     _encode_pc(event.pc)))
    return b"".join(parts)


def encode_segment(events: Sequence[Event], *, compress: bool = False) -> bytes:
    """Serialize ``events`` (in processing order) to one segment frame."""
    payload = _pack_events(events)
    flags = 0
    if compress:
        packed = zlib.compress(payload)
        # Tiny segments can grow under zlib; keep whichever is smaller so
        # the flag always means "this payload needs inflating".
        if len(packed) < len(payload):
            payload = packed
            flags |= FLAG_ZLIB
    return _SEG_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, flags,
                            len(events), len(payload)) + payload


def segment_event_count(data: bytes, offset: int = 0) -> int:
    """Events in the segment frame at ``offset``, validating its header."""
    if len(data) - offset < _SEG_HEADER.size:
        raise ValueError("truncated segment header")
    magic, version, _, count, payload_len = _SEG_HEADER.unpack_from(data, offset)
    if magic != SEGMENT_MAGIC:
        raise ValueError("not a LiteRace segment (bad magic)")
    if version != SEGMENT_VERSION:
        raise ValueError(f"unsupported segment version {version}")
    if len(data) - offset - _SEG_HEADER.size < payload_len:
        raise ValueError("truncated segment payload")
    return count


def decode_segment(data: bytes, offset: int = 0) -> Tuple[List[Event], int]:
    """Parse one segment frame at ``offset``.

    Returns the decoded events (stream order, tids preserved) and the offset
    of the first byte after the frame.
    """
    count = segment_event_count(data, offset)
    _, _, flags, _, payload_len = _SEG_HEADER.unpack_from(data, offset)
    start = offset + _SEG_HEADER.size
    payload = bytes(data[start:start + payload_len])
    if flags & FLAG_ZLIB:
        payload = zlib.decompress(payload)
    events: List[Event] = []
    pos = 0
    for _ in range(count):
        kind_code = payload[pos]
        if kind_code < 2:
            flag, tid, addr, pc = _MEMORY2.unpack_from(payload, pos)
            pos += _MEMORY2.size
            events.append(MemoryEvent(tid, addr, _decode_pc(pc), bool(flag)))
        else:
            code, domain_code, tid, ident, ts, pc = _SYNC2.unpack_from(payload, pos)
            pos += _SYNC2.size
            events.append(SyncEvent(tid, _CODE_KINDS[code],
                                    (_CODE_DOMAINS[domain_code], ident),
                                    ts, _decode_pc(pc)))
    if pos != len(payload):
        raise ValueError("trailing bytes in segment payload")
    return events, start + payload_len


def split_log(log: EventLog, *, segment_events: int = 512,
              compress: bool = False) -> List[bytes]:
    """Chop ``log``'s global event stream into encoded segment frames.

    The stream order is preserved across the segment boundary, so feeding
    the decoded segments to a detector in order replays the log exactly.
    """
    if segment_events < 1:
        raise ValueError("segment_events must be >= 1")
    frames: List[bytes] = []
    events = log.events
    for start in range(0, len(events), segment_events):
        frames.append(encode_segment(events[start:start + segment_events],
                                     compress=compress))
    return frames
