"""Framed log *segments*: the version-2 wire format (telemetry service).

The version-1 format of :mod:`repro.eventlog.encode` serializes a finished
log as per-thread sections — the right shape for a file written once at the
end of a run, but useless for *streaming*: a client shipping events off the
machine while the run is live cannot know section sizes up front, and the
telemetry server wants to analyze events incrementally, not after the run.

A **segment** is the streaming unit: a self-delimiting frame holding a slice
of the event stream *in processing order* (each event carries its tid
explicitly, so the interleaving survives the wire — unlike v1, which only
preserves per-thread program order).  Producers guarantee that the
concatenation of a client's segments is a valid happens-before processing
order: either the true temporal order of a live run
(:class:`repro.service.client.TelemetrySink`) or the timestamp-merged order
of a saved log (:func:`repro.detector.merge.merge_thread_logs`).

Segment frame layout (little-endian)::

    magic b"LTRS" + version u16 (=2) + flags u16 + event-count u32
    + payload-length u32 + payload

where flags bit 0 selects zlib compression of the payload, and the payload
packs events back to back:

* memory event: kind u8 (0 = read, 1 = write) + tid u32 + addr u32 + pc u32
* sync event:   kind u8 (2 + SyncKind index) + var-domain u8 + tid u32
  + var-id u32 + timestamp u32 + pc u32

A version-2 *file* is the v1 file header (magic ``b"LTRC"``, version 2,
segment count in place of the section count) followed by that many segment
frames; :func:`repro.eventlog.encode.decode_log` reads both versions.
"""

from __future__ import annotations

import re
import struct
import zlib
from typing import List, Sequence, Tuple

from .events import Event, MemoryEvent, SyncEvent
from .encode import (
    _CODE_DOMAINS,
    _CODE_KINDS,
    _DOMAIN_CODES,
    _KIND_CODES,
    _PC_NONE,
    _encode_pc,
)
from .log import EventLog
from ..numpy_support import HAVE_NUMPY, np

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "FLAG_ZLIB",
    "DEFAULT_BATCH_EVENTS",
    "SegmentColumns",
    "NumpySegmentColumns",
    "ColumnBatcher",
    "SegmentBatcher",
    "concat_columns",
    "encode_segment",
    "decode_segment",
    "decode_segment_columns",
    "decode_segment_columns_numpy",
    "decode_segment_columns_fast",
    "columns_from_events",
    "segment_event_count",
    "split_log",
]

SEGMENT_MAGIC = b"LTRS"
SEGMENT_VERSION = 2

#: Flags bit 0: payload is zlib-compressed.
FLAG_ZLIB = 0x0001

_SEG_HEADER = struct.Struct("<4sHHII")
_MEMORY2 = struct.Struct("<BIII")
_SYNC2 = struct.Struct("<BBIIII")


def _pack_events(events: Sequence[Event]) -> bytes:
    parts: List[bytes] = []
    for event in events:
        if isinstance(event, MemoryEvent):
            parts.append(_MEMORY2.pack(int(event.is_write),
                                       event.tid & 0xFFFF_FFFF,
                                       event.addr & 0xFFFF_FFFF,
                                       _encode_pc(event.pc)))
        else:
            domain, ident = event.var
            parts.append(_SYNC2.pack(_KIND_CODES[event.kind],
                                     _DOMAIN_CODES[domain],
                                     event.tid & 0xFFFF_FFFF,
                                     ident & 0xFFFF_FFFF,
                                     event.timestamp & 0xFFFF_FFFF,
                                     _encode_pc(event.pc)))
    return b"".join(parts)


def encode_segment(events: Sequence[Event], *, compress: bool = False) -> bytes:
    """Serialize ``events`` (in processing order) to one segment frame."""
    payload = _pack_events(events)
    flags = 0
    if compress:
        packed = zlib.compress(payload)
        # Tiny segments can grow under zlib; keep whichever is smaller so
        # the flag always means "this payload needs inflating".
        if len(packed) < len(payload):
            payload = packed
            flags |= FLAG_ZLIB
    return _SEG_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, flags,
                            len(events), len(payload)) + payload


def segment_event_count(data: bytes, offset: int = 0) -> int:
    """Events in the segment frame at ``offset``, validating its header."""
    if len(data) - offset < _SEG_HEADER.size:
        raise ValueError("truncated segment header")
    magic, version, _, count, payload_len = _SEG_HEADER.unpack_from(data, offset)
    if magic != SEGMENT_MAGIC:
        raise ValueError("not a LiteRace segment (bad magic)")
    if version != SEGMENT_VERSION:
        raise ValueError(f"unsupported segment version {version}")
    if len(data) - offset - _SEG_HEADER.size < payload_len:
        raise ValueError("truncated segment payload")
    return count


class SegmentColumns:
    """One decoded segment as parallel columns — no per-event objects.

    The batched detector hot path (:class:`repro.detector.flat.FlatDetector`)
    consumes these directly; ``to_events()`` materializes the traditional
    object stream for the compatibility path and for tests.

    Layout: ``ops``/``tids``/``addrs``/``pcs`` are parallel lists of length
    ``count`` in stream order.  ``ops[i]`` is the wire kind code (0 = read,
    1 = write, 2+ = sync kind); for memory events ``addrs[i]`` is the
    accessed address, for sync events it is the SyncVar identifier.  The two
    sync-only columns (``sync_domains``, ``sync_timestamps``) are packed
    densely — the *j*-th sync event in the stream reads its domain code and
    timestamp at index *j* — so the memory-event common case pays for four
    list appends, not six.
    """

    __slots__ = ("count", "ops", "tids", "addrs", "pcs",
                 "sync_domains", "sync_timestamps",
                 "memory_count", "sync_count")

    def __init__(self):
        self.count = 0
        self.ops: List[int] = []
        self.tids: List[int] = []
        self.addrs: List[int] = []
        self.pcs: List[int] = []
        self.sync_domains: List[int] = []
        self.sync_timestamps: List[int] = []
        self.memory_count = 0
        self.sync_count = 0

    def to_events(self) -> List[Event]:
        """Materialize the columns back into the object event stream."""
        events: List[Event] = []
        append = events.append
        domains = self.sync_domains
        timestamps = self.sync_timestamps
        j = 0
        for i in range(self.count):
            op = self.ops[i]
            if op < 2:
                append(MemoryEvent(self.tids[i], self.addrs[i],
                                   self.pcs[i], bool(op)))
            else:
                domain = domains[j]
                append(SyncEvent(self.tids[i], _CODE_KINDS[op],
                                 (_CODE_DOMAINS.get(domain, domain),
                                  self.addrs[i]),
                                 timestamps[j], self.pcs[i]))
                j += 1
        return events


def columns_from_events(events: Sequence[Event]) -> SegmentColumns:
    """Convert an in-memory event stream into :class:`SegmentColumns`.

    This is the entry ramp into the batched detector path for producers
    that still hold object streams (saved logs, the per-event ``feed``
    compatibility shims).  Unknown SyncVar domains (possible only for
    in-memory events, never on the wire) pass through unchanged.
    """
    cols = SegmentColumns()
    ops = cols.ops
    tids = cols.tids
    addrs = cols.addrs
    pcs = cols.pcs
    domains = cols.sync_domains
    timestamps = cols.sync_timestamps
    n = 0
    syncs = 0
    for event in events:
        if isinstance(event, MemoryEvent):
            ops.append(1 if event.is_write else 0)
            tids.append(event.tid)
            addrs.append(event.addr)
            pcs.append(event.pc)
        else:
            domain, ident = event.var
            ops.append(_KIND_CODES[event.kind])
            tids.append(event.tid)
            addrs.append(ident)
            pcs.append(event.pc)
            domains.append(_DOMAIN_CODES.get(domain, domain))
            timestamps.append(event.timestamp)
            syncs += 1
        n += 1
    cols.count = n
    cols.sync_count = syncs
    cols.memory_count = n - syncs
    return cols


#: Highest valid sync kind code on the wire (codes are 2 + SyncKind index).
_MAX_KIND_CODE = max(_CODE_KINDS)


def decode_segment_columns(data: bytes,
                           offset: int = 0) -> Tuple[SegmentColumns, int]:
    """Parse one segment frame at ``offset`` into columns.

    This is the hot decode path: one pass over the payload appending plain
    ints into parallel lists, with no event-object or enum allocation.
    Corrupt payloads raise (bad kind/domain codes, trailing bytes, short
    records) — a poisoned segment must never silently mis-detect.
    """
    count = segment_event_count(data, offset)
    _, _, flags, _, payload_len = _SEG_HEADER.unpack_from(data, offset)
    start = offset + _SEG_HEADER.size
    payload = bytes(data[start:start + payload_len])
    if flags & FLAG_ZLIB:
        payload = zlib.decompress(payload)
    return _decode_payload_list(payload, count), start + payload_len


def _decode_payload_list(payload: bytes, count: int) -> SegmentColumns:
    """One validating pass over a raw payload of ``count`` records."""
    cols = SegmentColumns()
    ops = cols.ops
    tids = cols.tids
    addrs = cols.addrs
    pcs = cols.pcs
    domains = cols.sync_domains
    timestamps = cols.sync_timestamps
    memory_unpack = _MEMORY2.unpack_from
    sync_unpack = _SYNC2.unpack_from
    memory_size = _MEMORY2.size
    sync_size = _SYNC2.size
    payload_end = len(payload)
    pos = 0
    syncs = 0
    for _ in range(count):
        if pos >= payload_end:
            raise ValueError("truncated event in segment payload")
        kind_code = payload[pos]
        if kind_code < 2:
            flag, tid, addr, pc = memory_unpack(payload, pos)
            pos += memory_size
            ops.append(flag)
            tids.append(tid)
            addrs.append(addr)
            pcs.append(-1 if pc == _PC_NONE else pc)
        else:
            code, domain_code, tid, ident, ts, pc = sync_unpack(payload, pos)
            pos += sync_size
            if code > _MAX_KIND_CODE:
                raise ValueError(f"bad sync kind code {code}")
            if domain_code not in _CODE_DOMAINS:
                raise ValueError(f"bad sync-var domain code {domain_code}")
            ops.append(code)
            tids.append(tid)
            addrs.append(ident)
            pcs.append(-1 if pc == _PC_NONE else pc)
            domains.append(domain_code)
            timestamps.append(ts)
            syncs += 1
    if pos != payload_end:
        raise ValueError("trailing bytes in segment payload")
    cols.count = count
    cols.sync_count = syncs
    cols.memory_count = count - syncs
    return cols


def decode_segment(data: bytes, offset: int = 0) -> Tuple[List[Event], int]:
    """Parse one segment frame at ``offset``.

    Returns the decoded events (stream order, tids preserved) and the offset
    of the first byte after the frame.  Implemented on top of
    :func:`decode_segment_columns` so the object path and the columnar hot
    path can never drift apart.
    """
    cols, end = decode_segment_columns(data, offset)
    return cols.to_events(), end


# -- numpy-backed columns ----------------------------------------------------

class NumpySegmentColumns(SegmentColumns):
    """:class:`SegmentColumns` whose parallel columns are int64 ndarrays.

    Shape-compatible with the list-backed base (same slots, same counts),
    so any consumer that only reads counts or iterates works unchanged; the
    vectorized pre-filter kernel (:mod:`repro.detector.vectorized`) wants
    exactly these arrays.  ``as_list_columns`` converts back for consumers
    that index with Python-int semantics (the pure slow loop keys dicts
    with column values, and ``np.int64`` keys would hash-equal but compare
    slower).
    """

    __slots__ = ()

    def as_list_columns(self) -> SegmentColumns:
        cols = SegmentColumns()
        cols.count = self.count
        cols.ops = self.ops.tolist()
        cols.tids = self.tids.tolist()
        cols.addrs = self.addrs.tolist()
        cols.pcs = self.pcs.tolist()
        cols.sync_domains = (self.sync_domains.tolist()
                             if not isinstance(self.sync_domains, list)
                             else self.sync_domains)
        cols.sync_timestamps = (self.sync_timestamps.tolist()
                                if not isinstance(self.sync_timestamps, list)
                                else self.sync_timestamps)
        cols.memory_count = self.memory_count
        cols.sync_count = self.sync_count
        return cols

    def to_events(self) -> List[Event]:
        return self.as_list_columns().to_events()


if HAVE_NUMPY:
    # Wire records are packed (no padding), so structured dtypes with
    # explicit offsets read them zero-copy straight out of the payload.
    _MEM_DTYPE = np.dtype({
        "names": ["kind", "tid", "addr", "pc"],
        "formats": ["u1", "<u4", "<u4", "<u4"],
        "offsets": [0, 1, 5, 9], "itemsize": _MEMORY2.size})
    _SYNC_DTYPE = np.dtype({
        "names": ["kind", "domain", "tid", "ident", "ts", "pc"],
        "formats": ["u1", "u1", "<u4", "<u4", "<u4", "<u4"],
        "offsets": [0, 1, 2, 6, 10, 14], "itemsize": _SYNC2.size})
    _DOMAIN_OK = np.zeros(256, dtype=bool)
    _DOMAIN_OK[list(_CODE_DOMAINS)] = True
    _MEM_ROW = np.arange(_MEMORY2.size, dtype=np.int64)
    _SYNC_ROW = np.arange(_SYNC2.size, dtype=np.int64)
    # One alternation per record shape, each greedily repeated: every match
    # is a maximal run of same-shape records, so the tokenizer does the
    # boundary hunt in C no matter how the shapes interleave.  A kind byte
    # outside both classes simply stops the match — caught as corruption.
    _RUN_RE = re.compile(
        (rb"(?s)(?:[\x00\x01].{%d})+|(?:[%s-%s].{%d})+"
         % (_MEMORY2.size - 1, re.escape(bytes([2])),
            re.escape(bytes([_MAX_KIND_CODE])), _SYNC2.size - 1)))


def _np_check_sync(recs):
    kinds = recs["kind"]
    if (kinds > _MAX_KIND_CODE).any():
        bad = int(kinds[kinds > _MAX_KIND_CODE][0])
        raise ValueError(f"bad sync kind code {bad}")
    domains = recs["domain"]
    if not _DOMAIN_OK[domains].all():
        bad = int(domains[~_DOMAIN_OK[domains]][0])
        raise ValueError(f"bad sync-var domain code {bad}")


def decode_segment_columns_numpy(
        data: bytes, offset: int = 0) -> Tuple[NumpySegmentColumns, int]:
    """Parse one segment frame into numpy-backed columns.

    Same validation contract as :func:`decode_segment_columns` (corrupt
    payloads raise ``ValueError``), same column values, but the columns
    come back as int64 ndarrays built from ``np.frombuffer`` views over
    the payload instead of a per-event Python loop.

    Record sizes differ (memory 13B, sync 18B), so the record boundaries
    are data-dependent; two strategies cover the density spectrum:

    * no sync events — one ``frombuffer`` over the whole payload;
    * mixed — a compiled regex tokenizes the payload into maximal
      homogeneous *runs* (both record shapes are fixed-width, so one
      alternation matches a whole run at C speed), per-record offsets
      come from a ragged-range cumsum over the run table, and two
      fancy-indexed gathers decode both record types at once.
    """
    count = segment_event_count(data, offset)
    _, _, flags, _, payload_len = _SEG_HEADER.unpack_from(data, offset)
    start = offset + _SEG_HEADER.size
    payload = bytes(data[start:start + payload_len])
    end = start + payload_len
    if flags & FLAG_ZLIB:
        payload = zlib.decompress(payload)
    plen = len(payload)
    msize = _MEMORY2.size
    ssize = _SYNC2.size
    # count = m + s and plen = 13m + 18s pin the sync count up front; any
    # inconsistency is a corrupt frame.
    extra = plen - msize * count
    if extra < 0 or extra % (ssize - msize):
        raise ValueError("truncated event in segment payload")
    syncs = extra // (ssize - msize)
    if syncs > count:
        raise ValueError("trailing bytes in segment payload")
    if syncs * 8 > count:
        # Sync-dense frames fragment into tiny runs where every vectorized
        # strategy drowns in per-run overhead; the list decoder's single
        # Python pass is the better tool, and the detector kernel declines
        # sync-dominated batches anyway.
        return decode_segment_columns(data, offset)
    return _np_decode_payload(payload, count, syncs), end


def _np_decode_payload(payload, count, syncs):
    """Decode one well-sized payload (sizes pre-validated) into columns.

    The payload need not come from a single frame: frame payloads are
    plain record streams, so concatenating several and decoding once is
    equivalent to decoding each — that is how :class:`SegmentBatcher`
    amortizes the fixed numpy call overhead across a whole batch.
    """
    msize = _MEMORY2.size
    cols = NumpySegmentColumns()
    cols.count = count
    cols.sync_count = syncs
    cols.memory_count = count - syncs
    if count == 0:
        cols.ops = np.empty(0, np.int64)
        cols.tids = np.empty(0, np.int64)
        cols.addrs = np.empty(0, np.int64)
        cols.pcs = np.empty(0, np.int64)
        cols.sync_domains = np.empty(0, np.int64)
        cols.sync_timestamps = np.empty(0, np.int64)
        return cols

    u8 = np.frombuffer(payload, np.uint8)
    if syncs == 0:
        kinds = u8[::msize]
        if (kinds < 2).all():
            recs = np.frombuffer(payload, _MEM_DTYPE, count=count)
            cols.ops = kinds.astype(np.int64)
            cols.tids = recs["tid"].astype(np.int64)
            cols.addrs = recs["addr"].astype(np.int64)
            pcs = recs["pc"].astype(np.int64)
            pcs[pcs == _PC_NONE] = -1
            cols.pcs = pcs
            cols.sync_domains = np.empty(0, np.int64)
            cols.sync_timestamps = np.empty(0, np.int64)
            return cols
        # Sizes said all-memory but a kind byte disagrees: corrupt frame.
        raise ValueError("truncated event in segment payload")

    cols.ops = np.empty(count, np.int64)
    cols.tids = np.empty(count, np.int64)
    cols.addrs = np.empty(count, np.int64)
    cols.pcs = np.empty(count, np.int64)
    cols.sync_domains = np.empty(syncs, np.int64)
    cols.sync_timestamps = np.empty(syncs, np.int64)

    _np_decode_from_runs(cols, u8, _collect_runs(payload), count, syncs)
    pcs = cols.pcs
    pcs[pcs == _PC_NONE] = -1
    return cols


def _collect_runs(payload):
    """Run table (is_mem list, record-count list) via C-speed tokenization."""
    msize = _MEMORY2.size
    ssize = _SYNC2.size
    kinds: List[bool] = []
    counts: List[int] = []
    pos = 0
    for match in _RUN_RE.finditer(payload):
        begin, end = match.span()
        if begin != pos:
            break  # an unparseable byte stopped the tokenizer at ``pos``
        if payload[begin] < 2:
            kinds.append(True)
            counts.append((end - begin) // msize)
        else:
            kinds.append(False)
            counts.append((end - begin) // ssize)
        pos = end
    if pos != len(payload):
        raise ValueError("truncated event in segment payload")
    return kinds, counts


def _np_decode_from_runs(cols, u8, runs, count, syncs):
    """Vectorized decode given the run table.

    Expanding the run table to a byte-level type mask (one ``np.repeat``)
    compacts each record shape into its own contiguous buffer, where a
    structured view plus per-field contiguous casts replace the slow
    scattered-record gathers — O(payload) array ops however fragmented
    the interleaving is.
    """
    run_is_mem = np.array(runs[0], bool)
    run_nrec = np.array(runs[1], np.int64)
    total_m = int(run_nrec[run_is_mem].sum())
    total_s = int(run_nrec.sum()) - total_m
    # 13m + 18s = payload length holds for other (m, s) splits too, so a
    # clean tokenization can still contradict the declared sync count.
    if total_s != syncs or total_m + total_s != count:
        raise ValueError("truncated event in segment payload")
    byte_len = run_nrec * np.where(run_is_mem, _MEMORY2.size, _SYNC2.size)
    mem_byte = np.repeat(run_is_mem, byte_len)
    rec_is_mem = np.repeat(run_is_mem, run_nrec)
    mpos = np.flatnonzero(rec_is_mem)
    spos = np.flatnonzero(~rec_is_mem)
    if total_m:
        mrecs = u8[mem_byte].view(_MEM_DTYPE)
        cols.ops[mpos] = mrecs["kind"]
        cols.tids[mpos] = mrecs["tid"].astype(np.int64)
        cols.addrs[mpos] = mrecs["addr"].astype(np.int64)
        cols.pcs[mpos] = mrecs["pc"].astype(np.int64)
    if total_s:
        srecs = u8[~mem_byte].view(_SYNC_DTYPE)
        _np_check_sync(srecs)
        cols.ops[spos] = srecs["kind"]
        cols.tids[spos] = srecs["tid"].astype(np.int64)
        cols.addrs[spos] = srecs["ident"].astype(np.int64)
        cols.pcs[spos] = srecs["pc"].astype(np.int64)
        # Sync columns are packed densely in stream order, which the byte
        # mask preserves — so no reordering is needed.
        cols.sync_domains[:] = srecs["domain"]
        cols.sync_timestamps[:] = srecs["ts"]


if HAVE_NUMPY:
    decode_segment_columns_fast = decode_segment_columns_numpy
else:
    decode_segment_columns_fast = decode_segment_columns
decode_segment_columns_fast.__doc__ = (
    """The fastest available columnar decode for this interpreter.

    ``decode_segment_columns_numpy`` when numpy is importable (and not
    disabled via ``REPRO_NO_NUMPY=1``), else ``decode_segment_columns``.
    """)


# -- batching across segment boundaries --------------------------------------

#: Batch size the vectorized kernel is sized for: large enough to amortize
#: numpy call overhead (fixed ~40us of sort/scan per batch), small enough
#: that a pipeline's buffered tail stays negligible.
DEFAULT_BATCH_EVENTS = 4096


def concat_columns(parts: Sequence[SegmentColumns]) -> SegmentColumns:
    """Concatenate decoded segments into one columns batch (stream order).

    Safe wherever segments from one stream are fed in order: the detector
    is batch-boundary invariant (asserted by the differential suite), so
    regrouping segments cannot change any report.
    """
    if len(parts) == 1:
        return parts[0]
    if HAVE_NUMPY and all(isinstance(p, NumpySegmentColumns) for p in parts):
        out = NumpySegmentColumns()
        out.ops = np.concatenate([p.ops for p in parts])
        out.tids = np.concatenate([p.tids for p in parts])
        out.addrs = np.concatenate([p.addrs for p in parts])
        out.pcs = np.concatenate([p.pcs for p in parts])
        out.sync_domains = np.concatenate([p.sync_domains for p in parts])
        out.sync_timestamps = np.concatenate(
            [p.sync_timestamps for p in parts])
    else:
        out = SegmentColumns()
        for part in parts:
            if isinstance(part, NumpySegmentColumns):
                part = part.as_list_columns()
            out.ops += part.ops
            out.tids += part.tids
            out.addrs += part.addrs
            out.pcs += part.pcs
            out.sync_domains += part.sync_domains
            out.sync_timestamps += part.sync_timestamps
    out.count = sum(p.count for p in parts)
    out.sync_count = sum(p.sync_count for p in parts)
    out.memory_count = out.count - out.sync_count
    return out


class ColumnBatcher:
    """Accumulate decoded segments and release them in larger batches.

    Wire segments are sized for streaming latency (512 events), but the
    vectorized kernel earns its keep on batches about an order of magnitude
    larger.  A batcher sits between decode and ``feed_batch``, coalescing
    consecutive segments of one stream; batch-boundary invariance makes the
    regrouping observationally free.  Callers must ``flush()`` (or use the
    context manager) before reading the sink's report.
    """

    def __init__(self, sink, *, target_events: int = DEFAULT_BATCH_EVENTS):
        if target_events < 1:
            raise ValueError("target_events must be >= 1")
        self._sink = sink
        self._parts: List[SegmentColumns] = []
        self._pending = 0
        self.target_events = target_events

    def push(self, cols: SegmentColumns) -> None:
        self._parts.append(cols)
        self._pending += cols.count
        if self._pending >= self.target_events:
            self.flush()

    def flush(self) -> None:
        if self._parts:
            batch = concat_columns(self._parts)
            self._parts.clear()
            self._pending = 0
            self._sink(batch)

    def __enter__(self) -> "ColumnBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()


class SegmentBatcher:
    """Batch *encoded* frames and decode each batch in one vectorized pass.

    :class:`ColumnBatcher` coalesces already-decoded columns, which still
    pays the per-frame decode overhead (~50 numpy calls per frame at wire
    sizes).  This batcher works one level lower: each ``push`` only parses
    the 16-byte header (and inflates a compressed payload), and ``flush``
    joins the buffered payloads — frame payloads are plain record streams,
    so the concatenation is itself a valid payload — and decodes the whole
    batch with one set of array operations before handing the columns to
    the sink.  Decode errors therefore surface at flush time, attributed
    to the batch rather than the frame.

    Falls back per-frame to the list decoder when numpy is unavailable or
    the joined batch is sync-dense (where the vectorized decode would lose
    to the plain Python pass anyway).
    """

    def __init__(self, sink, *, target_events: int = DEFAULT_BATCH_EVENTS):
        if target_events < 1:
            raise ValueError("target_events must be >= 1")
        self._sink = sink
        self._frames: List[Tuple[bytes, int]] = []
        self._count = 0
        self._syncs = 0
        self.target_events = target_events

    def push(self, data: bytes, offset: int = 0) -> Tuple[int, int]:
        """Buffer one encoded frame at ``offset``.

        Returns ``(event_count, end)`` where ``end`` is the offset of the
        first byte after the frame, so callers can walk a concatenated
        frame stream without re-parsing headers.
        """
        count = segment_event_count(data, offset)
        _, _, flags, _, payload_len = _SEG_HEADER.unpack_from(data, offset)
        start = offset + _SEG_HEADER.size
        payload = bytes(data[start:start + payload_len])
        if len(payload) != payload_len:
            raise ValueError("truncated segment payload")
        if flags & FLAG_ZLIB:
            payload = zlib.decompress(payload)
        extra = len(payload) - _MEMORY2.size * count
        if extra < 0 or extra % (_SYNC2.size - _MEMORY2.size):
            raise ValueError("truncated event in segment payload")
        syncs = extra // (_SYNC2.size - _MEMORY2.size)
        if syncs > count:
            raise ValueError("trailing bytes in segment payload")
        self._frames.append((payload, count))
        self._count += count
        self._syncs += syncs
        if self._count >= self.target_events:
            self.flush()
        return count, start + payload_len

    def flush(self) -> None:
        if not self._frames:
            return
        frames = self._frames
        count = self._count
        syncs = self._syncs
        self._frames = []
        self._count = 0
        self._syncs = 0
        joined = (frames[0][0] if len(frames) == 1
                  else b"".join(payload for payload, _ in frames))
        try:
            if HAVE_NUMPY and syncs * 8 <= count:
                batch = _np_decode_payload(joined, count, syncs)
            else:
                batch = _decode_payload_list(joined, count)
        except ValueError:
            # A poisoned frame (bad kind/domain code past the size checks).
            # Salvage the batch frame by frame so exactly the bad frames
            # are skipped, then let the error surface to the caller.
            good = []
            for payload, frame_count in frames:
                try:
                    good.append(_decode_payload_list(payload, frame_count))
                except ValueError:
                    continue
            if good:
                self._sink(concat_columns(good))
            raise
        self._sink(batch)

    def __enter__(self) -> "SegmentBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.flush()


def split_log(log: EventLog, *, segment_events: int = 512,
              compress: bool = False) -> List[bytes]:
    """Chop ``log``'s global event stream into encoded segment frames.

    The stream order is preserved across the segment boundary, so feeding
    the decoded segments to a detector in order replays the log exactly.
    """
    if segment_events < 1:
        raise ValueError("segment_events must be >= 1")
    frames: List[bytes] = []
    events = log.events
    for start in range(0, len(events), segment_events):
        frames.append(encode_segment(events[start:start + segment_events],
                                     compress=compress))
    return frames
