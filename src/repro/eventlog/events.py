"""Event types recorded by the LiteRace profiler.

Two kinds of events exist, mirroring §3.2 of the paper:

* :class:`SyncEvent` — *every* synchronization operation, logged by both the
  instrumented and uninstrumented copy of every function.  Each carries a
  *SyncVar* (what object was synchronized on, per Table 1) and a logical
  timestamp that orders operations on the same SyncVar across threads.
* :class:`MemoryEvent` — a (sampled) data access: address plus program
  counter.  In the §5.3 comparison methodology every memory access is logged
  and carries a bitmask saying which of the evaluated samplers would have
  logged it.

SyncVars are ``(domain, id)`` pairs.  The real tool uses raw object
addresses (Table 1); we additionally tag the domain (mutex, event, thread,
atomic target, heap page) so that unrelated objects that happen to share an
address range can never alias.  Aliasing would only add spurious
happens-before edges (hiding races, never inventing them), so the tagging is
a strict precision improvement with identical semantics otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union

__all__ = [
    "SyncKind",
    "SyncVar",
    "SyncEvent",
    "MemoryEvent",
    "Event",
    "ACQUIRE_KINDS",
    "RELEASE_KINDS",
]


class SyncKind(enum.Enum):
    """What kind of synchronization operation a :class:`SyncEvent` records."""

    LOCK = "lock"
    UNLOCK = "unlock"
    WAIT = "wait"
    NOTIFY = "notify"
    FORK = "fork"
    JOIN = "join"
    THREAD_START = "thread_start"
    THREAD_EXIT = "thread_exit"
    ATOMIC = "atomic"
    ALLOC_PAGE = "alloc_page"
    FREE_PAGE = "free_page"


#: A SyncVar: (domain, identifier).  See module docstring.
SyncVar = Tuple[str, int]

#: Kinds with *acquire* semantics: the thread's vector clock absorbs the
#: SyncVar's clock (an incoming happens-before edge).
ACQUIRE_KINDS = frozenset({
    SyncKind.LOCK,
    SyncKind.WAIT,
    SyncKind.JOIN,
    SyncKind.THREAD_START,
    SyncKind.ATOMIC,
    SyncKind.ALLOC_PAGE,
    SyncKind.FREE_PAGE,
})

#: Kinds with *release* semantics: the SyncVar's clock absorbs the thread's
#: (an outgoing happens-before edge).  Atomic RMW and the allocation events
#: are both acquire and release because the tool cannot tell which role a
#: compare-and-exchange plays (§4.2), and allocation must order both the
#: freeing and the reusing thread (§4.3).
RELEASE_KINDS = frozenset({
    SyncKind.UNLOCK,
    SyncKind.NOTIFY,
    SyncKind.FORK,
    SyncKind.THREAD_EXIT,
    SyncKind.ATOMIC,
    SyncKind.ALLOC_PAGE,
    SyncKind.FREE_PAGE,
})


@dataclass(eq=True, frozen=True, slots=True)
class SyncEvent:
    """One synchronization operation with its logical timestamp."""

    tid: int
    kind: SyncKind
    var: SyncVar
    timestamp: int
    pc: int

    @property
    def is_acquire(self) -> bool:
        return self.kind in ACQUIRE_KINDS

    @property
    def is_release(self) -> bool:
        return self.kind in RELEASE_KINDS


@dataclass(eq=True, frozen=True, slots=True)
class MemoryEvent:
    """One (sampled) memory access.

    ``mask`` is a bitmask over evaluated samplers: bit *i* is set if sampler
    *i* chose the instrumented copy for the function call executing this
    access.  Single-sampler runs use mask 1.
    """

    tid: int
    addr: int
    pc: int
    is_write: bool
    mask: int = 1


Event = Union[SyncEvent, MemoryEvent]
