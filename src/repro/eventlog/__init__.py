"""The profiler's event log: event types, in-memory logs, wire encoding."""

from .encode import (
    MEMORY_EVENT_BYTES,
    SYNC_EVENT_BYTES,
    decode_log,
    encode_log,
    encoded_size,
)
from .events import (
    ACQUIRE_KINDS,
    RELEASE_KINDS,
    Event,
    MemoryEvent,
    SyncEvent,
    SyncKind,
    SyncVar,
)
from .log import EventLog
from .segment import (
    SEGMENT_VERSION,
    SegmentColumns,
    columns_from_events,
    decode_segment,
    decode_segment_columns,
    encode_segment,
    split_log,
)
from .store import load_log, save_log
from .writer import StreamingLogWriter

__all__ = [
    "SyncKind",
    "SyncVar",
    "SyncEvent",
    "MemoryEvent",
    "Event",
    "ACQUIRE_KINDS",
    "RELEASE_KINDS",
    "EventLog",
    "save_log",
    "load_log",
    "StreamingLogWriter",
    "encode_log",
    "decode_log",
    "encoded_size",
    "SEGMENT_VERSION",
    "SegmentColumns",
    "columns_from_events",
    "encode_segment",
    "decode_segment",
    "decode_segment_columns",
    "split_log",
    "MEMORY_EVENT_BYTES",
    "SYNC_EVENT_BYTES",
]
