"""Streaming log writer: per-thread buffers flushed to disk during the run.

The paper's profiler does not keep the log in memory: each thread appends
to a buffer in thread-local storage that is flushed to the log file when
full (§4.1, §4.4).  :class:`StreamingLogWriter` is that component: it plugs
into the profiling harness as an event *sink*, maintains one bounded buffer
per thread, spills buffers to per-thread section files as they fill, and
stitches the final on-disk log together at :meth:`close`.

It also accounts for the flushing behaviour the paper's MB/s numbers imply:
:attr:`flushes` and :attr:`peak_buffered_events` let experiments reason
about the memory the profiler itself needs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Union

from .encode import encode_log
from .events import Event
from .log import EventLog

__all__ = ["StreamingLogWriter"]

PathLike = Union[str, "os.PathLike[str]"]


class StreamingLogWriter:
    """An event sink that spills per-thread buffers to disk.

    Parameters
    ----------
    path:
        Final log file location (written at :meth:`close`).
    buffer_events:
        Events buffered per thread before a spill to the thread's section
        file.  The paper-scale default keeps profiler memory bounded even
        for full logging.
    """

    def __init__(self, path: PathLike, buffer_events: int = 4096):
        if buffer_events < 1:
            raise ValueError("buffer_events must be >= 1")
        self.path = os.fspath(path)
        self.buffer_events = buffer_events
        self._buffers: Dict[int, List[Event]] = {}
        self._spilled: Dict[int, List[Event]] = {}
        self.events_written = 0
        self.flushes = 0
        self.peak_buffered_events = 0
        self._closed = False

    # -- sink interface ----------------------------------------------------
    def feed(self, event: Event) -> None:
        """Append one event to its thread's buffer (harness sink hook)."""
        if self._closed:
            raise ValueError("writer is closed")
        buffer = self._buffers.setdefault(event.tid, [])
        buffer.append(event)
        self.events_written += 1
        buffered = sum(len(b) for b in self._buffers.values())
        self.peak_buffered_events = max(self.peak_buffered_events, buffered)
        if len(buffer) >= self.buffer_events:
            self._flush(event.tid)

    def _flush(self, tid: int) -> None:
        buffer = self._buffers.get(tid)
        if not buffer:
            return
        # A real implementation appends encoded bytes to a section file;
        # spilled events here move to a frozen area that no longer counts
        # against the in-memory buffer budget.
        self._spilled.setdefault(tid, []).extend(buffer)
        buffer.clear()
        self.flushes += 1

    # -- finalization ---------------------------------------------------------
    def close(self) -> int:
        """Flush every buffer, write the log file, return bytes written."""
        if self._closed:
            raise ValueError("writer already closed")
        for tid in list(self._buffers):
            self._flush(tid)
        log = EventLog()
        for tid in sorted(self._spilled):
            for event in self._spilled[tid]:
                log.events.append(event)
                if hasattr(event, "is_write"):
                    log.memory_count += 1
                else:
                    log.sync_count += 1
        tmp_path = f"{self.path}.tmp"
        try:
            with open(tmp_path, "wb") as handle:
                data = encode_log(log)
                handle.write(data)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._closed = True
        return len(data)

    def __enter__(self) -> "StreamingLogWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._closed:
            self.close()
