"""Writing event logs to disk and reading them back (§4.4).

The paper's profiler streams events to per-thread buffers that are flushed
to a log file and processed offline.  These helpers persist an
:class:`~repro.eventlog.log.EventLog` using the wire format of
:mod:`repro.eventlog.encode`, so a profiling run and its analysis can be
separated in time and process — exactly the deployment the paper targets
(profile during beta testing, triage races later).
"""

from __future__ import annotations

import os
from typing import Union

from .encode import decode_log, encode_log
from .log import EventLog

__all__ = ["save_log", "load_log"]

PathLike = Union[str, "os.PathLike[str]"]


def save_log(log: EventLog, path: PathLike) -> int:
    """Write ``log`` to ``path``; return the number of bytes written.

    The write is atomic (temp file + rename) so a crashed analysis never
    sees a torn log.
    """
    data = encode_log(log)
    tmp_path = f"{os.fspath(path)}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
    os.replace(tmp_path, path)
    return len(data)


def load_log(path: PathLike) -> EventLog:
    """Read a log previously written by :func:`save_log`."""
    with open(path, "rb") as handle:
        return decode_log(handle.read())
