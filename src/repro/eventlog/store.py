"""Writing event logs to disk and reading them back (§4.4).

The paper's profiler streams events to per-thread buffers that are flushed
to a log file and processed offline.  These helpers persist an
:class:`~repro.eventlog.log.EventLog` using the wire format of
:mod:`repro.eventlog.encode`, so a profiling run and its analysis can be
separated in time and process — exactly the deployment the paper targets
(profile during beta testing, triage races later).
"""

from __future__ import annotations

import os
from typing import Union

from .encode import decode_log, encode_log
from .log import EventLog

__all__ = ["save_log", "load_log"]

PathLike = Union[str, "os.PathLike[str]"]


def save_log(log: EventLog, path: PathLike, *, version: int = 1,
             compress: bool = False) -> int:
    """Write ``log`` to ``path``; return the number of bytes written.

    The write is atomic (temp file + rename) so a crashed analysis never
    sees a torn log, and a failure anywhere — encoding, the write itself,
    or the rename — removes the temp file instead of leaving a stray
    ``.tmp`` behind.  ``version=2`` selects the segmented wire format,
    which also unlocks ``compress``.
    """
    tmp_path = f"{os.fspath(path)}.tmp"
    try:
        with open(tmp_path, "wb") as handle:
            data = encode_log(log, version=version, compress=compress)
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return len(data)


def load_log(path: PathLike) -> EventLog:
    """Read a log previously written by :func:`save_log`."""
    with open(path, "rb") as handle:
        return decode_log(handle.read())
