"""Race reports: static races, dynamic occurrence counts, rare/frequent split.

Following §5.3 of the paper, dynamic races are grouped by the pair of
instructions (program counters) involved; each group is a *static data race*
and "roughly corresponds to a possible synchronization error in the
program".  Table 4 further classifies a static race as **rare** if it was
detected fewer than 3 times per million non-stack memory instructions
executed, and **frequent** otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

__all__ = ["RaceKey", "RaceInstance", "RaceReport", "RARE_PER_MILLION"]

#: Table 4's threshold: fewer than this many detections per million
#: non-stack memory instructions makes a static race "rare".
RARE_PER_MILLION = 3.0

#: A static race: the unordered PC pair, stored as (min, max).
RaceKey = Tuple[int, int]


@dataclass(frozen=True)
class RaceInstance:
    """One dynamic manifestation of a race (kept as an example per key)."""

    addr: int
    first_tid: int
    second_tid: int
    first_pc: int
    second_pc: int
    first_is_write: bool
    second_is_write: bool

    @property
    def key(self) -> RaceKey:
        first, second = self.first_pc, self.second_pc
        return (first, second) if first <= second else (second, first)


@dataclass
class RaceReport:
    """All races found in one analyzed execution."""

    occurrences: Dict[RaceKey, int] = field(default_factory=dict)
    examples: Dict[RaceKey, RaceInstance] = field(default_factory=dict)
    #: Every address on which a race was reported.  Unlike the static-race
    #: key set — which depends on the order the (summarizing) detector
    #: processed events, since only the *first* race per address is
    #: guaranteed to be reported — the racy-address set is stable across
    #: any happens-before-equivalent processing order.
    addresses: Set[int] = field(default_factory=set)

    def record(self, instance: RaceInstance) -> None:
        key = instance.key
        self.occurrences[key] = self.occurrences.get(key, 0) + 1
        self.examples.setdefault(key, instance)
        self.addresses.add(instance.addr)

    @property
    def static_races(self) -> Set[RaceKey]:
        return set(self.occurrences)

    @property
    def num_static(self) -> int:
        return len(self.occurrences)

    @property
    def num_dynamic(self) -> int:
        return sum(self.occurrences.values())

    def classify(self, nonstack_memory_ops: int) -> Tuple[Set[RaceKey], Set[RaceKey]]:
        """Split static races into (rare, frequent) per Table 4's rule."""
        rare: Set[RaceKey] = set()
        frequent: Set[RaceKey] = set()
        millions = max(nonstack_memory_ops, 1) / 1_000_000.0
        for key, count in self.occurrences.items():
            if count / millions < RARE_PER_MILLION:
                rare.add(key)
            else:
                frequent.add(key)
        return rare, frequent

    def merge(self, other: "RaceReport") -> None:
        """Fold another report's occurrences into this one."""
        for key, count in other.occurrences.items():
            self.occurrences[key] = self.occurrences.get(key, 0) + count
        for key, example in other.examples.items():
            self.examples.setdefault(key, example)
        self.addresses |= other.addresses

    def summary_rows(self) -> List[Tuple[int, int, int]]:
        """(pc1, pc2, occurrences) rows sorted by descending occurrence."""
        return sorted(
            ((k[0], k[1], n) for k, n in self.occurrences.items()),
            key=lambda row: (-row[2], row[0], row[1]),
        )
