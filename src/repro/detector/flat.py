"""The batched flat-clock detector hot path.

The reference detectors (:class:`~repro.detector.hb.HappensBeforeDetector`,
:class:`~repro.detector.fasttrack.FastTrackDetector`) process one
:class:`~repro.eventlog.events.Event` object at a time over dict-backed
:class:`~repro.detector.vectorclock.VectorClock`\\ s.  That is the clearest
possible statement of the algorithms — and the throughput ceiling of the
whole fleet: per event it pays an ``isinstance`` dispatch, half a dozen
dataclass attribute reads, several method calls, and a hash lookup per
clock component.

:class:`FlatDetector` is the same algorithm rebuilt for throughput:

* **Flat clocks, dense tids** — threads are numbered densely in order of
  first appearance (:class:`~repro.detector.flatclock.TidSlots`); every
  vector clock is a flat slot-indexed vector, and all clock vectors are
  kept at exactly ``len(slots)`` entries so component reads in the inner
  loop are guard-free integer indexing, never hashing.
* **Packed epochs** — an access epoch ``(slot, clock)`` is one int,
  ``(slot << 48) | clock``, so FastTrack's same-epoch fast path is a
  single integer compare, and "same thread as the last access" is an xor
  against the thread's own packed epoch (no shift, no decode).
* **Batched columnar feed** — :meth:`feed_batch` consumes a
  :class:`~repro.eventlog.segment.SegmentColumns` (parallel int lists
  straight from the wire decoder), so the common path allocates no event
  objects at all.  The loop body is fully inlined with hot state in
  locals, synchronization included.
* **Join elision** — per SyncVar the detector remembers the slot of the
  last thread whose clock was joined with it.  While that thread keeps
  touching the var, its clock *dominates* the var's (clocks only grow),
  so the acquire join is a provable no-op and the release join collapses
  to a C-speed slice overwrite.  Under lock affinity — the common case —
  sync events cost almost nothing; under contention the full join runs.
* **Two algorithms, one hot path** — ``algorithm='fasttrack'`` keeps
  FastTrack's same-epoch / ordered-read O(1) paths; ``algorithm='hb'``
  reproduces the reference happens-before detector exactly (full read
  maps, duplicate occurrences and all), which is what the telemetry
  shards and the online detector need to keep fleet reports identical.

Equivalence is the contract, not an aspiration: for either algorithm the
:class:`~repro.detector.races.RaceReport` (occurrences, kept examples,
racy addresses) and the diagnostic counters are **byte-identical** to the
reference implementation on any event stream — enforced by
``tests/test_detector_differential.py``.  The per-event :meth:`feed` API
remains as a thin compatibility shim over the batched loop, so both entry
points share one implementation.

On clock storage: clock vectors in the inner loops are Python lists, not
``array('Q')`` — CPython reads a list element as a pointer load while an
``array`` read must box a fresh int, which profiling shows costs more than
the pointer-sized storage saves.  :class:`~repro.detector.flatclock.FlatClock`
(``array('Q')``-backed) is the compact exchange/introspection form;
:meth:`thread_clock` snapshots into it.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from ..eventlog.encode import _KIND_CODES
from ..eventlog.events import (
    ACQUIRE_KINDS,
    RELEASE_KINDS,
    Event,
    SyncKind,
)
from ..eventlog.segment import SegmentColumns, columns_from_events
from .flatclock import FlatClock, TidSlots
from .races import RaceInstance, RaceReport

__all__ = ["FlatDetector", "EPOCH_SHIFT", "EPOCH_CLOCK_MASK"]

#: Packed epoch layout: ``(slot << EPOCH_SHIFT) | clock``.  A clock counts
#: one tick per release edge, so 48 bits will not saturate in any run this
#: side of the heat death of a fleet; slots ride above.
#:
#: The layout makes two hot comparisons one integer op each: ``epoch == me``
#: is FastTrack's same-epoch check, and ``(epoch ^ me) > EPOCH_CLOCK_MASK``
#: is "different slot than mine" (xor cancels equal slot bits, leaving only
#: a clock delta, which fits under the mask).
EPOCH_SHIFT = 48
EPOCH_CLOCK_MASK = (1 << EPOCH_SHIFT) - 1

#: Wire-code truth tables, indexed by event kind code (0..max sync code).
#: Tuples, not sets: ``_IS_ACQUIRE[code]`` is an index, not a hash probe.
_MAX_CODE = max(_KIND_CODES.values())
_IS_ACQUIRE = tuple(
    any(code == _KIND_CODES[k] for k in ACQUIRE_KINDS)
    for code in range(_MAX_CODE + 1)
)
_IS_RELEASE = tuple(
    any(code == _KIND_CODES[k] for k in RELEASE_KINDS)
    for code in range(_MAX_CODE + 1)
)
_IS_PAGE = tuple(
    code in (_KIND_CODES[SyncKind.ALLOC_PAGE], _KIND_CODES[SyncKind.FREE_PAGE])
    for code in range(_MAX_CODE + 1)
)

# Per-address state is a small list, not an object: index loads beat
# attribute descriptors in the inner loop.  Layouts:
#
#   fasttrack: [rep, rpc, wep, wpc, rmap]
#     rep:  packed read epoch; 0 = no reads since write; -1 = escalated
#     wep:  packed write epoch; 0 = never written
#     rmap: slot -> (clock, pc) once escalated, else None
#
#   hb:        [wep, wpc, reads]
#     reads: slot -> (clock, pc) for reads since the last write
#
# Packed epochs are never 0 for real accesses (a thread's own clock
# component starts at 1), so 0 is a safe "absent" and -1 a safe marker.
_FT_REP, _FT_RPC, _FT_WEP, _FT_WPC, _FT_RMAP = range(5)
_HB_WEP, _HB_WPC, _HB_READS = range(3)


class FlatDetector:
    """Batched flat-clock race detector; byte-identical to the references.

    ``algorithm`` selects which reference it reproduces: ``'hb'`` (the
    exact happens-before detector — the telemetry/online default) or
    ``'fasttrack'`` (epoch fast paths and read-map escalation).
    """

    def __init__(self, algorithm: str = "hb", alloc_as_sync: bool = True,
                 use_numpy: bool = None):
        if algorithm not in ("hb", "fasttrack"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.alloc_as_sync = alloc_as_sync
        self.report = RaceReport()
        self._slots = TidSlots()
        self._slot_of = self._slots._slot_of
        #: slot -> that thread's clock; every vector has len(slots) entries.
        self._clocks: List[List[int]] = []
        #: slot -> that thread's current packed epoch (slot << SHIFT | own).
        self._epochs: List[int] = []
        #: slot -> (clock, packed epoch, own component): one load + unpack
        #: resolves a thread in the hot loop.  Rebuilt on every release
        #: tick (the only time me/own change).
        self._ctx: List[tuple] = []
        #: var key -> the SyncVar's clock, same dense length.  Keys pack
        #: (domain_code << 32 | ident) into one int; unknown string domains
        #: (in-memory streams only) fall back to tuples — disjoint key sets.
        self._var_clocks: Dict[object, List[int]] = {}
        #: var key -> slot of the last thread joined with the var.  While
        #: that thread keeps touching the var its clock dominates the
        #: var's (clocks only grow between var operations), licensing the
        #: join elisions in the sync path.
        self._var_last: Dict[object, int] = {}
        self._addresses: Dict[int, list] = {}
        self.events_processed = 0
        #: FastTrack diagnostics (always 0 under 'hb').
        self.fast_path_hits = 0
        self.escalations = 0
        # The numpy pre-filter kernel (None = auto: use it when numpy is
        # importable).  Imported lazily — vectorized.py imports this module.
        if use_numpy is None or use_numpy:
            from .vectorized import make_kernel
            self._kernel = make_kernel(self)
            if use_numpy and self._kernel is None:
                raise RuntimeError("numpy kernel requested but numpy is "
                                   "unavailable (REPRO_NO_NUMPY or missing)")
        else:
            self._kernel = None

    @property
    def kernel(self) -> str:
        """Which hot-path kernel this detector runs: 'numpy' or 'pure'."""
        return "pure" if self._kernel is None else "numpy"

    # -- thread registry ---------------------------------------------------
    def _new_slot(self, tid: int) -> int:
        """Register a new thread: grow every clock vector by one component.

        Thread creation is rare, so keeping the all-vectors-same-length
        invariant here buys guard-free indexing on every event.
        """
        slot = self._slots.assign(tid)
        for clock in self._clocks:
            clock.append(0)
        for clock in self._var_clocks.values():
            clock.append(0)
        clock = [0] * (slot + 1)
        # A thread's own component starts at 1, matching the references.
        clock[slot] = 1
        self._clocks.append(clock)
        me = (slot << EPOCH_SHIFT) | 1
        self._epochs.append(me)
        self._ctx.append((clock, me, 1))
        return slot

    # -- batched feed ------------------------------------------------------
    def feed_batch(self, cols: SegmentColumns, *, shard_id: int = None,
                   num_shards: int = 0,
                   block_shift: int = 0) -> Tuple[int, int]:
        """Consume one decoded segment's columns.

        With ``shard_id`` set, memory events whose address block
        (``addr >> block_shift``) does not route to that shard are skipped
        — the telemetry shard filter, applied inside the hot loop so shard
        workers never materialize filtered events either.

        Returns ``(memory_events_fed, sync_events_seen)``.
        """
        kernel = self._kernel
        if kernel is not None:
            result = kernel.prefilter(cols, shard_id, num_shards, block_shift)
            if result is not None:
                sub, skipped, swallowed = result
                # Survivors re-enter the loop unfiltered: the shard mask
                # was already applied array-wide.
                if self.algorithm == "fasttrack":
                    self._batch_fasttrack(sub, None, 0, 0)
                    # Every swallowed event is provably one fast-path hit
                    # (the single-owner rule admits no other branch).
                    self.fast_path_hits += swallowed
                else:
                    self._batch_hb(sub, None, 0, 0)
                kernel.reconcile()
                mem_fed = cols.memory_count - skipped
                self.events_processed += mem_fed + cols.sync_count
                return mem_fed, cols.sync_count
            # Declined batch: it will flow through the pure loop below,
            # invalidating the kernel's batch-start shadow.
            kernel.mark_dirty()
        if hasattr(cols, "as_list_columns"):
            cols = cols.as_list_columns()
        if self.algorithm == "fasttrack":
            skipped = self._batch_fasttrack(cols, shard_id, num_shards,
                                            block_shift)
        else:
            skipped = self._batch_hb(cols, shard_id, num_shards, block_shift)
        # The loops count only what they *skip*; totals come from the
        # columns, so the hot path carries no per-event counters.
        mem_fed = cols.memory_count - skipped
        self.events_processed += mem_fed + cols.sync_count
        return mem_fed, cols.sync_count

    # Both batch loops inline the sync rule rather than calling out:
    # acquire joins the SyncVar's clock into the thread's; release joins
    # the thread's into the SyncVar's (creating it as a copy — the same
    # effect as join-into-zeros) and ticks the thread's own component,
    # refreshing its packed epoch.  Mirrors the references' ``_on_sync``,
    # with the _var_last dominance shortcut: if this thread was the last
    # one joined with the var, vvc <= vc pointwise, so the acquire join
    # is a no-op and the release join is exactly ``vvc[:] = vc``.

    def _batch_hb(self, cols, shard_id, num_shards, block_shift):
        """The reference happens-before algorithm, inlined over columns.

        Returns the number of memory events the shard filter skipped.
        """
        domain_col = cols.sync_domains
        slot_of = self._slot_of
        ctx = self._ctx
        epochs = self._epochs
        tids = self._slots.tids
        var_clocks = self._var_clocks
        var_clocks_get = var_clocks.get
        var_last = self._var_last
        var_last_get = var_last.get
        addresses = self._addresses
        record = self.report.record
        alloc_as_sync = self.alloc_as_sync
        filtered = shard_id is not None
        sync_at = 0
        skipped = 0
        last_tid = None
        slot = -1
        vc = None
        own = 0
        me = 0  # this thread's packed epoch: (slot << SHIFT) | own
        for op, tid, addr, pc in zip(cols.ops, cols.tids, cols.addrs,
                                     cols.pcs):
            if op >= 2:
                domain = domain_col[sync_at]
                sync_at += 1
                if not alloc_as_sync and _IS_PAGE[op]:
                    continue
                if tid != last_tid:
                    try:
                        slot = slot_of[tid]
                    except KeyError:
                        slot = self._new_slot(tid)
                    vc, me, own = ctx[slot]
                    last_tid = tid
                key = ((domain << 32) | addr if type(domain) is int
                       else (domain, addr))
                vvc = var_clocks_get(key)
                mine = var_last_get(key) == slot
                if _IS_ACQUIRE[op] and vvc is not None and not mine:
                    for j, value in enumerate(vvc):
                        if value > vc[j]:
                            vc[j] = value
                    mine = True
                    var_last[key] = slot
                if _IS_RELEASE[op]:
                    if vvc is None:
                        var_clocks[key] = vc.copy()
                        var_last[key] = slot
                    elif mine:
                        vvc[:] = vc
                    else:
                        # Join into a clock this thread does not dominate
                        # (release without a prior acquire, e.g. NOTIFY or
                        # FORK): afterwards the var's clock may exceed
                        # *everyone's*, so no thread holds dominance.
                        for j, value in enumerate(vc):
                            if value > vvc[j]:
                                vvc[j] = value
                        var_last[key] = -2
                    own += 1
                    vc[slot] = own
                    me = (slot << EPOCH_SHIFT) | own
                    epochs[slot] = me
                    ctx[slot] = (vc, me, own)
                continue
            if filtered and (addr >> block_shift) % num_shards != shard_id:
                skipped += 1
                continue
            if tid != last_tid:
                try:
                    slot = slot_of[tid]
                except KeyError:
                    slot = self._new_slot(tid)
                vc, me, own = ctx[slot]
                last_tid = tid
            try:
                state = addresses[addr]
            except KeyError:
                state = addresses[addr] = [0, -1, {}]
            # Race against the last write (for both reads and writes).
            wep = state[0]
            if wep and wep ^ me > EPOCH_CLOCK_MASK:
                wslot = wep >> EPOCH_SHIFT
                if (wep & EPOCH_CLOCK_MASK) > vc[wslot]:
                    record(RaceInstance(
                        addr=addr, first_tid=tids[wslot], second_tid=tid,
                        first_pc=state[1], second_pc=pc,
                        first_is_write=True, second_is_write=bool(op)))
            if op:
                # A write also races against unordered reads since then.
                reads = state[2]
                if reads:
                    for rslot, rcp in reads.items():
                        if rslot != slot and rcp[0] > vc[rslot]:
                            record(RaceInstance(
                                addr=addr, first_tid=tids[rslot],
                                second_tid=tid, first_pc=rcp[1],
                                second_pc=pc, first_is_write=False,
                                second_is_write=True))
                    reads.clear()
                state[0] = me
                state[1] = pc
            else:
                state[2][slot] = (own, pc)
        return skipped

    def _batch_fasttrack(self, cols, shard_id, num_shards, block_shift):
        """FastTrack's epoch-optimized algorithm, inlined over columns.

        Returns the number of memory events the shard filter skipped.
        """
        domain_col = cols.sync_domains
        slot_of = self._slot_of
        ctx = self._ctx
        epochs = self._epochs
        tids = self._slots.tids
        var_clocks = self._var_clocks
        var_clocks_get = var_clocks.get
        var_last = self._var_last
        var_last_get = var_last.get
        addresses = self._addresses
        record = self.report.record
        alloc_as_sync = self.alloc_as_sync
        filtered = shard_id is not None
        fast_paths = 0
        escalations = 0
        sync_at = 0
        skipped = 0
        last_tid = None
        slot = -1
        vc = None
        own = 0
        me = 0  # this thread's packed epoch: (slot << SHIFT) | own
        for op, tid, addr, pc in zip(cols.ops, cols.tids, cols.addrs,
                                     cols.pcs):
            if op >= 2:
                domain = domain_col[sync_at]
                sync_at += 1
                if not alloc_as_sync and _IS_PAGE[op]:
                    continue
                if tid != last_tid:
                    try:
                        slot = slot_of[tid]
                    except KeyError:
                        slot = self._new_slot(tid)
                    vc, me, own = ctx[slot]
                    last_tid = tid
                key = ((domain << 32) | addr if type(domain) is int
                       else (domain, addr))
                vvc = var_clocks_get(key)
                mine = var_last_get(key) == slot
                if _IS_ACQUIRE[op] and vvc is not None and not mine:
                    for j, value in enumerate(vvc):
                        if value > vc[j]:
                            vc[j] = value
                    mine = True
                    var_last[key] = slot
                if _IS_RELEASE[op]:
                    if vvc is None:
                        var_clocks[key] = vc.copy()
                        var_last[key] = slot
                    elif mine:
                        vvc[:] = vc
                    else:
                        # Join into a clock this thread does not dominate
                        # (release without a prior acquire, e.g. NOTIFY or
                        # FORK): afterwards the var's clock may exceed
                        # *everyone's*, so no thread holds dominance.
                        for j, value in enumerate(vc):
                            if value > vvc[j]:
                                vvc[j] = value
                        var_last[key] = -2
                    own += 1
                    vc[slot] = own
                    me = (slot << EPOCH_SHIFT) | own
                    epochs[slot] = me
                    ctx[slot] = (vc, me, own)
                continue
            if filtered and (addr >> block_shift) % num_shards != shard_id:
                skipped += 1
                continue
            if tid != last_tid:
                try:
                    slot = slot_of[tid]
                except KeyError:
                    slot = self._new_slot(tid)
                vc, me, own = ctx[slot]
                last_tid = tid
            try:
                state = addresses[addr]
            except KeyError:
                state = addresses[addr] = [0, -1, 0, -1, None]
            if op == 0:
                # -- read ------------------------------------------------
                rep = state[0]
                # Same-epoch read: one integer compare.
                if rep == me:
                    fast_paths += 1
                    continue
                wep = state[2]
                if wep and wep ^ me > EPOCH_CLOCK_MASK:
                    wslot = wep >> EPOCH_SHIFT
                    if (wep & EPOCH_CLOCK_MASK) > vc[wslot]:
                        record(RaceInstance(
                            addr=addr, first_tid=tids[wslot], second_tid=tid,
                            first_pc=state[3], second_pc=pc,
                            first_is_write=True, second_is_write=False))
                # First read since the write (the common follower of a
                # same-thread write): adopt the epoch.
                if rep == 0:
                    state[0] = me
                    state[1] = pc
                    fast_paths += 1
                    continue
                if rep == -1:
                    state[4][slot] = (own, pc)
                    continue
                # Same slot as the previous read epoch (xor clears equal
                # slot bits) or ordered after it: stay in epoch mode.
                if rep ^ me <= EPOCH_CLOCK_MASK:
                    state[0] = me
                    state[1] = pc
                    fast_paths += 1
                    continue
                rslot = rep >> EPOCH_SHIFT
                if (rep & EPOCH_CLOCK_MASK) <= vc[rslot]:
                    state[0] = me
                    state[1] = pc
                    fast_paths += 1
                    continue
                # Concurrent reads: escalate to a read map.
                escalations += 1
                state[4] = {rslot: (rep & EPOCH_CLOCK_MASK, state[1]),
                            slot: (own, pc)}
                state[0] = -1
                continue
            # -- write --------------------------------------------------
            wep = state[2]
            rep = state[0]
            if wep == me:
                # Same-epoch write: no write race possible; with no reads
                # since, nothing at all can have changed.
                if rep == 0:
                    fast_paths += 1
                    state[3] = pc
                    continue
            elif wep and wep ^ me > EPOCH_CLOCK_MASK:
                wslot = wep >> EPOCH_SHIFT
                if (wep & EPOCH_CLOCK_MASK) > vc[wslot]:
                    record(RaceInstance(
                        addr=addr, first_tid=tids[wslot], second_tid=tid,
                        first_pc=state[3], second_pc=pc,
                        first_is_write=True, second_is_write=True))
            if rep == -1:
                for rslot, rcp in state[4].items():
                    if rslot != slot and rcp[0] > vc[rslot]:
                        record(RaceInstance(
                            addr=addr, first_tid=tids[rslot], second_tid=tid,
                            first_pc=rcp[1], second_pc=pc,
                            first_is_write=False, second_is_write=True))
                state[4] = None
                state[0] = 0
            elif rep:
                if rep ^ me > EPOCH_CLOCK_MASK:
                    rslot = rep >> EPOCH_SHIFT
                    if (rep & EPOCH_CLOCK_MASK) > vc[rslot]:
                        record(RaceInstance(
                            addr=addr, first_tid=tids[rslot], second_tid=tid,
                            first_pc=state[1], second_pc=pc,
                            first_is_write=False, second_is_write=True))
                    else:
                        fast_paths += 1
                else:
                    fast_paths += 1
                state[0] = 0
            else:
                fast_paths += 1
            state[2] = me
            state[3] = pc
        self.fast_path_hits += fast_paths
        self.escalations += escalations
        return skipped

    # -- compatibility shims ----------------------------------------------
    def feed(self, event: Event) -> None:
        """Process one event object (thin shim over the batched loop)."""
        self.feed_batch(columns_from_events((event,)))

    def feed_all(self, events: Iterable[Event]) -> "FlatDetector":
        """Consume an object event stream via one batched conversion."""
        self.feed_batch(columns_from_events(
            events if isinstance(events, (list, tuple)) else list(events)))
        return self

    # -- introspection -----------------------------------------------------
    @property
    def addresses_tracked(self) -> int:
        return len(self._addresses)

    @property
    def shared_addresses(self) -> int:
        """Addresses currently escalated to full read maps ('fasttrack')."""
        if self.algorithm == "fasttrack":
            return sum(1 for s in self._addresses.values()
                       if s[_FT_RMAP] is not None)
        return sum(1 for s in self._addresses.values()
                   if len(s[_HB_READS]) > 1)

    @property
    def threads_seen(self) -> int:
        return len(self._slots)

    @property
    def tid_slots(self) -> TidSlots:
        return self._slots

    def thread_clock(self, tid: int) -> Optional[FlatClock]:
        """A :class:`FlatClock` snapshot of ``tid``'s clock (or None)."""
        slot = self._slot_of.get(tid)
        if slot is None:
            return None
        return FlatClock(array("Q", self._clocks[slot]))
