"""A FastTrack-style epoch-optimized happens-before detector.

:class:`~repro.detector.hb.HappensBeforeDetector` keeps, per address, the
last write plus a *map* of reads since — simple and exact, but the read map
costs O(threads) space and its write-check O(threads) time per address.
Flanagan & Freund's FastTrack observed that almost all accesses are
totally ordered, so a single ``(tid, clock)`` *epoch* suffices for the read
state too, escalating to a full read map only for genuinely read-shared
data.

This implementation follows that design:

* read state is a single epoch while reads stay ordered;
* on a read concurrent with the current read epoch, the address escalates
  to a read map (``shared`` mode);
* a write checks the epoch (O(1)) in the common case and the full map only
  for shared addresses, then collapses the state back to epochs.

It reports the same racy addresses as the reference detector on any event
stream (property-tested), while doing O(1) work for the overwhelmingly
common same-epoch and ordered cases — the reason tools can afford
happens-before precision at all, and a drop-in alternative consumer for
LiteRace's logs (``LiteRace(...).analyze_log`` equivalent via
:func:`fasttrack_races`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..eventlog.events import Event, MemoryEvent, SyncEvent, SyncKind
from .races import RaceInstance, RaceReport
from .vectorclock import VectorClock

__all__ = ["FastTrackDetector", "fasttrack_races"]


class _State:
    """FastTrack metadata for one address."""

    __slots__ = ("write_tid", "write_clock", "write_pc",
                 "read_tid", "read_clock", "read_pc", "read_map")

    def __init__(self):
        self.write_tid = -1
        self.write_clock = 0
        self.write_pc = -1
        # Epoch read state (read_tid == -1 means "no reads since write").
        self.read_tid = -1
        self.read_clock = 0
        self.read_pc = -1
        # Escalated read state: tid -> (clock, pc); None while in epoch mode.
        self.read_map: Optional[Dict[int, Tuple[int, int]]] = None


class FastTrackDetector:
    """Streaming epoch-optimized happens-before detector."""

    def __init__(self, alloc_as_sync: bool = True):
        self.alloc_as_sync = alloc_as_sync
        self.report = RaceReport()
        self._thread_vc: Dict[int, VectorClock] = {}
        self._var_vc: Dict[Tuple[str, int], VectorClock] = {}
        self._addresses: Dict[int, _State] = {}
        #: How often the fast same-epoch/ordered paths sufficed (the
        #: optimization's whole point; exposed for the benchmark).
        self.fast_path_hits = 0
        self.escalations = 0

    def _vc_of(self, tid: int) -> VectorClock:
        vc = self._thread_vc.get(tid)
        if vc is None:
            vc = VectorClock({tid: 1})
            self._thread_vc[tid] = vc
        return vc

    def feed(self, event: Event) -> None:
        if isinstance(event, SyncEvent):
            if not self.alloc_as_sync and event.kind in (
                SyncKind.ALLOC_PAGE, SyncKind.FREE_PAGE
            ):
                return
            thread_vc = self._vc_of(event.tid)
            var_vc = self._var_vc.get(event.var)
            if event.is_acquire and var_vc is not None:
                thread_vc.join(var_vc)
            if event.is_release:
                if var_vc is None:
                    var_vc = VectorClock()
                    self._var_vc[event.var] = var_vc
                var_vc.join(thread_vc)
                thread_vc.tick(event.tid)
            return
        if event.is_write:
            self._on_write(event)
        else:
            self._on_read(event)

    def feed_all(self, events: Iterable[Event]) -> "FastTrackDetector":
        for event in events:
            self.feed(event)
        return self

    # ------------------------------------------------------------------
    def _record(self, event, first_tid, first_pc, first_is_write):
        self.report.record(RaceInstance(
            addr=event.addr,
            first_tid=first_tid,
            second_tid=event.tid,
            first_pc=first_pc,
            second_pc=event.pc,
            first_is_write=first_is_write,
            second_is_write=event.is_write,
        ))

    def _check_write(self, state: _State, event: MemoryEvent,
                     vc: VectorClock) -> None:
        """Race check against the last-write epoch (reads and writes)."""
        if (
            state.write_tid >= 0
            and state.write_tid != event.tid
            and state.write_clock > vc.get(state.write_tid)
        ):
            self._record(event, state.write_tid, state.write_pc, True)

    def _on_read(self, event: MemoryEvent) -> None:
        state = self._addresses.get(event.addr)
        if state is None:
            state = _State()
            self._addresses[event.addr] = state
        vc = self._vc_of(event.tid)
        tid = event.tid
        own = vc.get(tid)

        # Same-epoch read: nothing can have changed.
        if state.read_map is None and state.read_tid == tid \
                and state.read_clock == own:
            self.fast_path_hits += 1
            return

        self._check_write(state, event, vc)

        if state.read_map is not None:
            state.read_map[tid] = (own, event.pc)
            return
        if state.read_tid < 0 or state.read_tid == tid \
                or state.read_clock <= vc.get(state.read_tid):
            # Ordered after the previous read epoch: stay in epoch mode.
            state.read_tid = tid
            state.read_clock = own
            state.read_pc = event.pc
            self.fast_path_hits += 1
            return
        # Concurrent reads: escalate to a read map.
        self.escalations += 1
        state.read_map = {
            state.read_tid: (state.read_clock, state.read_pc),
            tid: (own, event.pc),
        }

    def _on_write(self, event: MemoryEvent) -> None:
        state = self._addresses.get(event.addr)
        if state is None:
            state = _State()
            self._addresses[event.addr] = state
        vc = self._vc_of(event.tid)
        tid = event.tid
        own = vc.get(tid)

        # Same-epoch write: nothing can have changed.
        if (
            state.write_tid == tid and state.write_clock == own
            and state.read_map is None and state.read_tid < 0
        ):
            self.fast_path_hits += 1
            state.write_pc = event.pc
            return

        self._check_write(state, event, vc)

        if state.read_map is not None:
            for read_tid, (read_clock, read_pc) in state.read_map.items():
                if read_tid != tid and read_clock > vc.get(read_tid):
                    self._record(event, read_tid, read_pc, False)
            state.read_map = None
        elif (
            state.read_tid >= 0
            and state.read_tid != tid
            and state.read_clock > vc.get(state.read_tid)
        ):
            self._record(event, state.read_tid, state.read_pc, False)
        else:
            self.fast_path_hits += 1

        state.write_tid = tid
        state.write_clock = own
        state.write_pc = event.pc
        state.read_tid = -1
        state.read_clock = 0
        state.read_pc = -1

    @property
    def addresses_tracked(self) -> int:
        return len(self._addresses)

    @property
    def shared_addresses(self) -> int:
        """Addresses currently escalated to full read maps."""
        return sum(1 for s in self._addresses.values()
                   if s.read_map is not None)


def fasttrack_races(events: Iterable[Event],
                    alloc_as_sync: bool = True) -> RaceReport:
    """Run the FastTrack detector over ``events``; return its report."""
    detector = FastTrackDetector(alloc_as_sync=alloc_as_sync)
    detector.feed_all(events)
    return detector.report
