"""Online race detection (§4.4, §7).

The paper's implementation writes logs to disk and analyzes them offline,
but explicitly anticipates "an online detector that can avoid runtime
slowdown by using an idle core in a many-core processor".  This module
provides that consumer: an :class:`OnlineRaceDetector` plugs directly into
the profiling harness as an event sink, analyzes events as they are
produced, and never retains the log — its memory footprint is the detector
metadata plus one bounded micro-batch.

Analysis runs on the batched flat-clock detector
(:class:`repro.detector.flat.FlatDetector`): events are buffered into
micro-batches of :data:`FLUSH_EVENTS` and fed through ``feed_batch``, which
amortizes per-event dispatch the way the spare analysis core would drain a
ring buffer.  Buffering is invisible to readers — ``report`` and
``addresses_tracked`` flush the pending batch first, so every observation
reflects all events fed so far, byte-identical to unbatched analysis.

It also models the spare-core budget: the detector tracks how many analysis
cycles it consumed, so experiments can check whether one spare core keeps up
with the profiled application (``keeps_up_with``).
"""

from __future__ import annotations

from typing import List

from ..eventlog.events import Event, MemoryEvent
from ..eventlog.segment import columns_from_events
from .flat import FlatDetector
from .races import RaceReport

__all__ = ["OnlineRaceDetector", "FLUSH_EVENTS"]

#: Analysis cycles per event, in the same units as the runtime cost model.
#: Sync events are costlier (vector-clock joins) than memory events
#: (epoch comparisons), mirroring FastTrack-style detectors.
_MEMORY_ANALYSIS_COST = 25
_SYNC_ANALYSIS_COST = 120

#: Default micro-batch size: events buffered before a ``feed_batch`` flush.
#: Small enough that the buffered tail is negligible memory, large enough
#: to amortize batch setup and let the vectorized pre-filter engage.  The
#: committed value is the winner of the ``repro bench`` flush-size sweep
#: (see ``BENCH_detector.json``'s ``online`` section — throughput rises
#: monotonically to here); override per instance via ``flush_events``.
FLUSH_EVENTS = 4096


class OnlineRaceDetector:
    """A streaming event sink performing happens-before analysis."""

    def __init__(self, alloc_as_sync: bool = True,
                 flush_events: int = FLUSH_EVENTS):
        if flush_events < 1:
            raise ValueError("flush_events must be >= 1")
        self._detector = FlatDetector("hb", alloc_as_sync=alloc_as_sync)
        self._pending: List[Event] = []
        self.flush_events = flush_events
        self.events_consumed = 0
        self.analysis_cycles = 0

    def feed(self, event: Event) -> None:
        """Consume one event as it is produced by the profiler."""
        self.events_consumed += 1
        if isinstance(event, MemoryEvent):
            self.analysis_cycles += _MEMORY_ANALYSIS_COST
        else:
            self.analysis_cycles += _SYNC_ANALYSIS_COST
        pending = self._pending
        pending.append(event)
        if len(pending) >= self.flush_events:
            self.flush()

    def flush(self) -> None:
        """Run analysis over the buffered micro-batch."""
        if self._pending:
            self._detector.feed_batch(columns_from_events(self._pending))
            self._pending.clear()

    @property
    def report(self) -> RaceReport:
        self.flush()
        return self._detector.report

    @property
    def addresses_tracked(self) -> int:
        self.flush()
        return self._detector.addresses_tracked

    def keeps_up_with(self, application_cycles: int,
                      spare_cores: int = 1) -> bool:
        """Would ``spare_cores`` of analysis keep pace with the profiled run?

        True iff the analysis cycles fit within the application's own
        runtime multiplied by the spare core budget — the condition for the
        online detector to add no slowdown (§4.4).
        """
        if spare_cores < 1:
            raise ValueError("spare_cores must be >= 1")
        return self.analysis_cycles <= application_cycles * spare_cores
