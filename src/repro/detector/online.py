"""Online race detection (§4.4, §7).

The paper's implementation writes logs to disk and analyzes them offline,
but explicitly anticipates "an online detector that can avoid runtime
slowdown by using an idle core in a many-core processor".  This module
provides that consumer: an :class:`OnlineRaceDetector` plugs directly into
the profiling harness as an event sink, analyzes events as they are
produced, and never retains the log — its memory footprint is the detector
metadata only.

It also models the spare-core budget: the detector tracks how many analysis
cycles it consumed, so experiments can check whether one spare core keeps up
with the profiled application (``keeps_up_with``).
"""

from __future__ import annotations

from ..eventlog.events import Event, MemoryEvent
from .hb import HappensBeforeDetector
from .races import RaceReport

__all__ = ["OnlineRaceDetector"]

#: Analysis cycles per event, in the same units as the runtime cost model.
#: Sync events are costlier (vector-clock joins) than memory events
#: (epoch comparisons), mirroring FastTrack-style detectors.
_MEMORY_ANALYSIS_COST = 25
_SYNC_ANALYSIS_COST = 120


class OnlineRaceDetector:
    """A streaming event sink performing happens-before analysis."""

    def __init__(self, alloc_as_sync: bool = True):
        self._detector = HappensBeforeDetector(alloc_as_sync=alloc_as_sync)
        self.events_consumed = 0
        self.analysis_cycles = 0

    def feed(self, event: Event) -> None:
        """Consume one event as it is produced by the profiler."""
        self.events_consumed += 1
        if isinstance(event, MemoryEvent):
            self.analysis_cycles += _MEMORY_ANALYSIS_COST
        else:
            self.analysis_cycles += _SYNC_ANALYSIS_COST
        self._detector.feed(event)

    @property
    def report(self) -> RaceReport:
        return self._detector.report

    @property
    def addresses_tracked(self) -> int:
        return self._detector.addresses_tracked

    def keeps_up_with(self, application_cycles: int,
                      spare_cores: int = 1) -> bool:
        """Would ``spare_cores`` of analysis keep pace with the profiled run?

        True iff the analysis cycles fit within the application's own
        runtime multiplied by the spare core budget — the condition for the
        online detector to add no slowdown (§4.4).
        """
        if spare_cores < 1:
            raise ValueError("spare_cores must be >= 1")
        return self.analysis_cycles <= application_cycles * spare_cores
