"""Offline and online data-race detection over event logs."""

from .fasttrack import FastTrackDetector, fasttrack_races
from .flat import FlatDetector
from .flatclock import FlatClock, TidSlots
from .hb import HappensBeforeDetector, detect_races
from .lockset import LocksetDetector
from .merge import MergeResult, merge_thread_logs
from .online import OnlineRaceDetector
from .oracle import OracleDetector, oracle_races
from .races import RARE_PER_MILLION, RaceInstance, RaceKey, RaceReport
from .vectorclock import VectorClock

__all__ = [
    "VectorClock",
    "HappensBeforeDetector",
    "detect_races",
    "FastTrackDetector",
    "fasttrack_races",
    "FlatDetector",
    "FlatClock",
    "TidSlots",
    "LocksetDetector",
    "OnlineRaceDetector",
    "OracleDetector",
    "oracle_races",
    "MergeResult",
    "merge_thread_logs",
    "RaceReport",
    "RaceInstance",
    "RaceKey",
    "RARE_PER_MILLION",
]
