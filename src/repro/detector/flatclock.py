"""Flat vector clocks: array-backed timestamps with dense tid indexing.

:class:`~repro.detector.vectorclock.VectorClock` is a dict keyed by raw
thread ids — flexible, but every component read is a hash lookup and every
clock is a dict object.  The detector hot path (:mod:`repro.detector.flat`)
instead numbers threads densely in order of first appearance
(:class:`TidSlots`) and stores each clock as a flat ``array('Q')`` indexed
by that slot (:class:`FlatClock`): component reads are integer indexing,
joins are tight pointwise-max loops, and a clock for *n* threads costs
``8 * n`` bytes instead of a dict of boxed ints — the flat epoch/timestamp
representation of *Efficient Timestamping for Sampling-based Race
Detection* (PAPERS.md).

The detectors keep every clock array at exactly ``len(slots)`` entries
(growing all arrays when a new thread appears), so inner loops index
without bounds checks.  ``FlatClock`` itself tolerates ragged lengths —
missing trailing entries read as zero — because standalone users (tests,
conversions) build clocks incrementally.

``FlatClock`` is mutable and therefore deliberately unhashable, unlike the
historical ``VectorClock.__hash__`` bug this refactor removes.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from .vectorclock import VectorClock

__all__ = ["TidSlots", "FlatClock"]


def _zeros(n: int) -> array:
    return array("Q", bytes(8 * n))


class TidSlots:
    """Dense numbering of thread ids in order of first appearance."""

    __slots__ = ("_slot_of", "tids")

    def __init__(self):
        self._slot_of: Dict[int, int] = {}
        #: slot -> tid (the inverse mapping, used when reporting races).
        self.tids: List[int] = []

    def __len__(self) -> int:
        return len(self.tids)

    def __contains__(self, tid: int) -> bool:
        return tid in self._slot_of

    def get(self, tid: int) -> Optional[int]:
        """The slot for ``tid``, or None if it was never assigned."""
        return self._slot_of.get(tid)

    def assign(self, tid: int) -> int:
        """The slot for ``tid``, assigning the next dense slot if new."""
        slot = self._slot_of.get(tid)
        if slot is None:
            slot = len(self.tids)
            self._slot_of[tid] = slot
            self.tids.append(tid)
        return slot

    def tid_of(self, slot: int) -> int:
        return self.tids[slot]


class FlatClock:
    """A vector clock stored as a flat unsigned-64 array, slot-indexed.

    Semantically equivalent to :class:`VectorClock` with tids replaced by
    dense slots; entries beyond ``len(values)`` read as zero.
    """

    __slots__ = ("values",)

    def __init__(self, values: Optional[Iterable[int]] = None):
        if isinstance(values, array):
            self.values = values
        elif values is None:
            self.values = array("Q")
        else:
            self.values = array("Q", values)

    # -- construction ------------------------------------------------------
    @classmethod
    def zeros(cls, n: int) -> "FlatClock":
        return cls(_zeros(n))

    @classmethod
    def from_vector_clock(cls, vc: VectorClock, slots: TidSlots) -> "FlatClock":
        """Re-index a tid-keyed clock onto ``slots`` (assigning as needed)."""
        pairs = [(slots.assign(tid), clock) for tid, clock in vc.items()]
        clock = cls.zeros(len(slots))
        for slot, value in pairs:
            clock.set(slot, value)
        return clock

    def to_vector_clock(self, slots: TidSlots) -> VectorClock:
        """The equivalent tid-keyed clock (zero entries dropped)."""
        return VectorClock({slots.tid_of(slot): value
                            for slot, value in enumerate(self.values)
                            if value})

    # -- reads -------------------------------------------------------------
    def get(self, slot: int) -> int:
        values = self.values
        return values[slot] if slot < len(values) else 0

    def __len__(self) -> int:
        return len(self.values)

    def _normalized(self) -> Tuple[int, ...]:
        """Components with trailing zeros trimmed (the canonical value)."""
        values = self.values
        n = len(values)
        while n and not values[n - 1]:
            n -= 1
        return tuple(values[:n])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatClock):
            return NotImplemented
        return self._normalized() == other._normalized()

    # Mutable: in-place tick/join would silently corrupt any hash container.
    __hash__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"s{s}:{c}" for s, c in enumerate(self.values) if c)
        return f"FlatClock({inner})"

    # -- ordering ----------------------------------------------------------
    def leq(self, other: "FlatClock") -> bool:
        """Pointwise <=: does every component of self fit under other?"""
        mine = self.values
        theirs = other.values
        limit = len(theirs)
        for slot, value in enumerate(mine):
            if value and (slot >= limit or value > theirs[slot]):
                return False
        return True

    def happens_before(self, other: "FlatClock") -> bool:
        return self.leq(other) and self != other

    def concurrent(self, other: "FlatClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    # -- writes ------------------------------------------------------------
    def grow(self, n: int) -> None:
        """Extend with zeros so at least ``n`` components are addressable."""
        missing = n - len(self.values)
        if missing > 0:
            self.values.extend(_zeros(missing))

    def set(self, slot: int, value: int) -> None:
        self.grow(slot + 1)
        self.values[slot] = value

    def tick(self, slot: int) -> None:
        """Advance ``slot``'s component by one."""
        self.grow(slot + 1)
        self.values[slot] += 1

    def join(self, other: "FlatClock") -> None:
        """In-place pointwise max (the effect of an acquire edge)."""
        theirs = other.values
        self.grow(len(theirs))
        mine = self.values
        for slot, value in enumerate(theirs):
            if value > mine[slot]:
                mine[slot] = value

    def copy(self) -> "FlatClock":
        return FlatClock(array("Q", self.values))
