"""Numpy pre-filter kernel for the flat detector hot path.

The flat detector (:mod:`repro.detector.flat`) spends ~300ns of Python
bytecode per memory event, and on realistic streams almost every one of
those events takes a FastTrack fast path that neither records a race nor
escalates anything — it only nudges one per-address epoch.  This module
computes, array-wide with numpy *before* the per-event loop runs, which
events provably take such paths, applies their net state effect directly,
and hands the slow loop only the survivors.

The unit of reasoning is the **per-address group**: all of a batch's
memory accesses to one address, in stream order.  A group is swallowed
whole — or not at all — when the batch satisfies the *single-owner rule*:

* every (post-shard-filter) access to the address in this batch comes
  from one thread ``t`` whose slot existed at batch start, and
* the address's batch-start read/write state refers only to ``t``'s slot
  (or is empty): for FastTrack, read and write epochs each 0 or packed
  with ``t``'s slot; for HB, write epoch 0/own-slot and the read map
  empty or ``{t's slot}``.

Under that rule every access in the group is a same-slot fast path: reads
adopt/keep ``t``'s epoch, writes overwrite ``t``'s own write epoch, no
race check can fire (epoch xor stays under the clock mask) and no
escalation can trigger.  Crucially the rule survives synchronization:
acquires by ``t`` change only its vector clock (never consulted on these
paths), and each release by ``t`` ticks its epoch by exactly one — so the
thread's epoch at any event is ``epoch0 + (releases by t before it)``,
computable array-wide.  The kernel counts per-thread release *intervals*
with a vectorized scan and uses exact per-event epochs; there is no
conservative cut at sync events.

The group's net effect is then patched in closed form: last write sets
the write epoch/pc, the reads after it set the read epoch (FastTrack: pc
of the first read of the final interval — the last adoption; HB: the
last read's map entry).  The differential harness asserts the result is
byte-identical to the pure loop, counters included (each swallowed
FastTrack event is provably one ``fast_path_hits``).

Batch-start state comes from a kernel-owned **shadow** of the address
table (read/write epochs only), refreshed after each batch for every
address that had a surviving event, and invalidated wholesale whenever
the detector processes events outside the kernel (the dirty flag) — an
unknown address is simply never swallowed, so staleness degrades
throughput, never correctness.

The kernel also vectorizes the telemetry shard filter: the
``(addr >> shift) % num_shards`` mask drops foreign-shard memory events
at batch level, so shard workers stop paying a Python branch per
filtered event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..eventlog.segment import NumpySegmentColumns, SegmentColumns
from ..numpy_support import HAVE_NUMPY, np
from .flat import (
    EPOCH_CLOCK_MASK,
    EPOCH_SHIFT,
    _IS_PAGE,
    _IS_RELEASE,
    _MAX_CODE,
)

__all__ = ["VectorizedPrefilter", "kernel_name", "make_kernel"]

#: Below this batch size the fixed numpy overhead (~20-60us of sort and
#: scan per batch) costs more than the loop it replaces.
_MIN_EVENTS = 128

#: Sorted group keys pack ``(addr << 20) | position``; both must fit.
_MAX_BATCH = 1 << 20
_MAX_ADDR = 1 << 42

#: Sentinel for "batch-start state unknown" — never equals a packed epoch
#: (epochs are >= 0) nor an HB read-map flag (0, slot+1, or -1).
_UNKNOWN = -(1 << 60)


def kernel_name() -> str:
    """Which kernel new detectors select by default: 'numpy' or 'pure'."""
    return "numpy" if HAVE_NUMPY else "pure"


def make_kernel(detector) -> Optional["VectorizedPrefilter"]:
    """A prefilter bound to ``detector``, or None without numpy."""
    if not HAVE_NUMPY:
        return None
    return VectorizedPrefilter(detector)


class VectorizedPrefilter:
    """Per-detector vectorized pre-filter state (see module docstring)."""

    def __init__(self, detector):
        self._detector = detector
        self._fasttrack = detector.algorithm == "fasttrack"
        #: addr -> batch-start (read_epoch, write_epoch) for FastTrack, or
        #: (read_map_flag, write_epoch) for HB where the flag is 0 (empty),
        #: slot+1 (single entry for that slot) or -1 (multiple entries).
        self._shadow: Dict[int, Tuple[int, int]] = {}
        self._dirty = False
        self._pending_reconcile: Optional[List[int]] = None
        # Release kinds tick the epoch; page alloc/free only count when the
        # detector treats them as sync at all.
        rel = [bool(_IS_RELEASE[c]) and
               (detector.alloc_as_sync or not _IS_PAGE[c])
               for c in range(_MAX_CODE + 1)]
        self._release_table = np.array(rel, dtype=bool)
        #: Diagnostics: memory events swallowed / survived across batches.
        self.swallowed_events = 0
        self.survived_events = 0

    def mark_dirty(self) -> None:
        """Events flowed outside the kernel: forget all batch-start state."""
        self._dirty = True

    # -- the pre-filter pass ------------------------------------------------
    def prefilter(self, cols: SegmentColumns, shard_id, num_shards,
                  block_shift):
        """Split one batch into (survivor columns, skipped, swallowed).

        Returns None to decline the batch (too small, sync-dominated,
        out-of-range ids) — the caller then runs the pure loop and must
        call :meth:`mark_dirty`.  On success the caller feeds the survivor
        columns through the slow loop with *no* shard filter (already
        applied), adds ``swallowed`` to ``fast_path_hits`` for FastTrack,
        and calls :meth:`reconcile` after the loop.
        """
        n = cols.count
        if n < _MIN_EVENTS or n >= _MAX_BATCH:
            return None
        if shard_id is None and cols.sync_count * 4 > n:
            # Sync-dominated and nothing to filter: groups are shared
            # almost by construction, so the pass would only add overhead.
            return None
        if isinstance(cols, NumpySegmentColumns):
            ops, tids = cols.ops, cols.tids
            addrs, pcs = cols.addrs, cols.pcs
        else:
            ops = np.array(cols.ops, np.int64)
            tids = np.array(cols.tids, np.int64)
            addrs = np.array(cols.addrs, np.int64)
            pcs = np.array(cols.pcs, np.int64)
        if self._dirty:
            self._shadow.clear()
            self._dirty = False

        mem = ops < 2
        if shard_id is not None:
            drop = mem & ((addrs >> block_shift) % num_shards != shard_id)
            skipped = int(drop.sum())
            if skipped:
                cand = mem & ~drop
            else:
                drop = None
                cand = mem
        else:
            drop = None
            skipped = 0
            cand = mem

        detector = self._detector
        cidx = np.flatnonzero(cand)
        if cidx.size == 0:
            sub = self._compress(cols, ops, tids, addrs, pcs, None, drop)
            return sub, skipped, 0

        tmin = int(tids.min())
        tmax = int(tids.max())
        if tmin < 0 or tmax >= _MAX_BATCH << 2:
            return None
        caddr = addrs[cidx]
        if int(caddr.min()) < 0 or int(caddr.max()) >= _MAX_ADDR:
            return None

        # Batch-start epoch and slot per thread, via a direct tid table.
        slot_of = detector._slot_of
        epochs = detector._epochs
        me_table = np.full(tmax + 1, _UNKNOWN, np.int64)
        slot_table = np.full(tmax + 1, -1, np.int64)
        present = np.flatnonzero(np.bincount(tids, minlength=tmax + 1))
        for tid in present.tolist():
            slot = slot_of.get(tid)
            if slot is not None:
                me_table[tid] = epochs[slot]
                slot_table[tid] = slot

        # Release-interval index per event: how many epoch ticks thread t
        # has performed before this event.  Exact, so swallowing reaches
        # across sync events instead of cutting at them.
        iv = np.zeros(n, np.int64)
        rel_rows = self._release_table[ops]
        if rel_rows.any():
            pos = np.arange(n, dtype=np.int64)
            for tid in np.unique(tids[rel_rows]).tolist():
                rows = tids == tid
                ticks = pos[rows & rel_rows]
                iv[rows] = np.searchsorted(ticks, pos[rows], side="left")

        # Group candidates by address, stream order within each group.
        order = np.argsort((caddr << 20) | cidx)
        sidx = cidx[order]
        saddr = caddr[order]
        rows = len(sidx)
        newg = np.empty(rows, bool)
        newg[0] = True
        np.not_equal(saddr[1:], saddr[:-1], out=newg[1:])
        gid = np.cumsum(newg) - 1
        starts = np.flatnonzero(newg)
        uaddr = saddr[starts]
        groups = len(starts)

        stid = tids[sidx]
        single = (np.minimum.reduceat(stid, starts)
                  == np.maximum.reduceat(stid, starts))
        gtid = stid[starts]
        gslot = slot_table[gtid]
        gme0 = me_table[gtid]

        # Batch-start shadow per group.  An address the detector knows but
        # the shadow does not is UNKNOWN (never swallowed, reconciled once
        # it survives a batch); an address new to both is genuinely (0, 0).
        shadow = self._shadow
        addresses = detector._addresses
        shadow_get = shadow.get
        rep_list: List[int] = []
        wep_list: List[int] = []
        for addr in uaddr.tolist():
            entry = shadow_get(addr)
            if entry is None:
                if addr in addresses:
                    rep_list.append(_UNKNOWN)
                    wep_list.append(_UNKNOWN)
                else:
                    rep_list.append(0)
                    wep_list.append(0)
            else:
                rep_list.append(entry[0])
                wep_list.append(entry[1])
        grep0 = np.fromiter(rep_list, np.int64, groups)
        gwep0 = np.fromiter(wep_list, np.int64, groups)

        wep_ok = (gwep0 == 0) | ((gwep0 > 0)
                                 & ((gwep0 >> EPOCH_SHIFT) == gslot))
        if self._fasttrack:
            rep_ok = (grep0 == 0) | ((grep0 > 0)
                                     & ((grep0 >> EPOCH_SHIFT) == gslot))
        else:
            rep_ok = (grep0 == 0) | (grep0 == gslot + 1)
        gswallow = single & (gslot >= 0) & rep_ok & wep_ok

        swallowed = 0
        sw_rows = None
        if gswallow.any():
            sops = ops[sidx]
            siv = iv[sidx]
            ar = np.arange(rows, dtype=np.int64)
            is_read = sops == 0
            lastw = np.maximum.reduceat(np.where(~is_read, ar, -1), starts)
            lastr = np.maximum.reduceat(np.where(is_read, ar, -1), starts)
            lr_guard = np.maximum(lastr, 0)
            lw_guard = np.maximum(lastw, 0)
            iv_r = siv[lr_guard]
            if self._fasttrack:
                # pc of the *last adoption*: the first read of the final
                # read run — reads after the last write that precedes the
                # last read, in the last read's release interval.  (Writes
                # reset the read epoch but never the read pc, so trailing
                # writes do not mask the run.)
                wprev = np.maximum.reduceat(
                    np.where(~is_read & (ar < lastr[gid]), ar, -1), starts)
                first_sel = (is_read & (ar > wprev[gid])
                             & (siv == iv_r[gid]))
                firstr = np.minimum.reduceat(
                    np.where(first_sel, ar, rows), starts)
                fr_pc = pcs[sidx[np.minimum(firstr, rows - 1)]]
            else:
                wprev = lastw
                fr_pc = None
            spcs_w = pcs[sidx[lw_guard]]
            spcs_r = pcs[sidx[lr_guard]]
            iv_w = siv[lw_guard]
            sizes = np.diff(np.append(starts, rows))

            sg = np.flatnonzero(gswallow)
            swallowed = int(sizes[sg].sum())
            self._patch(sg, uaddr, gme0, gslot, grep0, lastw, lastr, wprev,
                        spcs_w, spcs_r, iv_w, iv_r, fr_pc)
            sw_rows = gswallow[gid]

        self._pending_reconcile = uaddr[~gswallow].tolist()
        self.swallowed_events += swallowed
        self.survived_events += int(cidx.size) - swallowed
        sw_idx = sidx[sw_rows] if sw_rows is not None else None
        sub = self._compress(cols, ops, tids, addrs, pcs, sw_idx, drop)
        return sub, skipped, swallowed

    # -- closed-form group effects -------------------------------------------
    def _patch(self, sg, uaddr, gme0, gslot, grep0, lastw, lastr, wprev,
               spcs_w, spcs_r, iv_w, iv_r, fr_pc) -> None:
        """Apply each swallowed group's net state change before the loop."""
        addresses = self._detector._addresses
        shadow = self._shadow
        a_l = uaddr[sg].tolist()
        me_l = gme0[sg].tolist()
        lw_l = lastw[sg].tolist()
        lr_l = lastr[sg].tolist()
        wpc_l = spcs_w[sg].tolist()
        rpc_l = spcs_r[sg].tolist()
        ivw_l = iv_w[sg].tolist()
        ivr_l = iv_r[sg].tolist()
        if self._fasttrack:
            rep0_l = grep0[sg].tolist()
            wp_l = wprev[sg].tolist()
            fpc_l = fr_pc[sg].tolist()
            for k, addr in enumerate(a_l):
                state = addresses.get(addr)
                if state is None:
                    state = addresses[addr] = [0, -1, 0, -1, None]
                me0 = me_l[k]
                if lw_l[k] >= 0:
                    wep = me0 + ivw_l[k]
                    state[2] = wep
                    state[3] = wpc_l[k]
                else:
                    wep = state[2]
                if lr_l[k] >= 0:
                    if not (wp_l[k] < 0 and ivr_l[k] == 0
                            and rep0_l[k] == me0):
                        # At least one read adopted; the last adoption is
                        # the first read of the final run.  (In the
                        # excluded case the read epoch was already current
                        # at every read — the pc stays whatever it was.)
                        state[1] = fpc_l[k]
                    rep = 0 if lw_l[k] > lr_l[k] else me0 + ivr_l[k]
                else:
                    rep = 0
                state[0] = rep
                shadow[addr] = (rep, wep)
        else:
            slot_l = gslot[sg].tolist()
            for k, addr in enumerate(a_l):
                state = addresses.get(addr)
                if state is None:
                    state = addresses[addr] = [0, -1, {}]
                me0 = me_l[k]
                if lw_l[k] >= 0:
                    state[0] = me0 + ivw_l[k]
                    state[1] = wpc_l[k]
                reads = state[2]
                if lr_l[k] > lw_l[k]:
                    if lw_l[k] >= 0:
                        reads.clear()
                    slot = slot_l[k]
                    reads[slot] = ((me0 & EPOCH_CLOCK_MASK) + ivr_l[k],
                                   rpc_l[k])
                    shadow[addr] = (slot + 1, state[0])
                else:
                    reads.clear()
                    shadow[addr] = (0, state[0])

    # -- survivor columns ----------------------------------------------------
    def _compress(self, cols, ops, tids, addrs, pcs, sw_idx, drop):
        """List-backed survivor columns for the slow loop (syncs always)."""
        n = cols.count
        if sw_idx is None and drop is None:
            if isinstance(cols, NumpySegmentColumns):
                return cols.as_list_columns()
            return cols
        keep = np.ones(n, bool)
        if drop is not None:
            keep &= ~drop
        if sw_idx is not None:
            keep[sw_idx] = False
        kidx = np.flatnonzero(keep)
        sub = SegmentColumns()
        sub.ops = ops[kidx].tolist()
        sub.tids = tids[kidx].tolist()
        sub.addrs = addrs[kidx].tolist()
        sub.pcs = pcs[kidx].tolist()
        domains = cols.sync_domains
        timestamps = cols.sync_timestamps
        sub.sync_domains = (domains if isinstance(domains, list)
                            else domains.tolist())
        sub.sync_timestamps = (timestamps if isinstance(timestamps, list)
                               else timestamps.tolist())
        sub.count = len(kidx)
        sub.sync_count = cols.sync_count
        sub.memory_count = sub.count - sub.sync_count
        return sub

    # -- post-loop shadow refresh --------------------------------------------
    def reconcile(self) -> None:
        """Reload the shadow for every address that had surviving events."""
        pending = self._pending_reconcile
        if pending is None:
            return
        self._pending_reconcile = None
        addresses = self._detector._addresses
        shadow = self._shadow
        if self._fasttrack:
            for addr in pending:
                state = addresses.get(addr)
                if state is not None:
                    shadow[addr] = (state[0], state[2])
        else:
            for addr in pending:
                state = addresses.get(addr)
                if state is not None:
                    reads = state[2]
                    if not reads:
                        flag = 0
                    elif len(reads) == 1:
                        flag = next(iter(reads)) + 1
                    else:
                        flag = -1
                    shadow[addr] = (flag, state[0])
