"""An Eraser-style lockset detector (Savage et al., cited as [38]).

The paper chose happens-before detection for its offline analysis because
lockset algorithms, while able to *predict* races that did not manifest,
report false positives and only understand mutual-exclusion locks (§2,
§4.4).  This comparator implements the classic Eraser state machine so the
trade-off can be measured on our logs: see
``tests/test_lockset.py`` and the detector-comparison example.

State machine per address (C(v) is the candidate lockset):

* ``VIRGIN`` → first access moves to ``EXCLUSIVE(first thread)``.
* ``EXCLUSIVE`` → same-thread accesses stay; another thread's read moves to
  ``SHARED``, another thread's write to ``SHARED_MODIFIED``; C(v) is
  initialized to the locks currently held.
* ``SHARED`` / ``SHARED_MODIFIED`` → C(v) is intersected with held locks; a
  write in ``SHARED`` moves to ``SHARED_MODIFIED``.  An empty C(v) in
  ``SHARED_MODIFIED`` reports a race.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Set

from ..eventlog.events import Event, MemoryEvent, SyncEvent, SyncKind
from .races import RaceInstance, RaceReport

__all__ = ["LocksetDetector", "AddressLockState"]


class _State(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared_modified"


class AddressLockState:
    """Eraser bookkeeping for one address."""

    __slots__ = ("state", "owner", "lockset", "last_pc", "last_tid",
                 "last_is_write", "reported")

    def __init__(self):
        self.state = _State.VIRGIN
        self.owner = -1
        self.lockset: FrozenSet[int] = frozenset()
        self.last_pc = -1
        self.last_tid = -1
        self.last_is_write = False
        self.reported = False


class LocksetDetector:
    """Streaming Eraser detector; feed events, then read ``report``."""

    def __init__(self):
        self.report = RaceReport()
        self._held: Dict[int, Set[int]] = {}
        self._addresses: Dict[int, AddressLockState] = {}

    def _held_by(self, tid: int) -> Set[int]:
        return self._held.setdefault(tid, set())

    def feed(self, event: Event) -> None:
        if isinstance(event, SyncEvent):
            if event.var[0] != "mutex":
                return  # locksets only understand mutual exclusion
            _, lock_id = event.var
            if event.kind is SyncKind.LOCK:
                self._held_by(event.tid).add(lock_id)
            elif event.kind is SyncKind.UNLOCK:
                self._held_by(event.tid).discard(lock_id)
            return
        self._on_memory(event)

    def feed_all(self, events: Iterable[Event]) -> "LocksetDetector":
        for event in events:
            self.feed(event)
        return self

    def _on_memory(self, event: MemoryEvent) -> None:
        state = self._addresses.get(event.addr)
        if state is None:
            state = AddressLockState()
            self._addresses[event.addr] = state
        held = frozenset(self._held_by(event.tid))

        if state.state is _State.VIRGIN:
            state.state = _State.EXCLUSIVE
            state.owner = event.tid
        elif state.state is _State.EXCLUSIVE:
            if event.tid != state.owner:
                state.state = (_State.SHARED_MODIFIED if event.is_write
                               else _State.SHARED)
                state.lockset = held
        else:
            state.lockset = state.lockset & held
            if event.is_write and state.state is _State.SHARED:
                state.state = _State.SHARED_MODIFIED
        if (
            state.state is _State.SHARED_MODIFIED
            and not state.lockset
            and not state.reported
        ):
            state.reported = True
            self.report.record(RaceInstance(
                addr=event.addr,
                first_tid=state.last_tid,
                second_tid=event.tid,
                first_pc=state.last_pc,
                second_pc=event.pc,
                first_is_write=state.last_is_write,
                second_is_write=event.is_write,
            ))
        state.last_pc = event.pc
        state.last_tid = event.tid
        state.last_is_write = event.is_write
