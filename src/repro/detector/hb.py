"""The happens-before data-race detector (§2.1, §4.4).

This is a standard vector-clock happens-before detector in the style the
paper cites ([21, 36]): it consumes an event stream (sync events plus
whatever memory events survived sampling), maintains

* one vector clock per thread,
* one vector clock per SyncVar, and
* per-address access metadata (the last write epoch and the set of reads
  since, with their PCs),

and reports a race whenever two accesses to the same address — at least one
a write — are unordered by the happens-before relation induced by HB1–HB3.

Because the profiler logs *all* synchronization operations, the
happens-before relation computed here is complete even for heavily sampled
logs, which is the paper's no-false-positives guarantee: dropping memory
events can only remove reported races, never add them.

``alloc_as_sync=False`` disables the §4.3 rule that treats allocation
routines as synchronization on the containing page; the ablation experiment
uses it to demonstrate the false races that rule prevents.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..eventlog.events import Event, MemoryEvent, SyncEvent, SyncKind, SyncVar
from .races import RaceInstance, RaceReport
from .vectorclock import VectorClock

__all__ = ["HappensBeforeDetector", "detect_races"]


class _AddressState:
    """Access history for one address."""

    __slots__ = ("write_tid", "write_clock", "write_pc", "reads")

    def __init__(self):
        self.write_tid: int = -1
        self.write_clock: int = 0
        self.write_pc: int = -1
        #: tid -> (clock, pc) for reads since the last write
        self.reads: Dict[int, Tuple[int, int]] = {}


class HappensBeforeDetector:
    """Streaming happens-before detector; feed events, then read ``report``."""

    def __init__(self, alloc_as_sync: bool = True):
        self.alloc_as_sync = alloc_as_sync
        self.report = RaceReport()
        self._thread_vc: Dict[int, VectorClock] = {}
        self._var_vc: Dict[SyncVar, VectorClock] = {}
        self._addresses: Dict[int, _AddressState] = {}
        self.events_processed = 0

    # ------------------------------------------------------------------
    def _vc_of(self, tid: int) -> VectorClock:
        vc = self._thread_vc.get(tid)
        if vc is None:
            # A thread's own component starts at 1 so its first accesses are
            # distinguishable from the all-zero initial clock.
            vc = VectorClock({tid: 1})
            self._thread_vc[tid] = vc
        return vc

    def feed(self, event: Event) -> None:
        """Process one event."""
        self.events_processed += 1
        if isinstance(event, SyncEvent):
            self._on_sync(event)
        else:
            self._on_memory(event)

    def feed_all(self, events: Iterable[Event]) -> "HappensBeforeDetector":
        for event in events:
            self.feed(event)
        return self

    # ------------------------------------------------------------------
    def _on_sync(self, event: SyncEvent) -> None:
        if not self.alloc_as_sync and event.kind in (
            SyncKind.ALLOC_PAGE, SyncKind.FREE_PAGE
        ):
            return
        thread_vc = self._vc_of(event.tid)
        var_vc = self._var_vc.get(event.var)
        if event.is_acquire and var_vc is not None:
            thread_vc.join(var_vc)
        if event.is_release:
            if var_vc is None:
                var_vc = VectorClock()
                self._var_vc[event.var] = var_vc
            var_vc.join(thread_vc)
            # Advance the releasing thread past the published clock so its
            # subsequent events are not ordered before the matching acquire.
            thread_vc.tick(event.tid)

    def _on_memory(self, event: MemoryEvent) -> None:
        state = self._addresses.get(event.addr)
        if state is None:
            state = _AddressState()
            self._addresses[event.addr] = state
        vc = self._vc_of(event.tid)
        tid = event.tid

        # Race against the last write (for both reads and writes).
        if (
            state.write_tid >= 0
            and state.write_tid != tid
            and state.write_clock > vc.get(state.write_tid)
        ):
            self.report.record(RaceInstance(
                addr=event.addr,
                first_tid=state.write_tid,
                second_tid=tid,
                first_pc=state.write_pc,
                second_pc=event.pc,
                first_is_write=True,
                second_is_write=event.is_write,
            ))

        if event.is_write:
            # A write also races against unordered reads since the last write.
            for read_tid, (read_clock, read_pc) in state.reads.items():
                if read_tid != tid and read_clock > vc.get(read_tid):
                    self.report.record(RaceInstance(
                        addr=event.addr,
                        first_tid=read_tid,
                        second_tid=tid,
                        first_pc=read_pc,
                        second_pc=event.pc,
                        first_is_write=False,
                        second_is_write=True,
                    ))
            state.write_tid = tid
            state.write_clock = vc.get(tid)
            state.write_pc = event.pc
            state.reads.clear()
        else:
            state.reads[tid] = (vc.get(tid), event.pc)

    # ------------------------------------------------------------------
    @property
    def addresses_tracked(self) -> int:
        """Distinct addresses with metadata (the paper's memory-cost driver)."""
        return len(self._addresses)


def detect_races(events: Iterable[Event],
                 alloc_as_sync: bool = True) -> RaceReport:
    """Run the happens-before detector over ``events``; return its report."""
    detector = HappensBeforeDetector(alloc_as_sync=alloc_as_sync)
    detector.feed_all(events)
    return detector.report
