"""A complete-history race oracle for testing.

The production detector (:mod:`repro.detector.hb`) keeps FastTrack-style
*summarized* metadata: the last write and the reads since.  That is what
real tools do, but it means the set of *reported* PC pairs depends on which
accesses were logged — a sampled log can surface a true racing pair that
full logging summarized away (both are real races; they are just grouped
differently).

For testing we need ground truth that is independent of sampling: this
oracle keeps **every** access to every address together with the accessing
thread's full vector clock, and reports **all** unordered conflicting
pairs.  It is quadratic per address and therefore only suitable for the
small programs used in tests, where it anchors the paper's central
guarantee: any race reported from any sampled log must appear in the
oracle's report of the full log (no false positives, §3.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..eventlog.events import Event, MemoryEvent, SyncEvent
from .races import RaceInstance, RaceReport
from .vectorclock import VectorClock

__all__ = ["OracleDetector", "oracle_races"]


class _Access:
    __slots__ = ("tid", "pc", "is_write", "clock")

    def __init__(self, tid: int, pc: int, is_write: bool, clock: VectorClock):
        self.tid = tid
        self.pc = pc
        self.is_write = is_write
        self.clock = clock


class OracleDetector:
    """Exhaustive happens-before detector (testing only)."""

    def __init__(self, alloc_as_sync: bool = True):
        self.alloc_as_sync = alloc_as_sync
        self.report = RaceReport()
        self._thread_vc: Dict[int, VectorClock] = {}
        self._var_vc: Dict[Tuple[str, int], VectorClock] = {}
        self._history: Dict[int, List[_Access]] = {}

    def _vc_of(self, tid: int) -> VectorClock:
        vc = self._thread_vc.get(tid)
        if vc is None:
            vc = VectorClock({tid: 1})
            self._thread_vc[tid] = vc
        return vc

    def feed(self, event: Event) -> None:
        if isinstance(event, SyncEvent):
            from ..eventlog.events import SyncKind

            if not self.alloc_as_sync and event.kind in (
                SyncKind.ALLOC_PAGE, SyncKind.FREE_PAGE
            ):
                return
            thread_vc = self._vc_of(event.tid)
            var_vc = self._var_vc.get(event.var)
            if event.is_acquire and var_vc is not None:
                thread_vc.join(var_vc)
            if event.is_release:
                if var_vc is None:
                    var_vc = VectorClock()
                    self._var_vc[event.var] = var_vc
                var_vc.join(thread_vc)
                thread_vc.tick(event.tid)
            return
        self._on_memory(event)

    def feed_all(self, events: Iterable[Event]) -> "OracleDetector":
        for event in events:
            self.feed(event)
        return self

    def _on_memory(self, event: MemoryEvent) -> None:
        clock = self._vc_of(event.tid).copy()
        access = _Access(event.tid, event.pc, event.is_write, clock)
        history = self._history.setdefault(event.addr, [])
        for prior in history:
            if prior.tid == event.tid:
                continue
            if not (prior.is_write or access.is_write):
                continue
            # prior happened earlier in the stream; it is ordered before the
            # new access iff its clock is dominated.
            if prior.clock.leq(access.clock):
                continue
            self.report.record(RaceInstance(
                addr=event.addr,
                first_tid=prior.tid,
                second_tid=event.tid,
                first_pc=prior.pc,
                second_pc=event.pc,
                first_is_write=prior.is_write,
                second_is_write=access.is_write,
            ))
        history.append(access)


def oracle_races(events: Iterable[Event],
                 alloc_as_sync: bool = True) -> RaceReport:
    """Run the exhaustive oracle over ``events``."""
    return OracleDetector(alloc_as_sync=alloc_as_sync).feed_all(events).report
