"""Vector clocks: the timestamps behind happens-before race detection.

A vector clock maps thread ids to logical clock values, with absent entries
meaning zero.  ``a`` happens-before ``b`` iff ``a``'s clock is pointwise
less-than-or-equal to ``b``'s (and they differ); two events race when
neither clock dominates the other.

The implementation is a thin mutable dict wrapper: the detector's hot loops
mutate thread clocks in place and copy only at release edges.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["VectorClock"]


class VectorClock:
    """A mutable map from tid to logical time (missing entries are 0)."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Dict[int, int] = None):
        self._clocks: Dict[int, int] = dict(clocks) if clocks else {}

    # -- reads -------------------------------------------------------------
    def get(self, tid: int) -> int:
        """The clock value for ``tid`` (0 if never advanced)."""
        return self._clocks.get(tid, 0)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._clocks.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self._normalized() == other._normalized()

    # Mutable (tick/join mutate in place), so hashing would silently corrupt
    # any dict or set holding a clock that later advances.  Defining __eq__
    # alone would already disable the inherited identity hash; spell it out.
    __hash__ = None

    def _normalized(self) -> Dict[int, int]:
        return {tid: c for tid, c in self._clocks.items() if c != 0}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"t{t}:{c}" for t, c in sorted(self._clocks.items()))
        return f"VC({inner})"

    # -- ordering ----------------------------------------------------------
    def leq(self, other: "VectorClock") -> bool:
        """Pointwise <=: does every component of self fit under other?"""
        for tid, clock in self._clocks.items():
            if clock > other.get(tid):
                return False
        return True

    def happens_before(self, other: "VectorClock") -> bool:
        """Strictly happens-before: leq and not equal."""
        return self.leq(other) and self != other

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither dominates: the defining condition of a data race."""
        return not self.leq(other) and not other.leq(self)

    # -- writes ------------------------------------------------------------
    def tick(self, tid: int) -> None:
        """Advance ``tid``'s component by one."""
        self._clocks[tid] = self._clocks.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """In-place pointwise max (the effect of an acquire edge)."""
        for tid, clock in other._clocks.items():
            if clock > self._clocks.get(tid, 0):
                self._clocks[tid] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self._clocks)
