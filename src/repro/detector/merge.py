"""Reconstructing a processing order from per-thread logs (§4.2).

The profiler writes one log per thread; the interleaving between threads is
not recorded.  What *is* recorded is a logical timestamp on every sync
event, drawn from one of 128 hashed global counters, with the guarantee that
if ``a`` happens-before ``b`` and both operate on the same SyncVar then
``a``'s timestamp is smaller (§4.2).

The offline detector therefore replays per-thread streams under one
constraint: a sync event on var *v* may only be consumed when its timestamp
is the smallest not-yet-consumed timestamp on *v*.  Memory events (and sync
events whose var appears in no other thread) are never blocked.

When the instrumentation fails to stamp timestamps atomically with the
operation — the hazard §4.2 describes for user-level compare-and-exchange
locks — the recorded timestamps can contradict the actual order.  Replay
then wedges; like a real tool, we break the tie by forcing the blocked sync
event with the globally smallest timestamp and count the *inconsistency*.
Each forced event corresponds to a lost or inverted happens-before edge and
is what produces the "hundreds of false data races" the paper reports for
the non-atomic configuration.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List

from ..eventlog.events import Event, MemoryEvent, SyncEvent, SyncVar
from ..eventlog.log import EventLog

__all__ = ["MergeResult", "merge_thread_logs"]


@dataclass
class MergeResult:
    """A reconstructed global order plus replay diagnostics."""

    events: List[Event] = field(default_factory=list)
    #: Sync events that had to be forced out of timestamp order.
    inconsistencies: int = 0


class _VarQueue:
    """Min-heap of unconsumed timestamps for one SyncVar, with lazy deletes."""

    __slots__ = ("heap", "removed")

    def __init__(self):
        self.heap: List[int] = []
        self.removed: Dict[int, int] = {}

    def push(self, ts: int) -> None:
        heapq.heappush(self.heap, ts)

    def peek_min(self) -> int:
        heap, removed = self.heap, self.removed
        while heap and removed.get(heap[0], 0) > 0:
            removed[heap[0]] -= 1
            heapq.heappop(heap)
        return heap[0]

    def consume(self, ts: int) -> None:
        if self.heap and self.heap[0] == ts:
            heapq.heappop(self.heap)
        else:
            self.removed[ts] = self.removed.get(ts, 0) + 1


def merge_thread_logs(log: EventLog) -> MergeResult:
    """Reconstruct a global processing order from ``log``'s per-thread streams."""
    streams = log.per_thread()
    cursors: Dict[int, int] = {tid: 0 for tid in streams}
    var_queues: Dict[SyncVar, _VarQueue] = {}
    for events in streams.values():
        for event in events:
            if isinstance(event, SyncEvent):
                var_queues.setdefault(event.var, _VarQueue()).push(event.timestamp)

    result = MergeResult()
    remaining = sum(len(events) for events in streams.values())
    tids = sorted(streams)

    def emit(tid: int, event: Event) -> None:
        result.events.append(event)
        cursors[tid] += 1

    while remaining:
        progressed = False
        for tid in tids:
            events = streams[tid]
            while cursors[tid] < len(events):
                event = events[cursors[tid]]
                if isinstance(event, MemoryEvent):
                    emit(tid, event)
                    remaining -= 1
                    progressed = True
                    continue
                queue = var_queues[event.var]
                if event.timestamp == queue.peek_min():
                    queue.consume(event.timestamp)
                    emit(tid, event)
                    remaining -= 1
                    progressed = True
                    continue
                break  # this thread is blocked on a sync event
        if progressed:
            continue
        # Wedged: timestamps are inconsistent with any valid interleaving.
        # Force the blocked sync event with the smallest timestamp.
        best_tid = -1
        best_ts = None
        for tid in tids:
            if cursors[tid] < len(streams[tid]):
                event = streams[tid][cursors[tid]]
                assert isinstance(event, SyncEvent)
                if best_ts is None or event.timestamp < best_ts:
                    best_ts = event.timestamp
                    best_tid = tid
        event = streams[best_tid][cursors[best_tid]]
        var_queues[event.var].consume(event.timestamp)
        emit(best_tid, event)
        remaining -= 1
        result.inconsistencies += 1
    return result
