"""Figure 6: LiteRace's overhead decomposed into its components.

Each benchmark's bar stacks, on top of the baseline run time (1.0):
the dispatch checks, the synchronization logging, and the sampled-memory
logging.  As in the paper, the synchronization-intensive microbenchmarks
(and ConcRT Explicit Scheduling) are dominated by synchronization logging
— the price of never missing a happens-before edge — while the realistic
applications stay near the baseline.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..analysis.tables import format_table
from .common import DEFAULT_SCALE, experiment_main, overhead_study, \
    paper_note

__all__ = ["run"]

_BAR_WIDTH = 44


def _stacked_bar(fracs: List[float], total_scale: float) -> str:
    chars = ""
    for frac, glyph in zip(fracs, ".dsm"):
        chars += glyph * round(_BAR_WIDTH * frac / total_scale)
    return chars


def run(scale: float = DEFAULT_SCALE, seeds: Iterable[int] = (1,),
        jobs: Optional[int] = None, use_cache: Optional[bool] = None,
        static_prune: bool = False) -> str:
    rows_data = overhead_study(scale=scale, seeds=tuple(seeds),
                               jobs=jobs, use_cache=use_cache,
                               static_prune=static_prune)
    peak = max(r.literace_slowdown for r in rows_data)
    rows = []
    lines = []
    for row in rows_data:
        fracs = [1.0, row.frac_dispatch, row.frac_sync_log,
                 row.frac_memory_log]
        lines.append((row.title, _stacked_bar(fracs, peak),
                      row.literace_slowdown))
        rows.append([
            row.title,
            "1.00",
            f"{row.frac_dispatch:.3f}",
            f"{row.frac_sync_log:.3f}",
            f"{row.frac_memory_log:.3f}",
            f"{row.literace_slowdown:.2f}x",
        ])
    table = format_table(
        ["Benchmark", "baseline", "+dispatch", "+sync log", "+mem log",
         "total"],
        rows,
        title="Figure 6: LiteRace slowdown decomposition "
              "(fractions of baseline time)",
    )
    label_width = max(len(t) for t, _, _ in lines)
    chart = "\n".join(
        f"{title.ljust(label_width)} |{bar} {total:.2f}x"
        for title, bar, total in lines
    )
    legend = ("legend: '.' baseline  'd' dispatch checks  "
              "'s' synchronization logging  'm' sampled-memory logging")
    return (table + "\n\n" + chart + "\n" + legend + paper_note(
        "Synchronization-intensive microbenchmarks show the highest "
        "overhead (2x-2.5x) because all synchronization must be logged; "
        "realistic applications sit near 1.0x-1.5x."
    ))


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
