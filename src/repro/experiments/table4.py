"""Table 4: static data races found under full logging, rare vs frequent.

For each benchmark-input pair the full (unsampled) log is analyzed; dynamic
races are grouped into static races by PC pair, and each static race is
classified *rare* if it manifests fewer than 3 times per million non-stack
memory instructions, else *frequent*.  Counts are medians over the seeds
(the paper uses the median over three dynamic executions).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..analysis.tables import format_table
from .. import workloads
from .common import DEFAULT_SCALE, DEFAULT_SEEDS, detection_study, \
    experiment_main, paper_note

__all__ = ["run"]


def run(scale: float = DEFAULT_SCALE,
        seeds: Iterable[int] = DEFAULT_SEEDS,
        benchmarks: Optional[Tuple[str, ...]] = None,
        jobs: Optional[int] = None,
        use_cache: Optional[bool] = None) -> str:
    study = detection_study(scale=scale, seeds=seeds, benchmarks=benchmarks,
                            jobs=jobs, use_cache=use_cache)
    rows = []
    for name in study.benchmarks():
        spec = workloads.get(name)
        total, rare, freq = study.race_counts(name)
        paper = spec.paper_races
        rows.append([
            spec.title,
            total, rare, freq,
            paper.total if paper else "-",
            paper.rare if paper else "-",
            paper.frequent if paper else "-",
        ])
    table = format_table(
        ["Benchmark", "#races", "#Rare", "#Freq",
         "paper #races", "paper #Rare", "paper #Freq"],
        rows,
        title="Table 4: static data races found with full logging "
              "(median over runs)",
    )
    return table + paper_note(
        "Rare = detected fewer than 3 times per million non-stack memory "
        "instructions.  Some of the races found could be benign, as in the "
        "paper."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
