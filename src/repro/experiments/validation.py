"""Validation study: confirmation rate vs. directed-attempt budget.

The race-validation engine (:mod:`repro.validate`) claims that directed
scheduling — park one thread immediately before a candidate access until a
partner reaches the other — confirms real races in very few attempts.
This study quantifies that claim on workloads with planted races: detect
races with full logging, then validate every reported pair at increasing
attempt budgets and measure

* **confirmation rate** — confirmed pairs / reported pairs (the engine's
  acceptance bar is >= 90% at the default budget);
* **attempts used** — how many directed executions the average
  confirmation took (pause-at-access should land on attempt 1);
* **witness size** — steps and context switches of the recorded witness,
  before and after delta-debug minimization.

Every confirmed pair's witness is verified by strict replay as part of
validation itself, so the rates below count *proven* races only.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..analysis.tables import format_percent, format_table
from ..core.harness import ProfilingHarness
from ..core.samplers import make_sampler
from ..detector.hb import detect_races
from ..detector.merge import merge_thread_logs
from ..runtime.executor import Executor
from ..runtime.scheduler import RandomInterleaver
from .. import workloads
from ..validate import (
    DirectorConfig,
    minimize_witness,
    pairs_from_report,
    validate_pairs,
)
from .common import experiment_main, paper_note

__all__ = ["run"]

#: Workloads small enough to run dozens of directed executions per pair.
DEFAULT_BENCHMARKS = ("synthetic", "apache-2")

DEFAULT_BUDGETS = (1, 2, 4, 8)


def _detect_pairs(program, seed: int):
    harness = ProfilingHarness(make_sampler("Full"))
    executor = Executor(program, scheduler=RandomInterleaver(seed=seed),
                       harness=harness)
    executor.run()
    merged = merge_thread_logs(harness.log)
    return pairs_from_report(detect_races(merged.events))


def run(scale: float = 1.0, seeds: Iterable[int] = (1, 2, 3),
        jobs: int = None, use_cache: bool = None,
        budgets: Sequence[int] = DEFAULT_BUDGETS,
        benchmarks: Sequence[str] = DEFAULT_BENCHMARKS) -> str:
    # One directed execution per attempt per pair dominates the cost, so
    # the sweep caps the scale like the other ablations do.  ``jobs`` and
    # ``use_cache`` are accepted for CLI uniformity; validation runs are
    # schedule-perturbed executions that must not be served from the
    # experiment engine's cell cache.
    scale = min(scale, 0.2)
    seed = next(iter(tuple(seeds)))

    rows: List[List[str]] = []
    failures: List[str] = []
    for name in benchmarks:
        if name not in workloads.names():
            continue
        program = workloads.build(name, seed=seed, scale=scale)
        pairs = _detect_pairs(program, seed)
        if not pairs:
            rows.append([name, "0", "-", "-", "-", "-", "-"])
            continue
        for budget in budgets:
            config = DirectorConfig(budget=budget, base_seed=seed)
            report = validate_pairs(program, pairs, config=config,
                                    workload=name, seed=seed, scale=scale,
                                    source="study")
            confirmed = report.confirmed
            rate = len(confirmed) / len(pairs)
            attempts = (sum(v.attempts for v in confirmed) / len(confirmed)
                        if confirmed else float("nan"))
            if confirmed:
                sample = confirmed[0]
                witness = sample.witness
                minimized = minimize_witness(program, witness, sample.pair)
                shrink = (f"{witness.num_switches} -> "
                          f"{minimized.witness.num_switches} switches")
            else:
                shrink = "-"
            rows.append([
                name,
                f"{len(pairs)}",
                f"{budget}",
                f"{len(confirmed)}/{len(pairs)}",
                format_percent(rate),
                f"{attempts:.1f}" if confirmed else "-",
                shrink,
            ])
            if budget == max(budgets) and rate < 0.9:
                failures.append(
                    f"{name}: {format_percent(rate)} at budget {budget}")

    table = format_table(
        ["workload", "pairs", "budget", "confirmed", "rate",
         "avg attempts", "witness minimized"],
        rows,
        title=f"Directed race validation: confirmation rate vs. attempt "
              f"budget (scale {scale}, seed {seed})",
    )
    if failures:
        verdict = ("VALIDATION: FAIL — below the 90% bar at max budget:\n"
                   + "\n".join(f"  {line}" for line in failures))
    else:
        verdict = ("VALIDATION: PASS — every workload confirms >= 90% of "
                   "reported races at the maximum budget, each with a "
                   "strict-replay-verified witness")
    return table + "\n" + verdict + paper_note(
        "Pause-at-access mirrors DataCollider's breakpoint strategy; "
        "because a parked step performs no work, dropping it from the "
        "recording yields a witness that replays on an unmodified "
        "executor (docs/race_validation.md)."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
