"""``python -m repro.experiments [all|<name>]``: regenerate artifacts.

Examples::

    python -m repro.experiments all --scale 0.1 --jobs 2   # CI smoke target
    python -m repro.experiments table3 --scale 0.5
    python -m repro.experiments --scale 1.0                # same as "all"

Cells (one per workload × seed execution) run across ``--jobs`` worker
processes with per-cell progress on stderr; results come from the
persistent artifact cache when available (``--no-cache`` bypasses it).
"""

from __future__ import annotations

import argparse
import importlib
import sys

from . import EXPERIMENT_NAMES, run_all
from .common import (DEFAULT_SCALE, add_engine_arguments,
                     configure_engine_from_args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures")
    parser.add_argument("which", nargs="?", default="all",
                        choices=("all",) + EXPERIMENT_NAMES,
                        help="artifact to regenerate (default: all)")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seeds", type=str, default="1,2,3",
                        help="comma-separated scheduler seeds")
    add_engine_arguments(parser)
    args = parser.parse_args(argv)
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    jobs, use_cache = configure_engine_from_args(args)

    if args.which == "all":
        out = run_all(scale=args.scale, seeds=seeds, jobs=jobs,
                      use_cache=use_cache)
    else:
        module = importlib.import_module(f"repro.experiments.{args.which}")
        out = module.run(scale=args.scale, seeds=seeds, jobs=jobs,
                         use_cache=use_cache)
    print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
