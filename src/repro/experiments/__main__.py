"""``python -m repro.experiments [all|<name>]``: regenerate artifacts.

Examples::

    python -m repro.experiments all --scale 0.1 --jobs 2   # CI smoke target
    python -m repro.experiments table3 --scale 0.5
    python -m repro.experiments --scale 1.0                # same as "all"

Cells (one per workload × seed execution) run across ``--jobs`` worker
processes with per-cell progress on stderr; results come from the
persistent artifact cache when available (``--no-cache`` bypasses it).
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys

from . import EXPERIMENT_NAMES, run_all
from .common import (DEFAULT_SCALE, add_engine_arguments,
                     configure_engine_from_args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures")
    parser.add_argument("which", nargs="?", default="all",
                        choices=("all",) + EXPERIMENT_NAMES,
                        help="artifact to regenerate (default: all)")
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seeds", type=str, default="1,2,3",
                        help="comma-separated scheduler seeds")
    parser.add_argument("--static-prune", action="store_true",
                        help="apply the static race-freedom analysis to "
                             "prune provably-safe memory-op logging "
                             "(overhead experiments only)")
    add_engine_arguments(parser)
    args = parser.parse_args(argv)
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    jobs, use_cache = configure_engine_from_args(args)

    if args.which == "all":
        if args.static_prune:
            print("error: --static-prune applies to individual overhead "
                  "experiments (table5, figure6), not 'all'",
                  file=sys.stderr)
            return 2
        out = run_all(scale=args.scale, seeds=seeds, jobs=jobs,
                      use_cache=use_cache)
    else:
        module = importlib.import_module(f"repro.experiments.{args.which}")
        kwargs = dict(scale=args.scale, seeds=seeds, jobs=jobs,
                      use_cache=use_cache)
        if args.static_prune:
            if "static_prune" not in inspect.signature(
                    module.run).parameters:
                print(f"error: experiment {args.which!r} does not support "
                      "--static-prune", file=sys.stderr)
                return 2
            kwargs["static_prune"] = True
        out = module.run(**kwargs)
    print(out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
