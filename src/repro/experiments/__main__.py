"""``python -m repro.experiments``: regenerate every table and figure."""

from .common import experiment_main
from . import run_all

if __name__ == "__main__":
    experiment_main(run_all, "Regenerate all tables and figures")
