"""Table 2: the benchmark inventory.

The paper lists each application's function count and binary size.  Our
analogue reports, per workload: the number of TIR functions, the static
instruction count (the binary-size analogue), and the rewritten size after
the LiteRace pass (both clones plus a dispatch stub per function), plus the
thread count and dynamic-size figures from one reference run.

Absolute counts differ from the paper's x86 binaries by construction; the
*ordering* is preserved: Firefox carries the largest function population,
Dryad+stdlib substantially more than Dryad alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..core.instrument import instrument
from ..core.literace import run_baseline
from ..analysis.tables import format_table
from .. import workloads
from . import engine
from .common import DEFAULT_SCALE, experiment_main, paper_note

__all__ = ["run", "InventoryRow", "inventory_row"]

_PAPER_ROWS = {
    "dryad": ("Dryad", 4788, "2.7 MB"),
    "dryad-stdlib": ("Dryad (+stdlib)", 4788, "2.7 MB"),
    "concrt-messaging": ("ConcRT", 1889, "0.5 MB"),
    "concrt-scheduling": ("ConcRT", 1889, "0.5 MB"),
    "apache-1": ("Apache 2.2.11", 2178, "0.6 MB"),
    "apache-2": ("Apache 2.2.11", 2178, "0.6 MB"),
    "firefox-start": ("Firefox 3.6a1pre", 8192, "1.3 MB"),
    "firefox-render": ("Firefox 3.6a1pre", 8192, "1.3 MB"),
}


@dataclass
class InventoryRow:
    """One workload's measured Table 2 numbers (the ``inventory`` cell)."""

    benchmark: str
    num_functions: int
    static_size: int
    rewritten_static_size: int
    threads_created: int
    memory_ops: int


def inventory_row(benchmark: str, seed: int,
                  scale: float = DEFAULT_SCALE) -> InventoryRow:
    """Instrument + one baseline run of one workload — picklable."""
    program = workloads.build(benchmark, seed=seed, scale=scale)
    rewritten = instrument(program)
    base = run_baseline(program, seed=seed)
    return InventoryRow(
        benchmark=benchmark,
        num_functions=program.num_functions,
        static_size=program.static_size,
        rewritten_static_size=rewritten.rewritten_static_size,
        threads_created=base.threads_created,
        memory_ops=base.memory_ops,
    )


def run(scale: float = DEFAULT_SCALE, seeds: Iterable[int] = (1,),
        jobs: Optional[int] = None, use_cache: Optional[bool] = None) -> str:
    seed = next(iter(seeds))
    benchmarks = tuple(workloads.overhead_eval_names())
    cells = engine.inventory_cells(benchmarks, seed=seed, scale=scale)
    results = engine.run_cells(cells, jobs=jobs, use_cache=use_cache)
    rows = []
    for name, cell in zip(benchmarks, cells):
        spec = workloads.get(name)
        measured = results[cell]
        paper = _PAPER_ROWS.get(name)
        rows.append([
            spec.title,
            measured.num_functions,
            measured.static_size,
            measured.rewritten_static_size,
            measured.threads_created,
            f"{measured.memory_ops:,}",
            f"{paper[1]:,}" if paper else "-",
            paper[2] if paper else "-",
        ])
    table = format_table(
        ["Benchmark", "#Fns", "Static size", "Rewritten", "Threads",
         "Dyn. mem ops", "Paper #Fns", "Paper size"],
        rows,
        title="Table 2: benchmarks used",
    )
    return table + paper_note(
        "Paper columns list the x86 build: e.g. Dryad 4788 functions / "
        "2.7 MB, Firefox 8192 / 1.3 MB.  Our TIR models preserve the "
        "ordering (Firefox largest, +stdlib > plain Dryad), not the "
        "absolute counts."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
