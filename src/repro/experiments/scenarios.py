"""Scenario contention sweep: detection vs. thread-pool size.

The declarative scenario layer (:mod:`repro.scenarios`) makes contention a
*parameter*: one spec plus a ``derive`` override yields a whole series of
workloads with identical planted races but different thread counts.  This
study sweeps two shipped scenarios —

* ``kv-store``, growing the reader pool (no queues, so thread count is a
  free variable), and
* ``work-steal``, growing the ring (deque instances and workers move
  together, exercising a coupled two-field override)

— and measures, per contention level, what Full logging and the adaptive
thread-local sampler (TL-Ad) see on one marked run: planted-race
detection rate and effective sampling rate (ESR).  Full logging must find
*every* planted key at *every* level — that is the ground-truth invariant
the compiler guarantees — while TL-Ad's rate and ESR show how sampling
behaves as the same service gets busier.

Standalone-only (``python -m repro.experiments.scenarios``), like the
validation study: the sweep re-executes programs rather than reusing
cached study cells, so it stays out of the ``all`` sweep.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple

from ..analysis.tables import format_percent, format_table
from ..core.literace import run_marked
from ..detector.hb import HappensBeforeDetector
from ..eventlog.events import SyncEvent
from ..scenarios import scenario
from .common import experiment_main, paper_note

__all__ = ["run", "SWEEPS"]

#: (scenario, label, override) per contention level.  Overrides go through
#: ``ScenarioSpec.derive``, so each level is a validated spec of its own.
SWEEPS: Tuple[Tuple[str, Tuple[Tuple[str, Mapping], ...]], ...] = (
    ("kv-store", (
        ("2 readers", {"pools": {"readers": {"threads": 2}}}),
        ("6 readers", {}),
        ("12 readers", {"pools": {"readers": {"threads": 12}}}),
    )),
    ("work-steal", (
        ("2-ring", {"pools": {"workers": {"threads": 2}},
                    "regions": {"deques": {"instances": 2}}}),
        ("4-ring", {}),
        ("8-ring", {"pools": {"workers": {"threads": 8}},
                    "regions": {"deques": {"instances": 8}}}),
    )),
)

_SAMPLERS = ("Full", "TL-Ad")


def _sampler_races(marked, name: str) -> set:
    bit = marked.harness.sampler_bit(name)
    detector = HappensBeforeDetector()
    detector.feed_all(
        event for event in marked.log.events
        if isinstance(event, SyncEvent) or (event.mask & (1 << bit)))
    return detector.report.static_races


def run(scale: float = 1.0, seeds: Iterable[int] = (1, 2, 3),
        jobs: int = None, use_cache: bool = None) -> str:
    # Marked runs execute every program once per seed; a capped scale
    # keeps the 2x3-level sweep quick.  ``jobs``/``use_cache`` accepted
    # for CLI uniformity (marked runs are not engine-cached cells).
    scale = min(scale, 0.2)
    seeds = tuple(seeds)

    rows: List[List[str]] = []
    violations: List[str] = []
    for base_name, levels in SWEEPS:
        base = scenario(base_name)
        for label, override in levels:
            spec = base.derive(override) if override else base
            planted: set = set()
            found = {name: 0 for name in _SAMPLERS}
            esr = {name: 0.0 for name in _SAMPLERS}
            events = 0
            for seed in seeds:
                from ..scenarios import compile_scenario

                program = compile_scenario(spec, seed=seed, scale=scale)
                keys = {key for site in program.planted_races
                        for key in site.keys}
                planted |= keys
                marked = run_marked(program, list(_SAMPLERS), seed=seed)
                events += len(marked.log.events)
                for name in _SAMPLERS:
                    races = _sampler_races(marked, name)
                    found[name] += len(races & keys)
                    bit = marked.harness.sampler_bit(name)
                    esr[name] += (marked.log.memory_logged_by(bit)
                                  / max(1, marked.log.memory_count))
                full_found = _sampler_races(marked, "Full") & keys
                if full_found != keys:
                    violations.append(
                        f"{spec.name} [{label}] seed {seed}: Full missed "
                        f"{sorted(keys - full_found)}")
            denom = len(planted) * len(seeds)
            rows.append([
                base_name, label,
                f"{spec.total_threads}",
                f"{events // len(seeds):,}",
                format_percent(found['Full'] / denom),
                format_percent(esr['Full'] / len(seeds)),
                format_percent(found['TL-Ad'] / denom),
                format_percent(esr['TL-Ad'] / len(seeds)),
            ])

    table = format_table(
        ["scenario", "contention", "threads", "events",
         "Full detect", "Full ESR", "TL-Ad detect", "TL-Ad ESR"],
        rows,
        title=f"Scenario contention sweep (scale {scale}, seeds "
              f"{','.join(map(str, seeds))}): one spec, derived levels",
    )
    if violations:
        verdict = ("SCENARIOS: FAIL — Full logging missed planted keys:\n"
                   + "\n".join(f"  {line}" for line in violations))
    else:
        verdict = ("SCENARIOS: PASS — Full logging finds every planted "
                   "key at every contention level; TL-Ad trades detection "
                   "for its logging budget as pools grow")
    return table + "\n" + verdict + paper_note(
        "Production-shaped parameter sweeps are the HardRace deployment "
        "setting (PAPERS.md); the paper's own benchmarks are fixed "
        "benchmark-input pairs (§5.1)."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
