"""Figure 5: detection rates for rare vs frequent static data races.

The left panel of the paper's figure plots each sampler's detection rate
restricted to *rare* races, the right panel restricted to *frequent* ones.
The paper's reading, which this experiment reproduces: most samplers do
well on frequent races, but for rare races the thread-local samplers are
the clear winners and random samplers find almost none.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..analysis.tables import format_percent, format_table
from ..core.samplers import SAMPLER_ORDER
from .. import workloads
from .common import DEFAULT_SCALE, DEFAULT_SEEDS, detection_study, \
    experiment_main, paper_note

__all__ = ["run"]


def _panel(study, which: str, title: str) -> str:
    headers = ["Benchmark"] + list(SAMPLER_ORDER)
    rows: List[List[str]] = []
    for name in study.benchmarks():
        rows.append([workloads.get(name).title] + [
            format_percent(study.detection_rate(name, sampler, which))
            for sampler in SAMPLER_ORDER
        ])
    rows.append(["Average"] + [
        format_percent(study.average_detection_rate(sampler, which))
        for sampler in SAMPLER_ORDER
    ])
    return format_table(headers, rows, title=title)


def run(scale: float = DEFAULT_SCALE,
        seeds: Iterable[int] = DEFAULT_SEEDS,
        benchmarks: Optional[Tuple[str, ...]] = None,
        jobs: Optional[int] = None,
        use_cache: Optional[bool] = None) -> str:
    study = detection_study(scale=scale, seeds=seeds, benchmarks=benchmarks,
                            jobs=jobs, use_cache=use_cache)
    left = _panel(study, "rare",
                  "Figure 5 (left): rare data-race detection rate")
    right = _panel(study, "frequent",
                   "Figure 5 (right): frequent data-race detection rate")
    return left + "\n\n" + right + paper_note(
        "Most samplers perform well for frequent races; for rare races the "
        "thread-local samplers are the clear winners and the random "
        "samplers find very few."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
