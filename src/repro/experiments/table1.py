"""Table 1: how synchronization operations are logged.

The paper's Table 1 lists, for each kind of synchronization operation, the
*SyncVar* that identifies the synchronized-on object and whether additional
synchronization is needed to timestamp the operation atomically (only raw
atomic machine ops need it — the tool cannot tell whether a CAS acts as a
lock or an unlock, §4.2).

This experiment prints the implemented mapping, verified directly against
the runtime: a probe program exercises every operation kind and the logged
events are checked against the table.
"""

from __future__ import annotations

from typing import Iterable

from typing import Optional

from ..analysis.tables import format_table
from ..core.literace import LiteRace
from ..eventlog.events import SyncEvent, SyncKind
from . import engine
from .common import experiment_main, paper_note
from ..tir.builder import ProgramBuilder

__all__ = ["run", "probe_observed", "SYNCVAR_TABLE"]

#: (paper row, our sync kinds, SyncVar domain, needs extra sync?)
SYNCVAR_TABLE = (
    ("Lock / Unlock", (SyncKind.LOCK, SyncKind.UNLOCK),
     "mutex (lock object address)", False),
    ("Wait / Notify", (SyncKind.WAIT, SyncKind.NOTIFY),
     "event (event handle)", False),
    ("Fork / Join", (SyncKind.FORK, SyncKind.JOIN,
                     SyncKind.THREAD_START, SyncKind.THREAD_EXIT),
     "thread (child thread id)", False),
    ("Atomic Machine Ops", (SyncKind.ATOMIC,),
     "atomic (target memory address)", True),
    ("Alloc / Free (§4.3)", (SyncKind.ALLOC_PAGE, SyncKind.FREE_PAGE),
     "page (containing heap page)", False),
)


def _probe_program():
    """A program performing one of every synchronization operation."""
    b = ProgramBuilder("table1-probe")
    lock = b.global_addr("lock")
    ev = b.global_addr("ev")
    cell = b.global_addr("cell")

    with b.function("child", slots=1) as f:
        f.wait(ev)
        f.lock(lock)
        f.unlock(lock)
        f.atomic_rmw(cell)
        f.alloc(64, 0)
        f.free(0)

    with b.function("main", slots=1) as f:
        f.fork("child", tid_slot=0)
        f.notify(ev)
        f.join(0)
    return b.build(entry="main")


def probe_observed(seed: int) -> dict:
    """Run the probe; map each observed SyncKind to its SyncVar domain.

    This is the ``sync-probe`` cell body: the returned ``{SyncKind: str}``
    dict is picklable, so the engine can execute it in a worker and keep
    it in the artifact cache.
    """
    _, log = LiteRace(sampler="Full", seed=seed).profile(_probe_program())
    observed = {}
    for event in log.events:
        if isinstance(event, SyncEvent):
            observed.setdefault(event.kind, event.var[0])
    return observed


def run(scale: float = 1.0, seeds: Iterable[int] = (1,),
        jobs: Optional[int] = None, use_cache: Optional[bool] = None) -> str:
    cell = engine.sync_probe_cell(seed=next(iter(seeds)))
    observed = engine.run_cells([cell], jobs=jobs, use_cache=use_cache)[cell]

    rows = []
    for label, kinds, syncvar, extra in SYNCVAR_TABLE:
        domains = {observed.get(kind) for kind in kinds}
        domains.discard(None)
        verified = "yes" if domains and all(
            syncvar.startswith(d) for d in domains) else "NO"
        rows.append([label, syncvar, "Yes" if extra else "No", verified])

    table = format_table(
        ["Synchronization Op", "SyncVar", "Add'l Sync?", "verified"],
        rows,
        title="Table 1: logging synchronization operations",
    )
    return table + paper_note(
        "SyncVar identifies the synchronization object; a logical "
        "timestamp orders operations on the same SyncVar.  Only atomic "
        "machine ops need the extra critical section (§4.2).  Our page "
        "domain additionally realizes §4.3's allocation rule; thread "
        "start/exit events pair the fork/join edges."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
