"""Figure 4: proportion of static data races found by each sampler.

One group per benchmark-input pair with a bar per sampler, plus the
cross-benchmark average and each sampler's weighted effective sampling
rate (the figure's final group).

Paper headline: TL-Ad detects ~70% of all static races while logging only
1.8% of memory operations; TL-Fx ~72% at 5.2%; G-Ad only ~22.7% at a
comparable 1.3%; G-Fx 48% at 10%; random samplers ~24% at 10-25%; UCP logs
~99% of operations yet detects only ~32% — the direct validation of the
cold-region hypothesis.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..analysis.tables import format_percent, format_table
from ..core.samplers import SAMPLER_ORDER
from .. import workloads
from .common import DEFAULT_SCALE, DEFAULT_SEEDS, detection_study, \
    experiment_main, paper_note

__all__ = ["run"]

_PAPER_AVERAGE = {
    "TL-Ad": 0.70, "TL-Fx": 0.72, "G-Ad": 0.227, "G-Fx": 0.48,
    "Rnd10": 0.24, "Rnd25": None, "UCP": 0.32,
}


def run(scale: float = DEFAULT_SCALE,
        seeds: Iterable[int] = DEFAULT_SEEDS,
        benchmarks: Optional[Tuple[str, ...]] = None,
        jobs: Optional[int] = None,
        use_cache: Optional[bool] = None) -> str:
    study = detection_study(scale=scale, seeds=seeds, benchmarks=benchmarks,
                            jobs=jobs, use_cache=use_cache)
    headers = ["Benchmark"] + list(SAMPLER_ORDER)
    rows: List[List[str]] = []
    for name in study.benchmarks():
        title = workloads.get(name).title
        rows.append([title] + [
            format_percent(study.detection_rate(name, sampler))
            for sampler in SAMPLER_ORDER
        ])
    rows.append(["Average"] + [
        format_percent(study.average_detection_rate(sampler))
        for sampler in SAMPLER_ORDER
    ])
    rows.append(["Weighted Avg ESR"] + [
        format_percent(study.weighted_esr(sampler))
        for sampler in SAMPLER_ORDER
    ])
    rows.append(["(paper average)"] + [
        format_percent(v) if v is not None else "-"
        for v in (_PAPER_AVERAGE[s] for s in SAMPLER_ORDER)
    ])
    table = format_table(
        headers, rows,
        title="Figure 4: proportion of static data races found by sampler",
    )
    return table + paper_note(
        "TL-Ad finds ~70% of races logging <2% of memory ops; UCP logs "
        "~99% yet finds ~32% (cold-region hypothesis)."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
