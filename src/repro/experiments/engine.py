"""Cell-granular parallel experiment engine with a persistent artifact cache.

Every paper artifact is assembled from independent *cells*: one
(workload, seed) execution whose result is a small picklable dataclass.
Because the scheduler invariant guarantees "same seed ⇒ identical
interleaving, logs, and race reports" (DESIGN.md §6), a cell's result is a
pure function of its parameters — which makes the experiment matrix both
embarrassingly parallel and perfectly cacheable.  This module supplies
both halves:

* :func:`run_cells` fans cells out across a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs`` workers) and
  merges results deterministically by cell key, so rendered artifacts are
  byte-identical regardless of worker count, submission order, or
  completion order;
* a persistent on-disk cache (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)
  keyed by a content hash of (cache schema + package version + cost-model
  constants + cell parameters), written atomically (temp file + rename,
  the same pattern as :mod:`repro.eventlog.store`) so concurrent writers
  never produce a torn entry and cache files survive across processes and
  CI runs.

Cell kinds
----------
``detection``
    One §5.3 marked run (:func:`repro.analysis.detection.run_detection_cell`)
    → :class:`~repro.analysis.detection.RunDetection`.
``overhead``
    One §5.4 five-configuration measurement
    (:func:`repro.analysis.overhead.run_overhead_cell`)
    → :class:`~repro.analysis.overhead.OverheadSample`.
``inventory``
    One Table 2 row measurement (instrument + baseline run)
    → :class:`~repro.experiments.table2.InventoryRow`.
``sync-probe``
    The Table 1 probe run → ``{SyncKind: syncvar domain}``.

The module also keeps a *run counter*: every cell that is actually
executed (anywhere — inline or in a worker) increments it, while cache
hits do not.  Tests use it to prove that warm-cache regeneration performs
zero workload executions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import __version__
from ..analysis.detection import DetectionStudy, run_detection_cell
from ..analysis.overhead import (OverheadRow, aggregate_overhead,
                                 run_overhead_cell)
from ..core.samplers import SAMPLER_ORDER
from ..runtime.cost import CostModel, DEFAULT_COST_MODEL

__all__ = [
    "Cell",
    "EngineStats",
    "cache_dir",
    "cell_fingerprint",
    "configure",
    "detection_cells",
    "execution_count",
    "inventory_cells",
    "overhead_cells",
    "parallel_detection_study",
    "parallel_overhead_rows",
    "reset_execution_count",
    "run_cells",
    "sync_probe_cell",
]

#: Environment variable overriding the default on-disk cache location.
CACHE_ENV = "REPRO_CACHE_DIR"

#: Bumped whenever the *meaning* of a cached result changes (detector or
#: runtime semantics) without a package-version bump; invalidates every
#: existing entry at once.  Schema 2: cells grew the ``static_prune``
#: parameter (the staticpass pruning ablation).
CACHE_SCHEMA = 2

_CELL_KINDS = ("detection", "overhead", "inventory", "sync-probe")


@dataclass(frozen=True)
class Cell:
    """One independent, picklable unit of experiment work.

    Frozen (hashable) so it can key result dictionaries; every field takes
    part in the cache fingerprint.  ``samplers``/``switch_prob`` are only
    meaningful for ``detection`` cells and stay at their empty defaults
    elsewhere, keeping the key canonical.
    """

    kind: str
    benchmark: str = ""
    seed: int = 0
    scale: float = 1.0
    samplers: Tuple[str, ...] = ()
    switch_prob: float = 0.0
    #: Overhead cells only: prune statically race-free accesses from the
    #: memory-logging configurations (repro.staticpass).
    static_prune: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _CELL_KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}; "
                             f"known: {_CELL_KINDS}")

    def sort_key(self) -> Tuple:
        """The canonical merge order — intrinsic, not submission order."""
        return (self.kind, self.benchmark, self.seed, self.scale,
                self.samplers, self.switch_prob, self.static_prune)

    def label(self) -> str:
        """Short human-readable form for progress output."""
        parts = [self.kind]
        if self.benchmark:
            parts.append(self.benchmark)
        parts.append(f"seed={self.seed}")
        if self.kind != "sync-probe":
            parts.append(f"scale={self.scale}")
        if self.static_prune:
            parts.append("static-prune")
        return " ".join(parts)


@dataclass
class EngineStats:
    """What one :func:`run_cells` call did (for tests and progress)."""

    total: int = 0
    computed: int = 0
    cache_hits: int = 0


# -- engine configuration ---------------------------------------------------

#: Library defaults: serial, cache on, quiet.  ``experiment_main`` and the
#: ``repro.experiments`` CLI override these for command-line runs.
_CONFIG: Dict[str, object] = {
    "jobs": 1,
    "use_cache": True,
    "cache_dir": None,
    "progress": None,
}

_EXECUTIONS = 0
_MISS = object()


def configure(**overrides) -> Dict[str, object]:
    """Set engine defaults (``jobs``, ``use_cache``, ``cache_dir``,
    ``progress``); return the previous settings so callers can restore.

    Explicit keyword arguments to :func:`run_cells` and the study helpers
    always win over these defaults.
    """
    unknown = set(overrides) - set(_CONFIG)
    if unknown:
        raise TypeError(f"unknown engine options: {sorted(unknown)}")
    previous = dict(_CONFIG)
    _CONFIG.update(overrides)
    return previous


def execution_count() -> int:
    """Cells actually executed (not served from cache) since last reset."""
    return _EXECUTIONS


def reset_execution_count() -> int:
    """Zero the run counter; return the value it had."""
    global _EXECUTIONS
    previous, _EXECUTIONS = _EXECUTIONS, 0
    return previous


# -- the persistent artifact cache ------------------------------------------

def cache_dir() -> str:
    """Resolve the cache directory: configure() > $REPRO_CACHE_DIR > HOME."""
    configured = _CONFIG["cache_dir"]
    if configured:
        return os.fspath(configured)
    env = os.environ.get(CACHE_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def cell_fingerprint(cell: Cell,
                     cost_model: CostModel = DEFAULT_COST_MODEL) -> str:
    """Content hash identifying one cell's result.

    Covers everything a cell's output depends on: the cache schema, the
    package version, every cost-model constant, and all cell parameters.
    Two processes (or two CI runs) computing the same cell therefore agree
    on the key, and any relevant change — a different scale, seed, sampler
    set, or a retuned cost constant — misses cleanly.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "cost_model": dataclasses.asdict(cost_model),
        "kind": cell.kind,
        "benchmark": cell.benchmark,
        "seed": cell.seed,
        "scale": cell.scale,
        "samplers": list(cell.samplers),
        "switch_prob": cell.switch_prob,
        "static_prune": cell.static_prune,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _cache_path(cell: Cell, cost_model: CostModel, directory: str) -> str:
    return os.path.join(directory,
                        f"{cell_fingerprint(cell, cost_model)}.pkl")


def _load_result(path: str):
    """Read a cached result; any failure (missing, torn, stale pickle,
    unreadable) is a plain miss — the cache is advisory, never load-bearing.
    """
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except Exception:
        return _MISS


def _store_result(path: str, result) -> None:
    """Atomically persist ``result`` (temp file + rename, as in
    ``eventlog.store``): concurrent writers race benignly — the rename is
    atomic, so readers always see a complete entry, never a torn one.
    """
    directory = os.path.dirname(path)
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
    except OSError:
        pass  # unwritable cache degrades to recompute-every-time


# -- cell execution ---------------------------------------------------------

def _compute_cell(cell: Cell, cost_model: CostModel):
    """Execute one cell.  Top-level (picklable) so worker processes can run
    it; imports of experiment modules are lazy to avoid import cycles
    (``common`` imports this module, the table modules import ``common``).
    """
    if cell.kind == "detection":
        return run_detection_cell(
            cell.benchmark, cell.seed, scale=cell.scale,
            samplers=cell.samplers, cost_model=cost_model,
            switch_prob=cell.switch_prob,
        )
    if cell.kind == "overhead":
        return run_overhead_cell(
            cell.benchmark, cell.seed, scale=cell.scale,
            cost_model=cost_model, static_prune=cell.static_prune,
        )
    if cell.kind == "inventory":
        from .table2 import inventory_row
        return inventory_row(cell.benchmark, cell.seed, scale=cell.scale)
    if cell.kind == "sync-probe":
        from .table1 import probe_observed
        return probe_observed(cell.seed)
    raise ValueError(f"unknown cell kind {cell.kind!r}")


def run_cells(
    cells: Sequence[Cell],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    progress: Optional[Callable[[str], None]] = None,
    stats: Optional[EngineStats] = None,
) -> "Dict[Cell, object]":
    """Execute ``cells`` and return ``{cell: result}``.

    The returned mapping iterates in canonical :meth:`Cell.sort_key` order
    and its contents depend only on the cell parameters — never on
    ``jobs``, submission order, or worker completion order.  ``jobs=None``
    and ``use_cache=None`` fall back to :func:`configure` defaults.
    """
    global _EXECUTIONS
    jobs = int(_CONFIG["jobs"] if jobs is None else jobs)
    use_cache = bool(_CONFIG["use_cache"] if use_cache is None else use_cache)
    progress = _CONFIG["progress"] if progress is None else progress
    if stats is None:
        stats = EngineStats()

    unique: List[Cell] = list(dict.fromkeys(cells))
    stats.total = len(unique)
    directory = cache_dir() if use_cache else None
    results: Dict[Cell, object] = {}
    done = 0

    def note(cell: Cell, how: str) -> None:
        if progress is not None:
            progress(f"[cell {done}/{stats.total}] {cell.label()} — {how}")

    pending: List[Cell] = []
    for cell in unique:
        cached = _MISS
        if use_cache:
            cached = _load_result(_cache_path(cell, cost_model, directory))
        if cached is _MISS:
            pending.append(cell)
        else:
            results[cell] = cached
            stats.cache_hits += 1
            done += 1
            note(cell, "cached")

    def record(cell: Cell, result) -> None:
        nonlocal done
        global _EXECUTIONS
        results[cell] = result
        _EXECUTIONS += 1
        stats.computed += 1
        done += 1
        if use_cache:
            _store_result(_cache_path(cell, cost_model, directory), result)
        note(cell, "computed")

    if len(pending) > 1 and jobs > 1:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_compute_cell, cell, cost_model): cell
                       for cell in pending}
            for future in as_completed(futures):
                record(futures[future], future.result())
    else:
        for cell in pending:
            record(cell, _compute_cell(cell, cost_model))

    return {cell: results[cell]
            for cell in sorted(unique, key=Cell.sort_key)}


# -- cell constructors and study assembly -----------------------------------

def detection_cells(benchmarks: Sequence[str], seeds: Iterable[int],
                    scale: float, samplers: Sequence[str] = SAMPLER_ORDER,
                    switch_prob: float = 0.05) -> List[Cell]:
    """The §5.3 matrix in canonical (benchmark, seed) order."""
    return [
        Cell(kind="detection", benchmark=name, seed=seed, scale=scale,
             samplers=tuple(samplers), switch_prob=switch_prob)
        for name in benchmarks
        for seed in seeds
    ]


def overhead_cells(benchmarks: Sequence[str], seeds: Iterable[int],
                   scale: float, static_prune: bool = False) -> List[Cell]:
    """The §5.4 matrix in canonical (benchmark, seed) order."""
    return [
        Cell(kind="overhead", benchmark=name, seed=seed, scale=scale,
             static_prune=static_prune)
        for name in benchmarks
        for seed in seeds
    ]


def inventory_cells(benchmarks: Sequence[str], seed: int,
                    scale: float) -> List[Cell]:
    """Table 2's per-workload measurement cells."""
    return [
        Cell(kind="inventory", benchmark=name, seed=seed, scale=scale)
        for name in benchmarks
    ]


def sync_probe_cell(seed: int) -> Cell:
    """Table 1's probe-run cell."""
    return Cell(kind="sync-probe", seed=seed)


def parallel_detection_study(
    scale: float,
    seeds: Sequence[int],
    benchmarks: Sequence[str],
    samplers: Sequence[str] = SAMPLER_ORDER,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    switch_prob: float = 0.05,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> DetectionStudy:
    """The §5.3 study via the engine: parallel, cached, bit-identical to
    :func:`repro.analysis.detection.run_detection_study`.
    """
    cells = detection_cells(benchmarks, seeds, scale, samplers, switch_prob)
    results = run_cells(cells, cost_model=cost_model, jobs=jobs,
                        use_cache=use_cache)
    study = DetectionStudy(sampler_names=tuple(samplers))
    # Assemble in the serial path's nested-loop order, independent of the
    # (sorted) order run_cells returns.
    study.runs.extend(results[cell] for cell in cells)
    return study


def parallel_overhead_rows(
    scale: float,
    seeds: Sequence[int],
    benchmarks: Sequence[str],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    static_prune: bool = False,
) -> List[OverheadRow]:
    """The §5.4 study via the engine, merged in benchmark order."""
    cells = overhead_cells(benchmarks, seeds, scale, static_prune)
    results = run_cells(cells, cost_model=cost_model, jobs=jobs,
                        use_cache=use_cache)
    samples = [results[cell] for cell in cells]
    return aggregate_overhead(samples, benchmarks)
