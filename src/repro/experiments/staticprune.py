"""Static-pruning soundness ablation: races kept, log calls dropped.

The static race-freedom analysis (:mod:`repro.staticpass`) proves some
Read/Write sites can never race and removes their *memory log calls*; the
happens-before graph is untouched because synchronization operations are
never pruned.  If the analysis is sound, the dynamic detector must find
exactly the races with pruning on that the full-logging oracle finds with
it off — pruning may only remove log volume, never detections.

This ablation runs that cross-check end to end for every bundled workload:

1. **oracle** — ``LiteRace(sampler="Full")``: every memory op logged;
2. **pruned** — the same tool with ``static_prune=True``.

Any race in the oracle's report but not the pruned run's is a soundness
violation (the count is reported, and should always be zero); alongside,
the table shows what the pruning buys: logged memory ops and slowdown both
drop while the race report stays identical.
"""

from __future__ import annotations

from typing import Iterable, List

from ..analysis.tables import format_table
from ..core.literace import LiteRace, run_baseline
from .. import workloads
from .common import experiment_main, paper_note

__all__ = ["run"]


def run(scale: float = 1.0, seeds: Iterable[int] = (1, 2, 3),
        jobs: int = None, use_cache: bool = None) -> str:
    # Two Full-logging runs per workload are the expensive part; a reduced
    # scale and one seed keep the sweep quick without weakening the check —
    # soundness must hold at *every* scale and seed, and the fast smoke
    # (``make staticpass``) covers other settings.  ``jobs``/``use_cache``
    # are accepted for CLI uniformity; the tool internals being compared
    # (prune set on/off) live outside the engine's cell cache.
    scale = min(scale, 0.2)
    seed = next(iter(tuple(seeds)))

    rows: List[List[str]] = []
    violations = []
    total_full_ops = 0
    total_pruned_ops = 0
    for name in workloads.names():
        program = workloads.build(name, seed=seed, scale=scale)
        base = run_baseline(program, seed=seed)
        oracle = LiteRace(sampler="Full", seed=seed).run(program)
        pruned = LiteRace(sampler="Full", seed=seed,
                          static_prune=True).run(program)

        lost = oracle.report.static_races - pruned.report.static_races
        if lost:
            violations.append((name, sorted(lost)))
        report = pruned.static_report
        full_ops = oracle.log.memory_count
        kept_ops = pruned.log.memory_count
        total_full_ops += full_ops
        total_pruned_ops += kept_ops
        reduction = 1.0 - kept_ops / full_ops if full_ops else 0.0
        rows.append([
            name,
            f"{oracle.report.num_static}",
            f"{pruned.report.num_static}",
            len(lost),
            f"{report.num_pruned}/{report.num_memory_pcs}",
            f"{full_ops:,} -> {kept_ops:,}",
            f"-{reduction:.0%}",
            f"{oracle.run.clock / base.clock:.2f}x -> "
            f"{pruned.run.clock / base.clock:.2f}x",
        ])

    overall = (1.0 - total_pruned_ops / total_full_ops
               if total_full_ops else 0.0)
    table = format_table(
        ["workload", "oracle races", "pruned races", "lost",
         "sites pruned", "mem ops logged", "ops", "full-log slowdown"],
        rows,
        title=f"Static-pruning soundness ablation (scale {scale}, "
              f"seed {seed}): Full oracle vs Full + static pruning",
    )
    if violations:
        verdict = "SOUNDNESS: FAIL — races lost to pruning:\n" + "\n".join(
            f"  {name}: {lost}" for name, lost in violations)
    else:
        verdict = (f"SOUNDNESS: PASS — 0 races lost across "
                   f"{len(rows)} workloads; logged memory ops "
                   f"{total_full_ops:,} -> {total_pruned_ops:,} "
                   f"(-{overall:.0%})")
    return table + "\n" + verdict + paper_note(
        "Sync ops are never pruned, so the happens-before graph the "
        "offline detector sees is identical; only provably race-free "
        "memory log calls are elided (docs/static_pass.md)."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
