"""One module per table/figure of the paper's evaluation, plus ablations.

Run any experiment standalone::

    python -m repro.experiments.table3 --scale 0.5 --jobs 4
    python -m repro.experiments.figure4
    python -m repro.experiments.ablations

or everything at once (regenerates the EXPERIMENTS.md numbers)::

    python -m repro.experiments all --scale 1.0 --jobs 8

All commands accept ``--jobs N`` (parallel cell execution, default all
cores) and ``--no-cache`` (bypass the persistent artifact cache); see
docs/experiment_engine.md.

The directed-validation study (``python -m repro.experiments.validation``)
is standalone-only: its cost is directed *executions*, not cached cells,
so it stays out of the ``all`` sweep.
"""

import importlib

__all__ = ["EXPERIMENT_NAMES", "run_all"]

#: Experiment module names in the paper's presentation order.
EXPERIMENT_NAMES = (
    "table1",
    "table2",
    "table3",
    "figure4",
    "figure5",
    "table4",
    "table5",
    "figure6",
    "ablations",
    "staticprune",
)


def run_all(scale: float = 1.0, seeds=(1, 2, 3), jobs=None,
            use_cache=None) -> str:
    """Regenerate every table and figure; return the combined report."""
    sections = []
    for name in EXPERIMENT_NAMES:
        module = importlib.import_module(f"{__name__}.{name}")
        sections.append(module.run(scale=scale, seeds=seeds, jobs=jobs,
                                   use_cache=use_cache))
    return "\n\n\n".join(sections)
