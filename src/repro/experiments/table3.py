"""Table 3: the evaluated samplers and their effective sampling rates.

For every sampler the study reports the *effective sampling rate* (ESR):
the percentage of dynamic memory operations actually logged, both as a
plain average over benchmark-input pairs and as an average weighted by each
pair's dynamic memory-operation count.

Paper reference (weighted / plain): TL-Ad 1.8% / 8.2%, TL-Fx 5.2% / 11.5%,
G-Ad 1.3% / 2.9%, G-Fx 10.0% / 10.3%, Rnd10 9.9% / 9.6%, Rnd25 24.8% /
24.0%, UCP 98.9% / 92.3%.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from ..analysis.tables import format_percent, format_table
from ..core.samplers import SAMPLER_ORDER, make_sampler
from .common import DEFAULT_SCALE, DEFAULT_SEEDS, detection_study, \
    experiment_main, paper_note

__all__ = ["run"]

_PAPER_ESR = {
    "TL-Ad": (0.018, 0.082),
    "TL-Fx": (0.052, 0.115),
    "G-Ad": (0.013, 0.029),
    "G-Fx": (0.100, 0.103),
    "Rnd10": (0.099, 0.096),
    "Rnd25": (0.248, 0.240),
    "UCP": (0.989, 0.923),
}


def run(scale: float = DEFAULT_SCALE,
        seeds: Iterable[int] = DEFAULT_SEEDS,
        benchmarks: Optional[Tuple[str, ...]] = None,
        jobs: Optional[int] = None,
        use_cache: Optional[bool] = None) -> str:
    study = detection_study(scale=scale, seeds=seeds, benchmarks=benchmarks,
                            jobs=jobs, use_cache=use_cache)
    rows = []
    for name in SAMPLER_ORDER:
        sampler = make_sampler(name)
        weighted = study.weighted_esr(name)
        plain = study.average_esr(name)
        paper_w, paper_p = _PAPER_ESR[name]
        rows.append([
            name,
            sampler.description,
            format_percent(weighted),
            format_percent(paper_w),
            format_percent(plain),
            format_percent(paper_p),
        ])
    table = format_table(
        ["Sampler", "Description", "Weighted ESR", "(paper)",
         "Average ESR", "(paper)"],
        rows,
        title="Table 3: samplers evaluated and effective sampling rates",
    )
    return table + paper_note(
        "ESR = fraction of dynamic memory operations logged; weighted "
        "average uses each benchmark's memory-operation count as weight."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
