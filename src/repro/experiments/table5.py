"""Table 5: LiteRace vs full-logging slowdown and log volume.

For each of the ten benchmark-input pairs: baseline execution time, the
slowdown of LiteRace (thread-local adaptive sampler) and of full logging
relative to that baseline, and the log production rate of each in MB/s.

Paper headline: averaged over the realistic benchmarks LiteRace costs ~28%
(1.28x) versus ~7.5x for full logging — up to 25x faster — and writes
5 MB/s of log versus ~160 MB/s.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..analysis.tables import format_slowdown, format_table
from .common import DEFAULT_SCALE, experiment_main, overhead_study, \
    paper_note

__all__ = ["run"]


def run(scale: float = DEFAULT_SCALE, seeds: Iterable[int] = (1,),
        jobs: Optional[int] = None, use_cache: Optional[bool] = None,
        static_prune: bool = False) -> str:
    rows_data = overhead_study(scale=scale, seeds=tuple(seeds),
                               jobs=jobs, use_cache=use_cache,
                               static_prune=static_prune)
    rows: List[List[str]] = []
    micro = {"lkrhash", "lflist"}

    def fmt(row):
        return [
            row.title,
            f"{row.baseline_seconds:.3f}s",
            format_slowdown(row.literace_slowdown),
            format_slowdown(row.paper_literace) if row.paper_literace else "-",
            format_slowdown(row.full_logging_slowdown),
            format_slowdown(row.paper_full) if row.paper_full else "-",
            f"{row.literace_mb_per_s:.1f}",
            f"{row.full_mb_per_s:.1f}",
        ]

    for row in rows_data:
        rows.append(fmt(row))

    def averages(selected):
        n = len(selected)
        return [
            f"{sum(r.baseline_seconds for r in selected) / n:.3f}s",
            format_slowdown(sum(r.literace_slowdown for r in selected) / n),
            "-",
            format_slowdown(
                sum(r.full_logging_slowdown for r in selected) / n),
            "-",
            f"{sum(r.literace_mb_per_s for r in selected) / n:.1f}",
            f"{sum(r.full_mb_per_s for r in selected) / n:.1f}",
        ]

    rows.append(["Average"] + averages(rows_data))
    realistic = [r for r in rows_data if r.benchmark not in micro]
    rows.append(["Average (w/o microbench)"] + averages(realistic))

    title = ("Table 5: slowdown and log-size overhead, LiteRace (TL-Ad) "
             "vs full logging")
    if static_prune:
        title += " [static pruning on]"
    table = format_table(
        ["Benchmark", "Baseline", "LiteRace", "(paper)",
         "Full logging", "(paper)", "LR MB/s", "Full MB/s"],
        rows,
        title=title,
    )
    return table + paper_note(
        "Paper averages: 1.47x / 9.09x with microbenchmarks, 1.28x / 7.51x "
        "without; log rates 28.6 / 396.5 MB/s (5.0 / 159.6 without "
        "microbenchmarks).  Our MB/s are in virtual-clock megabytes per "
        "second; ratios, not absolute rates, are the reproduction target."
    )


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
