"""Shared infrastructure for the per-table/per-figure experiment modules.

Each experiment module exposes ``run(scale, seeds) -> str`` returning the
rendered artifact and is runnable as a script::

    python -m repro.experiments.table3 [--scale 0.5] [--seeds 1,2,3]

The §5.3 detection study (one marked run per benchmark per seed) feeds
Table 3, Table 4, Figure 4 and Figure 5; it is memoized here so a session
regenerating several artifacts pays for it once.
"""

from __future__ import annotations

import argparse
from typing import Dict, Iterable, Optional, Tuple

from ..analysis.detection import DetectionStudy, run_detection_study
from ..analysis.overhead import OverheadRow, run_overhead_study
from ..core.samplers import SAMPLER_ORDER
from .. import workloads

__all__ = ["detection_study", "overhead_study", "experiment_main",
           "DEFAULT_SEEDS", "DEFAULT_SCALE", "paper_note"]

#: The paper runs each instrumented application three times (§5.3).
DEFAULT_SEEDS: Tuple[int, ...] = (1, 2, 3)

#: Default workload scale for experiment runs.  1.0 is the calibrated full
#: size; smaller values shrink iteration counts proportionally (faster,
#: noisier, and the rare/frequent threshold scales along automatically).
DEFAULT_SCALE = 1.0

_STUDY_CACHE: Dict[Tuple, DetectionStudy] = {}
_OVERHEAD_CACHE: Dict[Tuple, list] = {}


def detection_study(scale: float = DEFAULT_SCALE,
                    seeds: Iterable[int] = DEFAULT_SEEDS,
                    benchmarks: Optional[Tuple[str, ...]] = None,
                    samplers: Tuple[str, ...] = SAMPLER_ORDER) -> DetectionStudy:
    """The memoized §5.3 study shared by Tables 3-4 and Figures 4-5."""
    if benchmarks is None:
        benchmarks = tuple(workloads.race_eval_names())
    key = (scale, tuple(seeds), benchmarks, samplers)
    if key not in _STUDY_CACHE:
        _STUDY_CACHE[key] = run_detection_study(
            benchmarks=benchmarks, samplers=samplers,
            seeds=tuple(seeds), scale=scale,
        )
    return _STUDY_CACHE[key]


def overhead_study(scale: float = DEFAULT_SCALE,
                   seeds: Iterable[int] = (1,)) -> "list[OverheadRow]":
    """The memoized §5.4 study shared by Table 5 and Figure 6."""
    key = (scale, tuple(seeds))
    if key not in _OVERHEAD_CACHE:
        _OVERHEAD_CACHE[key] = run_overhead_study(seeds=tuple(seeds),
                                                  scale=scale)
    return _OVERHEAD_CACHE[key]


def paper_note(text: str) -> str:
    """Format the paper-reference footnote attached to each artifact."""
    return f"\n[paper] {text}"


def experiment_main(run_fn, description: str) -> None:
    """Argument parsing + execution for ``python -m repro.experiments.X``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seeds", type=str, default="1,2,3",
                        help="comma-separated scheduler seeds")
    args = parser.parse_args()
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    print(run_fn(scale=args.scale, seeds=seeds))
