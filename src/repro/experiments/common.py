"""Shared infrastructure for the per-table/per-figure experiment modules.

Each experiment module exposes ``run(scale, seeds, ...) -> str`` returning
the rendered artifact and is runnable as a script::

    python -m repro.experiments.table3 [--scale 0.5] [--seeds 1,2,3]
                                       [--jobs 4] [--no-cache]

The §5.3 detection study (one marked run per benchmark per seed) feeds
Table 3, Table 4, Figure 4 and Figure 5; the §5.4 overhead study feeds
Table 5 and Figure 6.  Both are decomposed into cells and executed by
:mod:`repro.experiments.engine` — in parallel across ``--jobs`` worker
processes and backed by the persistent artifact cache — then additionally
memoized in-process here, so a session regenerating several artifacts pays
for each cell at most once (and a warm cache pays nothing at all).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, Iterable, Optional, Tuple

from ..analysis.detection import DetectionStudy
from ..core.samplers import SAMPLER_ORDER
from .. import workloads
from . import engine

__all__ = ["detection_study", "overhead_study", "experiment_main",
           "add_engine_arguments", "configure_engine_from_args",
           "clear_memo", "DEFAULT_SEEDS", "DEFAULT_SCALE", "paper_note"]

#: The paper runs each instrumented application three times (§5.3).
DEFAULT_SEEDS: Tuple[int, ...] = (1, 2, 3)

#: Default workload scale for experiment runs.  1.0 is the calibrated full
#: size; smaller values shrink iteration counts proportionally (faster,
#: noisier, and the rare/frequent threshold scales along automatically).
DEFAULT_SCALE = 1.0

_STUDY_CACHE: Dict[Tuple, DetectionStudy] = {}
_OVERHEAD_CACHE: Dict[Tuple, list] = {}


def clear_memo() -> None:
    """Drop the in-process memo (not the on-disk cache).

    Used by tests that need to prove the *persistent* cache serves a
    regeneration, and by long-lived sessions that want fresh studies.
    """
    _STUDY_CACHE.clear()
    _OVERHEAD_CACHE.clear()


def detection_study(scale: float = DEFAULT_SCALE,
                    seeds: Iterable[int] = DEFAULT_SEEDS,
                    benchmarks: Optional[Tuple[str, ...]] = None,
                    samplers: Tuple[str, ...] = SAMPLER_ORDER,
                    jobs: Optional[int] = None,
                    use_cache: Optional[bool] = None) -> DetectionStudy:
    """The memoized §5.3 study shared by Tables 3-4 and Figures 4-5."""
    # Normalize *before* keying: a generator passed as ``seeds`` must not
    # be consumed by the key and empty by execution time.
    seeds = tuple(seeds)
    samplers = tuple(samplers)
    if benchmarks is None:
        benchmarks = tuple(workloads.race_eval_names())
    else:
        benchmarks = tuple(benchmarks)
    key = (scale, seeds, benchmarks, samplers)
    if key not in _STUDY_CACHE:
        _STUDY_CACHE[key] = engine.parallel_detection_study(
            scale=scale, seeds=seeds, benchmarks=benchmarks,
            samplers=samplers, jobs=jobs, use_cache=use_cache,
        )
    return _STUDY_CACHE[key]


def overhead_study(scale: float = DEFAULT_SCALE,
                   seeds: Iterable[int] = (1,),
                   benchmarks: Optional[Tuple[str, ...]] = None,
                   jobs: Optional[int] = None,
                   use_cache: Optional[bool] = None,
                   static_prune: bool = False) -> "list":
    """The memoized §5.4 study shared by Table 5 and Figure 6."""
    seeds = tuple(seeds)
    if benchmarks is None:
        benchmarks = tuple(workloads.overhead_eval_names())
    else:
        benchmarks = tuple(benchmarks)
    key = (scale, seeds, benchmarks, static_prune)
    if key not in _OVERHEAD_CACHE:
        _OVERHEAD_CACHE[key] = engine.parallel_overhead_rows(
            scale=scale, seeds=seeds, benchmarks=benchmarks,
            jobs=jobs, use_cache=use_cache, static_prune=static_prune,
        )
    return _OVERHEAD_CACHE[key]


def paper_note(text: str) -> str:
    """Format the paper-reference footnote attached to each artifact."""
    return f"\n[paper] {text}"


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The engine's shared command-line surface (also used by ``all``)."""
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent cells "
                             "(default: all cores)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent artifact cache "
                             "(see docs/experiment_engine.md)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress output")


def configure_engine_from_args(args: argparse.Namespace) -> Tuple[int, bool]:
    """Apply CLI flags to the engine; return (jobs, use_cache)."""
    jobs = args.jobs if args.jobs and args.jobs > 0 else (os.cpu_count() or 1)
    use_cache = not args.no_cache
    progress = None if args.quiet else \
        (lambda message: print(message, file=sys.stderr, flush=True))
    engine.configure(jobs=jobs, use_cache=use_cache, progress=progress)
    return jobs, use_cache


def experiment_main(run_fn, description: str) -> None:
    """Argument parsing + execution for ``python -m repro.experiments.X``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seeds", type=str, default="1,2,3",
                        help="comma-separated scheduler seeds")
    add_engine_arguments(parser)
    args = parser.parse_args()
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    jobs, use_cache = configure_engine_from_args(args)
    print(run_fn(scale=args.scale, seeds=seeds, jobs=jobs,
                 use_cache=use_cache))
