"""Ablations of LiteRace's design decisions.

The paper motivates several implementation choices qualitatively; these
experiments measure each:

1. **Atomic timestamping of CAS operations** (§4.2).  Programs that build
   their own locks from compare-and-exchange must have the CAS and its
   timestamp taken atomically; the paper reports that omitting the extra
   critical section "results in hundreds of false data races".  We run a
   correctly synchronized CAS-lock program with and without atomic
   timestamping and count the false races and merge inconsistencies.

2. **Allocation as page synchronization** (§4.3).  Without treating
   allocation routines as synchronization on the containing page, memory
   recycled between threads produces false races.

3. **128 hashed timestamp counters** (§4.2).  A single global counter
   serializes every sync op on one cache line; the hashed array removes
   the contention.  We sweep the counter count on the sync-heavy LKRHash.

4. **Sampler parameter sweep** (§3.4 / Table 3).  Burst length and
   back-off schedule trade detection for sampling rate.

5. **Loop-granularity sampling** (§7, future work).  Function-granularity
   sampling degenerates on compute kernels with hot inline loops; the
   ``split_loops`` rewriting restores a low effective sampling rate while
   preserving detection of the planted cold race.

6. **Lockset as the log consumer** (§2/§4.4).  The same sampled logs fed
   to an Eraser-style detector: sampling transfers, but the precision gap
   that made the paper choose happens-before is plainly visible.
"""

from __future__ import annotations

from typing import Iterable

from ..analysis.tables import format_percent, format_slowdown, format_table
from ..core.instrument import split_loops
from ..core.literace import LiteRace, run_baseline, run_marked
from ..core.samplers import thread_local_adaptive
from ..detector.hb import HappensBeforeDetector
from ..eventlog.events import SyncEvent
from ..runtime.scheduler import RandomInterleaver
from ..workloads.parsec_like import build_parsec_like
from ..workloads.synthetic import cas_lock_program, heap_churn_program
from .. import workloads
from .common import experiment_main, paper_note

__all__ = ["run", "atomic_timestamps", "alloc_as_sync",
           "counter_contention", "sampler_sweep", "loop_granularity",
           "lockset_consumer"]


def atomic_timestamps(scale: float = 1.0, seeds: Iterable[int] = (1, 2, 3)) -> str:
    """False races caused by torn CAS timestamps (§4.2)."""
    rows = []
    for seed in seeds:
        program = cas_lock_program(seed, threads=6,
                                   iterations=max(20, int(400 * scale)))
        for atomic in (True, False):
            tool = LiteRace(sampler="Full", atomic_timestamps=atomic,
                            seed=seed)
            result = tool.run(program)
            rows.append([
                seed,
                "atomic (extra critical section)" if atomic
                else "torn (no critical section)",
                result.report.num_static,
                result.report.num_dynamic,
                result.merge_inconsistencies,
            ])
    table = format_table(
        ["seed", "timestamping", "false static races",
         "false dynamic races", "merge inconsistencies"],
        rows,
        title="Ablation 1 (§4.2): atomic timestamping of user-level CAS locks",
    )
    return table + paper_note(
        "The program is correctly synchronized, so every reported race is "
        "false.  \"Our experience shows that this additional effort is "
        "absolutely essential in practice and otherwise results in hundreds "
        "of false data races.\""
    )


def alloc_as_sync(scale: float = 1.0, seeds: Iterable[int] = (1, 2, 3)) -> str:
    """False races on recycled heap memory (§4.3)."""
    rows = []
    for seed in seeds:
        program = heap_churn_program(seed, threads=6,
                                     iterations=max(10, int(250 * scale)))
        for enabled in (True, False):
            tool = LiteRace(sampler="Full", alloc_as_sync=enabled, seed=seed)
            result = tool.run(program)
            rows.append([
                seed,
                "alloc = page sync" if enabled else "alloc ignored",
                result.report.num_static,
                result.report.num_dynamic,
            ])
    table = format_table(
        ["seed", "allocation handling", "false static races",
         "false dynamic races"],
        rows,
        title="Ablation 2 (§4.3): allocation routines as page "
              "synchronization",
    )
    return table + paper_note(
        "\"A naive detector might report a data-race between accesses to "
        "the reallocated memory with accesses performed during a prior "
        "allocation.\""
    )


def counter_contention(scale: float = 1.0,
                       seeds: Iterable[int] = (1,)) -> str:
    """Timestamp-counter contention on the sync-heavy LKRHash (§4.2)."""
    seed = next(iter(seeds))
    program = workloads.build("lkrhash", seed=seed, scale=max(scale, 0.05))
    base = run_baseline(program, seed=seed)
    rows = []
    for counters in (1, 8, 128, 1024):
        tool = LiteRace(sampler="TL-Ad", num_counters=counters, seed=seed)
        result = tool.run(program)
        rows.append([
            counters,
            format_slowdown(result.run.clock / base.baseline_time),
            f"{result.run.sync_log_cycles:,}",
        ])
    table = format_table(
        ["timestamp counters", "LiteRace slowdown", "sync-log cycles"],
        rows,
        title="Ablation 3 (§4.2): one global timestamp counter vs 128 "
              "hashed counters (LKRHash)",
    )
    return table + paper_note(
        "\"The contention introduced by this global counter can "
        "dramatically slow down the performance of LiteRace-instrumented "
        "programs on multi-processors.\""
    )


def sampler_sweep(scale: float = 0.5, seeds: Iterable[int] = (1,)) -> str:
    """Burst length and back-off schedule sweep on Apache-1."""
    seed = next(iter(seeds))
    program = workloads.build("apache-1", seed=seed, scale=scale)
    variants = []
    for burst in (2, 5, 10, 20):
        variants.append((f"burst={burst}, paper schedule",
                         thread_local_adaptive(burst_length=burst)))
    for label, schedule in [
        ("burst=10, floor 1%", (1.0, 0.1, 0.01)),
        ("burst=10, floor 0.01%", (1.0, 0.1, 0.01, 0.001, 0.0001)),
        ("burst=10, steep (100%, 1%, 0.1%)", (1.0, 0.01, 0.001)),
    ]:
        variants.append((label, thread_local_adaptive(schedule=schedule)))
    # Distinct short names so the marked harness can tell them apart.
    samplers = []
    for index, (label, sampler) in enumerate(variants):
        sampler.short_name = f"V{index}"
        samplers.append(sampler)
    marked = run_marked(program, samplers,
                        scheduler=RandomInterleaver(seed), seed=seed)
    detector = HappensBeforeDetector()
    detector.feed_all(marked.log.events)
    full = detector.report.static_races
    rows = []
    for index, (label, _) in enumerate(variants):
        bit = marked.harness.sampler_bit(f"V{index}")
        sub = HappensBeforeDetector()
        sub.feed_all(
            e for e in marked.log.events
            if isinstance(e, SyncEvent) or (e.mask & (1 << bit))
        )
        detected = sub.report.static_races & full
        esr = marked.log.memory_logged_by(bit) / max(1, marked.log.memory_count)
        rows.append([
            label,
            format_percent(esr),
            f"{len(detected)}/{len(full)}",
            format_percent(len(detected) / len(full) if full else 1.0),
        ])
    table = format_table(
        ["TL-Ad variant", "ESR", "races", "detection"],
        rows,
        title="Ablation 4 (§3.4): burst length and back-off schedule "
              "(Apache-1)",
    )
    return table + paper_note(
        "The paper fixes burst length 10 and schedule 100%/10%/1%/0.1%; "
        "this sweep shows the trade-off those defaults buy."
    )


def loop_granularity(scale: float = 0.5, seeds: Iterable[int] = (1,)) -> str:
    """§7: loop splitting restores sampling on compute kernels."""
    seed = next(iter(seeds))
    program = build_parsec_like(seed=seed, scale=scale)
    split = split_loops(program, min_trip_count=1000, chunk=100)
    rows = []
    for label, prog in (("function granularity", program),
                        ("loop granularity (split_loops)", split)):
        # split_loops re-finalizes PCs and translates the ground truth.
        planted = {k for p in prog.planted_races for k in p.keys}
        base = run_baseline(prog, seed=seed)
        result = LiteRace(sampler="TL-Ad", seed=seed).run(prog)
        found = len(planted & result.report.static_races)
        rows.append([
            label,
            prog.num_functions,
            format_percent(result.effective_sampling_rate),
            format_slowdown(result.run.clock / base.baseline_time),
            f"{found}/{len(planted)}",
        ])
    table = format_table(
        ["configuration", "#fns", "ESR", "LiteRace slowdown",
         "planted races found"],
        rows,
        title="Ablation 5 (§7): loop-granularity sampling on a "
              "PARSEC-like kernel",
    )
    return table + paper_note(
        "\"Sampling at a loop-level granularity might help improve the "
        "efficiency of LiteRace for these applications.\""
    )


def lockset_consumer(scale: float = 0.5, seeds: Iterable[int] = (1,)) -> str:
    """§2/§4.4: the sampler feeding a lockset detector instead.

    The paper chose happens-before for the offline analysis but notes the
    sampling approach "could equally well be applied to a lockset-based
    algorithm".  This ablation runs Eraser over the same marked log: the
    thread-local sampler preserves most of lockset's detections too — and
    the precision gap (false positives on non-lock synchronization) is
    visible in the extra reports.
    """
    from ..detector.lockset import LocksetDetector

    seed = next(iter(seeds))
    program = workloads.build("apache-1", seed=seed, scale=scale)
    marked = run_marked(program, ["TL-Ad"],
                        scheduler=RandomInterleaver(seed), seed=seed)
    planted = {k for p in program.planted_races for k in p.keys}

    def run_detectors(events):
        events = list(events)
        hb = HappensBeforeDetector()
        hb.feed_all(events)
        ls = LocksetDetector()
        ls.feed_all(events)
        return hb.report, ls.report

    hb_full, ls_full = run_detectors(marked.log.events)
    sampled_events = [
        e for e in marked.log.events
        if isinstance(e, SyncEvent) or (e.mask & 1)
    ]
    hb_sampled, ls_sampled = run_detectors(sampled_events)

    def row(label, hb_report, ls_report):
        hb_true = len(hb_report.static_races & planted)
        ls_addrs = ls_report.addresses
        true_addrs = {hb_report.examples[k].addr
                      for k in hb_report.static_races}
        return [
            label,
            f"{hb_true}/{len(planted)}",
            len(hb_report.static_races - planted),
            len(ls_addrs),
            len(ls_addrs - hb_full.addresses),
        ]

    table = format_table(
        ["log", "HB races (true)", "HB false", "lockset racy addrs",
         "lockset-only (imprecise)"],
        [row("full", hb_full, ls_full),
         row("TL-Ad sampled", hb_sampled, ls_sampled)],
        title="Ablation 6 (§2/§4.4): happens-before vs lockset as the "
              "log consumer (Apache-1)",
    )
    return table + paper_note(
        "\"Our approach to sampling could equally well be applied to a "
        "lockset-based algorithm\" — but lockset cannot see event/fork "
        "synchronization and reports extra (false) racy addresses even on "
        "the full log, which is why LiteRace uses happens-before."
    )


def run(scale: float = 1.0, seeds: Iterable[int] = (1, 2, 3),
        jobs: int = None, use_cache: bool = None) -> str:
    # The ablations vary tool internals (cost constants, custom sampler
    # objects, instrumentation passes), so they run outside the engine's
    # cell cache; ``jobs``/``use_cache`` are accepted for CLI uniformity.
    seeds = tuple(seeds)
    parts = [
        atomic_timestamps(scale, seeds),
        alloc_as_sync(scale, seeds),
        # Contention is a per-sync-op ratio, independent of run length; a
        # reduced scale keeps the 4-configuration sweep quick.
        counter_contention(min(scale, 0.3), seeds[:1]),
        sampler_sweep(min(scale, 0.5), seeds[:1]),
        loop_granularity(min(scale, 0.5), seeds[:1]),
        lockset_consumer(min(scale, 0.5), seeds[:1]),
    ]
    return "\n\n".join(parts)


if __name__ == "__main__":
    experiment_main(run, __doc__.splitlines()[0])
