"""Deterministic trace generation from a scenario's traffic profile.

A *trace* is the request-level view of a scenario: a seeded sequence of
(op, key) items drawn from the :class:`~repro.scenarios.spec.TrafficSpec`
mix, grouped into bursts (a burst models one client session — the load
generator replays each burst's requests through one template).  The same
(spec, seed, requests) triple always yields the same trace, so a loadgen
run is reproducible end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from .spec import ScenarioSpec

__all__ = ["TrafficItem", "generate_trace", "bursts"]


@dataclass(frozen=True)
class TrafficItem:
    """One generated request."""

    index: int
    op: str
    key: int
    #: The burst (client session) this request belongs to.
    burst: int


def generate_trace(spec: ScenarioSpec, requests: Optional[int] = None,
                   seed: int = 0) -> List[TrafficItem]:
    """Generate ``requests`` items (default: the profile's nominal volume)."""
    traffic = spec.traffic
    if requests is None:
        requests = traffic.requests
    if requests < 1:
        raise ValueError("requests must be >= 1")
    rng = random.Random(f"{seed}:{spec.name}:{requests}")
    ops = [op for op, _ in traffic.mix]
    weights = [weight for _, weight in traffic.mix]
    return [
        TrafficItem(
            index=index,
            op=rng.choices(ops, weights=weights)[0],
            key=rng.randrange(traffic.key_space),
            burst=index // traffic.burst,
        )
        for index in range(requests)
    ]


def bursts(trace: List[TrafficItem]) -> Iterator[List[TrafficItem]]:
    """Group a trace into its bursts, in order."""
    current: List[TrafficItem] = []
    for item in trace:
        if current and item.burst != current[-1].burst:
            yield current
            current = []
        current.append(item)
    if current:
        yield current
