"""Lower a validated :class:`ScenarioSpec` into a TIR program.

The compiled shape follows the hand-written service models
(docs/workload_design.md):

* every pool thread runs ``io(stagger * t)`` first, so thread starts are
  staggered and global samplers cannot free-ride on one cold prefix;
* per-request traffic is compiled into a hot ``<pool>_request`` helper and
  batch traffic into ``<pool>_flush`` — sampling decisions happen at call
  granularity, and lock traffic stays at chunk granularity so
  happens-before edges do not accidentally order the planted races;
* cold races are wired through fork arguments: *every* thread of the
  race's pools calls the racy helper, but only the designated racers (the
  latest spawns, chosen round-robin from the back of each pool) receive
  the shared address — everyone else gets a private one, exactly like a
  worker that never happens to hit the cold path;
* frequent races fire once per chunk in every thread of their pools, and
  ``hot=True`` races additionally run the helper on thread-private TLS
  once per request, producing the hot-cold archetype that sets sampler
  detection ceilings.

Compile-time checks extend the spec's structural validation with the
rules that need concrete scale/layout: queue push/pop balance per
instance, region role disjointness (a region may be config-read, lock
guarded, or an atomic target — never two of those), and single-lock
ownership per guarded region.  Violations raise
:class:`~repro.scenarios.spec.ScenarioError` naming the culprit.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set, Tuple

from ..tir.addr import Indexed, Param
from ..tir.builder import ProgramBuilder
from ..tir.program import Program
from ..workloads.patterns import RacePlan, RacyHelper
from .blocks import (QUEUE_INIT_OFFSETS, QUEUE_SLOTS, binding_key,
                     emit_lock_update, emit_queue_helpers, emit_step,
                     needs_heap_slot)
from .spec import PoolSpec, RaceSpec, ScenarioError, ScenarioSpec

__all__ = ["compile_scenario", "designated_racers"]

#: TLS offsets used by hot-race helper calls, spaced clear of the small
#: slots ``tls_churn`` touches and of each helper's payload reads.
_HOT_TLS_BASE = 1024
_HOT_TLS_STRIDE = 128


def designated_racers(spec: ScenarioSpec,
                      race: RaceSpec) -> Set[Tuple[str, int]]:
    """The (pool, thread) pairs that receive the shared address.

    Cold racers are the *latest* spawns: threads are picked from the back
    of each listed pool, round-robin across pools, so the racing first
    executions land after the run has warmed up (the §3.4 shape).
    """
    remaining = {name: list(range(spec.pool(name).threads))
                 for name in race.pools}
    chosen: Set[Tuple[str, int]] = set()
    while len(chosen) < race.racers:
        progressed = False
        for name in race.pools:
            if len(chosen) >= race.racers:
                break
            if remaining[name]:
                chosen.add((name, remaining[name].pop()))
                progressed = True
        if not progressed:  # pragma: no cover - spec.validate precludes it
            raise ScenarioError(f"race {race.name!r}: not enough threads")
    return chosen


def _pool_bindings(pool: PoolSpec) -> Tuple[List[str], List[str]]:
    """Ordered unique binding keys for the body and flush helpers."""
    body: List[str] = []
    for step in pool.body:
        key = binding_key(step)
        if key and key not in body:
            body.append(key)
    flush: List[str] = []
    for step in pool.flush:
        key = binding_key(step)
        if key and key not in flush:
            flush.append(key)
    return body, flush


def _check_region_roles(spec: ScenarioSpec) -> None:
    """No region may serve two access disciplines.

    ``config_read`` regions are read unsynchronized (safe only because
    nothing ever writes them after main), lock guards are written under
    their lock, and ``atomic`` targets are sync variables.  Mixing any
    two on one region would manufacture unplanted races or alias sync
    and data addresses — both break the ground-truth invariant.
    """
    roles: Dict[str, Set[str]] = {}
    guard_owner: Dict[str, str] = {}
    for lock in spec.locks:
        for guarded in lock.guards:
            if guarded in guard_owner and guard_owner[guarded] != lock.name:
                raise ScenarioError(
                    f"region {guarded!r} guarded by two locks "
                    f"({guard_owner[guarded]!r} and {lock.name!r}); pick one")
            guard_owner[guarded] = lock.name
            roles.setdefault(guarded, set()).add("lock-guarded")
    for pool in spec.pools:
        for step in pool.body + pool.flush:
            if step.op == "config_read":
                roles.setdefault(step.target, set()).add("config-read")
            elif step.op == "atomic":
                roles.setdefault(step.target, set()).add("atomic")
    for region, found in sorted(roles.items()):
        if len(found) > 1:
            raise ScenarioError(
                f"region {region!r} used as {' and '.join(sorted(found))}; "
                f"a region may serve exactly one access discipline")


def _queue_instance(step, thread: int, instances: int) -> int:
    if step.instance == "own":
        return thread
    if step.instance == "next":
        return (thread + 1) % instances
    return 0


def _check_queue_balance(spec: ScenarioSpec, scale: float) -> None:
    """Total pushes must equal total pops per queue instance at ``scale``.

    Pops block on a counting event, so an imbalance is a hang (missing
    pushes) or leftover items (missing pops) — either way a broken
    scenario.  Checked against the *scaled* chunk counts, so catalog
    scenarios must keep their requests/chunk ratios aligned across
    queue-coupled pools (rounding then preserves balance at any scale).
    """
    pushes: Counter = Counter()
    pops: Counter = Counter()
    for pool in spec.pools:
        chunks = pool.chunks(scale)
        per_thread = chunks * pool.chunk
        for thread in range(pool.threads):
            for steps, reps in ((pool.body, per_thread),
                                (pool.flush, chunks)):
                for step in steps:
                    if step.op not in ("queue_push", "queue_pop"):
                        continue
                    region = spec.region(step.target)
                    key = (step.target,
                           _queue_instance(step, thread, region.instances))
                    count = step.count * reps
                    if step.op == "queue_push":
                        pushes[key] += count
                    else:
                        pops[key] += count
    for key in sorted(set(pushes) | set(pops)):
        if pushes[key] != pops[key]:
            region, instance = key
            raise ScenarioError(
                f"queue {region!r} instance {instance}: {pushes[key]} "
                f"pushes vs {pops[key]} pops at scale {scale:g}; adjust "
                f"pool requests/chunk ratios until they balance")


def compile_scenario(spec: ScenarioSpec, seed: int = 0,
                     scale: float = 1.0) -> Program:
    """Compile ``spec`` into a TIR :class:`Program` with planted ground
    truth attached.

    ``seed`` is accepted for registry-builder compatibility; the program
    structure is a pure function of (spec, scale) — scheduling randomness
    belongs to the interleaving seed, not the build.
    """
    spec.validate()
    if scale <= 0:
        raise ScenarioError(f"{spec.name}: scale must be positive")
    _check_region_roles(spec)
    _check_queue_balance(spec, scale)
    for race in spec.races:
        if not race.write:
            raise ScenarioError(
                f"race {race.name!r}: a planted site needs write access "
                f"(read-only sites produce no racy pair)")

    b = ProgramBuilder(spec.name)
    plan = RacePlan()

    # -- static data layout ------------------------------------------------
    data_bases: Dict[str, int] = {}
    queue_bases: Dict[str, List[int]] = {}
    for region in spec.regions:
        if region.kind == "data":
            data_bases[region.name] = b.global_array(
                region.name, region.elements, region.stride)
        else:
            queue_bases[region.name] = [
                b.global_array(f"{region.name}__q{i}", QUEUE_SLOTS, 8)
                for i in range(region.instances)]
    part_bases: Dict[Tuple[str, str], int] = {}
    for pool in spec.pools:
        for step in pool.body + pool.flush:
            if step.op != "own_rw":
                continue
            key = (pool.name, step.target)
            if key not in part_bases:
                region = spec.region(step.target)
                part_bases[key] = b.global_array(
                    f"{step.target}__{pool.name}_part",
                    pool.threads * region.elements, region.stride)
    lock_addrs = {lock.name: b.global_addr(f"lock_{lock.name}")
                  for lock in spec.locks}

    # -- shared helper functions ------------------------------------------
    for region in spec.regions:
        if region.kind == "queue":
            emit_queue_helpers(b, region.name)
    for lock in spec.locks:
        emit_lock_update(b, spec, lock, lock_addrs[lock.name], data_bases)

    helpers: Dict[str, RacyHelper] = {}
    for race in spec.races:
        helpers[race.name] = RacyHelper(
            b, plan, race.name, read=race.read, write=race.write,
            payload_reads=race.payload_reads, expect_rare=race.expect_rare)
    cold_map = {race.name: designated_racers(spec, race)
                for race in spec.races if race.rate == "cold"}

    # -- per-pool request / flush / worker ---------------------------------
    worker_params: Dict[str, Dict[str, int]] = {}
    pool_races: Dict[str, Dict[str, List[RaceSpec]]] = {}
    for pool in spec.pools:
        body_binds, flush_binds = _pool_bindings(pool)
        all_binds = body_binds + [k for k in flush_binds
                                  if k not in body_binds]
        cold = [r for r in spec.races
                if r.rate == "cold" and pool.name in r.pools]
        frequent = [r for r in spec.races
                    if r.rate == "frequent" and pool.name in r.pools]
        hot = [r for r in spec.races if r.hot and pool.name in r.pools]
        pool_races[pool.name] = {"cold": cold, "frequent": frequent}

        # Worker parameter layout: p0 stagger, then one per binding, then
        # one racy-helper target per cold race this pool participates in.
        index = {key: 1 + i for i, key in enumerate(all_binds)}
        race_index = {r.name: 1 + len(all_binds) + i
                      for i, r in enumerate(cold)}
        worker_params[pool.name] = {**index,
                                    **{f"race:{n}": i
                                       for n, i in race_index.items()}}

        local = {key: i for i, key in enumerate(body_binds)}
        slots = 1 if needs_heap_slot(pool.body) else 0
        with b.function(f"{pool.name}_request", params=len(body_binds),
                        slots=slots) as f:
            for step in pool.body:
                emit_step(f, spec, step, data_bases, local)
            for race in hot:
                offset = _HOT_TLS_BASE + _HOT_TLS_STRIDE * \
                    list(spec.races).index(race)
                helpers[race.name].call_tls(f, offset)

        if pool.flush:
            local = {key: i for i, key in enumerate(flush_binds)}
            slots = 1 if needs_heap_slot(pool.flush) else 0
            with b.function(f"{pool.name}_flush", params=len(flush_binds),
                            slots=slots) as f:
                for step in pool.flush:
                    emit_step(f, spec, step, data_bases, local)

        chunks = pool.chunks(scale)
        with b.function(f"{pool.name}_worker",
                        params=1 + len(all_binds) + len(cold)) as f:
            f.io(Param(0))
            for race in cold:
                if race.placement == "start":
                    helpers[race.name].call_with(
                        f, Param(race_index[race.name]))
            with f.loop(chunks):
                # Frequent races fire at chunk *start*: the first chunk's
                # call then precedes every lock/wait the thread will ever
                # take, so each thread's opening call is concurrent with
                # every other thread's calls no matter how the scheduler
                # orders the lock traffic later in the chunk.
                for race in frequent:
                    helpers[race.name].call_shared(f)
                with f.loop(pool.chunk):
                    if pool.io_per_request:
                        f.io(pool.io_per_request)
                    f.call(f"{pool.name}_request",
                           *(Param(index[k]) for k in body_binds))
                if pool.flush:
                    f.call(f"{pool.name}_flush",
                           *(Param(index[k]) for k in flush_binds))
            for race in cold:
                if race.placement == "end":
                    helpers[race.name].call_with(
                        f, Param(race_index[race.name]))

    # -- main: init, warmups, fork/join ------------------------------------
    with b.function("main", slots=spec.total_threads) as f:
        for region in spec.regions:
            if region.kind == "data":
                with f.loop(region.elements):
                    f.write(Indexed(data_bases[region.name],
                                    region.stride, 0))
            else:
                for base in queue_bases[region.name]:
                    for offset in QUEUE_INIT_OFFSETS:
                        f.write(base + offset)
        for race in spec.races:
            if race.warmup:
                with f.loop(race.warmup):
                    helpers[race.name].call_private(f, "main")
                    f.compute(1)
        slot = 0
        for pool in spec.pools:
            params = worker_params[pool.name]
            bindings = [k for k in sorted(params, key=params.get)
                        if not k.startswith("race:")]
            cold = pool_races[pool.name]["cold"]
            for thread in range(pool.threads):
                args: List[int] = [pool.stagger * thread]
                for key in bindings:
                    args.append(_resolve_binding(
                        spec, pool, key, thread, part_bases, queue_bases))
                for race in cold:
                    helper = helpers[race.name]
                    if (pool.name, thread) in cold_map[race.name]:
                        args.append(helper.shared)
                    else:
                        args.append(helper.private_addr(
                            f"{pool.name}{thread}"))
                f.fork(f"{pool.name}_worker", *args, tid_slot=slot)
                slot += 1
        for tid_slot in range(spec.total_threads):
            f.join(tid_slot)

    program = b.build(entry="main")
    return plan.attach(program)


def _resolve_binding(spec: ScenarioSpec, pool: PoolSpec, key: str,
                     thread: int, part_bases: Dict[Tuple[str, str], int],
                     queue_bases: Dict[str, List[int]]) -> int:
    """The fork-argument value of one binding for one pool thread."""
    kind, _, rest = key.partition(":")
    if kind == "part":
        region = spec.region(rest)
        return part_bases[(pool.name, rest)] + \
            thread * region.elements * region.stride
    region_name, _, selector = rest.partition(":")
    instances = queue_bases[region_name]
    if selector == "own":
        return instances[thread]
    if selector == "next":
        return instances[(thread + 1) % len(instances)]
    return instances[0]
