"""The shipped scenario catalog: four service-shaped workloads.

Each scenario is pure data — a :class:`~repro.scenarios.spec.ScenarioSpec`
built here and compiled on demand — and registers through the ordinary
:mod:`repro.workloads` registry (tagged ``"scenario"``, outside the fixed
paper evaluation sets), so ``repro run``, the experiment engine, the
static pass and the validation engine consume it like any hand-written
benchmark module.

The four shapes cover the service patterns the hand-written suite lacks:

* ``kv-store`` — reader/writer pools over a shared table: config-read
  lookups, per-thread journals/caches, two locked indices; no queues, so
  it is the safe target for thread-count contention sweeps.
* ``web-server`` — one acceptor feeding a worker pool through a
  connection queue (the Apache shape, but queue-coupled).
* ``pipeline`` — a three-stage producer/consumer chain over two bounded
  channels (the Dryad shape, generalized).
* ``work-steal`` — per-thread deques with ring-neighbor stealing at
  chunk boundaries.

Every scenario plants four races spanning the §3.4 archetypes: a
warmed-cold start race, a cold-cold teardown race, a warm-frequent
per-chunk race, and a hot-cold race (``hot=True`` drives the helper's
per-function sampling rate to the floor before the shared calls land).
"""

from __future__ import annotations

import functools
from typing import Dict, List

from ..tir.program import Program
from ..workloads import spec as registry
from .compile import compile_scenario
from .spec import (LockSpec, PoolSpec, RaceSpec, RegionSpec, ScenarioSpec,
                   StepSpec, TrafficSpec)

__all__ = ["CATALOG", "scenario", "scenario_names", "register_catalog"]


def _steps(*rows) -> tuple:
    return tuple(StepSpec.from_dict(row) for row in rows)


def _kv_store() -> ScenarioSpec:
    return ScenarioSpec(
        name="kv-store",
        title="Key-value store (reader/writer pools)",
        description="Readers scan a main-initialized table and a private "
                    "cache; writers append to private journals and publish "
                    "through two locked indices.",
        regions=(
            RegionSpec("table", elements=64),
            RegionSpec("index", elements=8),
            RegionSpec("stats", elements=4),
            RegionSpec("journal", elements=8),
            RegionSpec("cache", elements=8),
        ),
        locks=(
            LockSpec("stats_lock", guards=("stats",)),
            LockSpec("index_lock", guards=("index",)),
        ),
        pools=(
            PoolSpec(
                "readers", threads=6, requests=288, chunk=24,
                stagger=20_000, io_per_request=400,
                body=_steps(["config_read", "table", 6],
                            ["own_rw", "cache", 2],
                            ["tls", "", 1],
                            ["compute", "", 2]),
                flush=_steps(["locked_update", "stats_lock"]),
            ),
            PoolSpec(
                "writers", threads=2, requests=96, chunk=12,
                stagger=30_000, io_per_request=800,
                body=_steps(["own_rw", "journal", 4],
                            ["compute", "", 3],
                            ["tls", "", 1]),
                flush=_steps(["locked_update", "index_lock"],
                             ["locked_update", "stats_lock"]),
            ),
        ),
        races=(
            RaceSpec("shard_init", pools=("readers", "writers"),
                     rate="cold", placement="start", warmup=30,
                     payload_reads=2),
            RaceSpec("evict_scan", pools=("readers",),
                     rate="cold", placement="end"),
            RaceSpec("hit_counter", pools=("readers", "writers"),
                     rate="frequent", warmup=40),
            RaceSpec("ttl_probe", pools=("readers",), rate="cold",
                     placement="end", read=False, hot=True),
        ),
        traffic=TrafficSpec(requests=2048,
                            mix=(("get", 8), ("put", 2), ("scan", 1)),
                            key_space=64, burst=8),
    )


def _web_server() -> ScenarioSpec:
    # The acceptor and the worker pool keep requests/chunk == 16 so the
    # scaled chunk counts match and the connection queue stays balanced
    # at every scale (compile-time checked).
    return ScenarioSpec(
        name="web-server",
        title="Web server (accept loop + worker pool)",
        description="A single acceptor pushes connections onto a queue; "
                    "eight workers pop, consult a read-only vhost table, "
                    "churn request-scoped heap blocks and publish to a "
                    "locked scoreboard per chunk.",
        regions=(
            RegionSpec("vhosts", elements=32),
            RegionSpec("scoreboard", elements=4),
            RegionSpec("connq", kind="queue", instances=1),
        ),
        locks=(LockSpec("sb_lock", guards=("scoreboard",)),),
        pools=(
            PoolSpec(
                "acceptor", threads=1, requests=1024, chunk=64,
                stagger=0, io_per_request=100,
                body=_steps(["queue_push", "connq"],
                            ["tls", "", 1],
                            ["compute", "", 1]),
            ),
            PoolSpec(
                "workers", threads=8, requests=128, chunk=8,
                stagger=25_000, io_per_request=600,
                body=_steps(["queue_pop", "connq"],
                            ["config_read", "vhosts", 4],
                            ["alloc_churn", "", 3],
                            ["tls", "", 2],
                            ["compute", "", 2]),
                flush=_steps(["locked_update", "sb_lock"]),
            ),
        ),
        races=(
            RaceSpec("mime_init", pools=("workers",), rate="cold",
                     placement="start", warmup=30, payload_reads=1),
            RaceSpec("log_rotate", pools=("acceptor", "workers"),
                     rate="cold", placement="end"),
            RaceSpec("accept_stats", pools=("acceptor", "workers"),
                     rate="frequent", warmup=20),
            RaceSpec("conn_cache", pools=("workers",), rate="cold",
                     placement="end", read=False, hot=True),
        ),
        traffic=TrafficSpec(requests=2048,
                            mix=(("GET", 8), ("POST", 2), ("HEAD", 1)),
                            key_space=128, burst=16),
    )


def _pipeline() -> ScenarioSpec:
    # All three stages share requests/chunk, so both channels balance.
    return ScenarioSpec(
        name="pipeline",
        title="Producer-consumer pipeline (three stages)",
        description="Sources generate items into channel q1, transforms "
                    "move them to q2, sinks drain them; the middle and "
                    "final stages publish a locked depth gauge per chunk.",
        regions=(
            RegionSpec("srcbuf", elements=8),
            RegionSpec("sinkbuf", elements=8),
            RegionSpec("depth_stats", elements=4),
            RegionSpec("q1", kind="queue", instances=1),
            RegionSpec("q2", kind="queue", instances=1),
        ),
        locks=(LockSpec("depth_lock", guards=("depth_stats",)),),
        pools=(
            PoolSpec(
                "sources", threads=2, requests=256, chunk=16,
                stagger=15_000, io_per_request=300,
                body=_steps(["own_rw", "srcbuf", 2],
                            ["compute", "", 2],
                            ["queue_push", "q1"]),
            ),
            PoolSpec(
                "transforms", threads=2, requests=256, chunk=16,
                stagger=20_000,
                body=_steps(["queue_pop", "q1"],
                            ["compute", "", 3],
                            ["tls", "", 1],
                            ["queue_push", "q2"]),
                flush=_steps(["locked_update", "depth_lock"]),
            ),
            PoolSpec(
                "sinks", threads=2, requests=256, chunk=16,
                stagger=25_000, io_per_request=500,
                body=_steps(["queue_pop", "q2"],
                            ["own_rw", "sinkbuf", 2],
                            ["compute", "", 1]),
                flush=_steps(["locked_update", "depth_lock"]),
            ),
        ),
        races=(
            RaceSpec("buffer_pool_init", pools=("transforms", "sinks"),
                     rate="cold", placement="start", warmup=25,
                     payload_reads=2),
            RaceSpec("stage_teardown", pools=("sources", "sinks"),
                     rate="cold", placement="end"),
            RaceSpec("depth_gauge", pools=("transforms", "sinks"),
                     rate="frequent", warmup=30),
            RaceSpec("checksum_slot", pools=("transforms",), rate="cold",
                     placement="end", read=False, hot=True),
        ),
        traffic=TrafficSpec(requests=1536, mix=(("item", 1),),
                            key_space=32, burst=8),
    )


def _work_steal() -> ScenarioSpec:
    # Consumption is thief-side only: each worker pushes tasks onto its
    # own deque and takes work from its ring neighbor (pops block in TIR,
    # so owner self-pops could be starved by a thief stealing the item
    # first — a real deadlock, not a modelling nicety).  Totals balance
    # per instance by ring symmetry, and pushes precede pops in every
    # chunk, so the ring cannot cycle-block.
    return ScenarioSpec(
        name="work-steal",
        title="Work-stealing deque ring",
        description="Four workers push tasks onto per-thread deques (one "
                    "queue instance per thread) and take work from their "
                    "ring neighbor, with a two-task steal burst and a "
                    "locked stats update at chunk boundaries.",
        regions=(
            RegionSpec("taskbuf", elements=8),
            RegionSpec("pool_stats", elements=4),
            RegionSpec("deques", kind="queue", instances=4),
        ),
        locks=(LockSpec("pool_lock", guards=("pool_stats",)),),
        pools=(
            PoolSpec(
                "workers", threads=4, requests=256, chunk=16,
                stagger=20_000, io_per_request=200,
                body=_steps({"op": "queue_push", "target": "deques",
                             "instance": "own"},
                            {"op": "queue_pop", "target": "deques",
                             "instance": "next"},
                            ["own_rw", "taskbuf", 2],
                            ["compute", "", 2],
                            ["tls", "", 1]),
                flush=_steps({"op": "queue_push", "target": "deques",
                              "count": 2, "instance": "own"},
                             {"op": "queue_pop", "target": "deques",
                              "count": 2, "instance": "next"},
                             ["locked_update", "pool_lock"]),
            ),
        ),
        races=(
            RaceSpec("deque_grow", pools=("workers",), rate="cold",
                     placement="start", warmup=20, payload_reads=1),
            RaceSpec("idle_flag", pools=("workers",), rate="cold",
                     placement="end", read=False),
            RaceSpec("steal_stats", pools=("workers",), rate="frequent",
                     warmup=25),
            RaceSpec("task_hash", pools=("workers",), rate="cold",
                     placement="end", hot=True),
        ),
        traffic=TrafficSpec(requests=1024,
                            mix=(("spawn", 2), ("steal", 1)),
                            key_space=16, burst=8),
    )


#: The shipped scenarios, in presentation order, validated at import.
CATALOG: tuple = tuple(
    build().validate() for build in
    (_kv_store, _web_server, _pipeline, _work_steal))

_BY_NAME: Dict[str, ScenarioSpec] = {s.name: s for s in CATALOG}


def scenario(name: str) -> ScenarioSpec:
    """Look up a shipped scenario by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; known: "
                         f"{', '.join(scenario_names())}") from None


def scenario_names() -> List[str]:
    return [s.name for s in CATALOG]


def _build_by_name(name: str, seed: int = 0, scale: float = 1.0) -> Program:
    # Module-level + functools.partial keeps registry builders picklable
    # for the experiment engine's process pool.
    return compile_scenario(scenario(name), seed=seed, scale=scale)


def register_catalog() -> None:
    """Register every catalog scenario as an ordinary workload.

    Scenarios stay outside the fixed paper evaluation sets (Table 4/5
    membership is the paper's, not ours) but participate in everything
    keyed off ``workloads.names()``: the static-pruning ablation, the
    differential tests, ``repro run``/``staticpass``/``validate``.
    Idempotent so repeated imports do not trip the duplicate guard.
    """
    for spec in CATALOG:
        if spec.name in registry.names():
            continue
        registry.register(registry.WorkloadSpec(
            name=spec.name,
            title=spec.title,
            description=spec.description,
            builder=functools.partial(_build_by_name, spec.name),
            in_race_eval=False,
            in_overhead_eval=False,
            tags=("scenario",),
        ))
