"""Declarative service-shaped workloads (the scenario subsystem).

A scenario is data: thread pools, shared regions, lock disciplines and
planted-race placement in a :class:`ScenarioSpec`, compiled into a TIR
program by :func:`compile_scenario` and registered as an ordinary
workload.  See docs/scenarios.md for the spec format and
:mod:`repro.scenarios.catalog` for the four shipped scenarios.
"""

from .spec import (
    LockSpec,
    PoolSpec,
    RaceSpec,
    RegionSpec,
    ScenarioError,
    ScenarioSpec,
    StepSpec,
    TrafficSpec,
)
from .compile import compile_scenario, designated_racers
from .catalog import CATALOG, register_catalog, scenario, scenario_names

__all__ = [
    "ScenarioError",
    "RegionSpec",
    "LockSpec",
    "StepSpec",
    "PoolSpec",
    "RaceSpec",
    "TrafficSpec",
    "ScenarioSpec",
    "compile_scenario",
    "designated_racers",
    "CATALOG",
    "scenario",
    "scenario_names",
    "register_catalog",
]
