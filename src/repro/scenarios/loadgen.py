"""Trace-driven load generation against a running telemetry server.

``repro loadgen <scenario>`` exercises the telemetry path at volume: it
compiles the scenario at a tiny *template* scale, records a handful of
full-logging runs, and then replays their encoded segment streams as
thousands of independent submissions from concurrent client threads —
the fleet shape (many small instrumented processes reporting to one
analysis service) without paying for thousands of fresh simulations.

Each trace request is one complete submission on its own connection
(hello, segments, END, close).  That is not an optimization shortcut but
a correctness requirement: a log's event stream contains fork edges and
monotone timestamps, so splicing two copies into one log would hand the
server a stream that no real execution could produce.  Bursts from
:mod:`repro.scenarios.traffic` pick which template a session replays, so
a trace with mixed ops produces a mixed template population.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.literace import LiteRace
from ..detector.merge import merge_thread_logs
from ..eventlog.log import EventLog
from ..eventlog.segment import split_log
from ..service.client import TelemetryClient
from .compile import compile_scenario
from .spec import ScenarioSpec
from .traffic import generate_trace

__all__ = ["LoadGenerator", "LoadgenStats"]


@dataclass
class LoadgenStats:
    """Aggregate outcome of one load-generation run."""

    scenario: str = ""
    requests: int = 0
    completed: int = 0
    failed: int = 0
    segments: int = 0
    bytes_sent: int = 0
    events: int = 0
    #: Races the server attributed across all submissions.
    races: int = 0
    elapsed: float = 0.0
    concurrency: int = 0
    templates: int = 0
    template_events: Tuple[int, ...] = ()

    @property
    def rps(self) -> float:
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    def summary(self) -> str:
        return (f"{self.scenario}: {self.completed}/{self.requests} "
                f"submissions ok ({self.failed} failed) via "
                f"{self.concurrency} clients in {self.elapsed:.2f}s "
                f"({self.rps:.0f} req/s); {self.segments} segments, "
                f"{self.events:,} events, {self.bytes_sent:,} bytes, "
                f"{self.races} races reported")


class LoadGenerator:
    """Replay a scenario's traffic trace into a telemetry server."""

    def __init__(self, spec: ScenarioSpec, address: str, *,
                 requests: Optional[int] = None, concurrency: int = 8,
                 seed: int = 0, template_scale: float = 0.02,
                 templates: int = 2, max_template_events: int = 400,
                 segment_events: int = 256, compress: bool = False,
                 timeout: float = 60.0):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if templates < 1:
            raise ValueError("templates must be >= 1")
        self.spec = spec
        self.address = address
        self.requests = requests
        self.concurrency = concurrency
        self.seed = seed
        self.template_scale = template_scale
        self.templates = templates
        self.max_template_events = max_template_events
        self.segment_events = segment_events
        self.compress = compress
        self.timeout = timeout
        #: (frames, event_count) per template, filled by :meth:`prepare`.
        self._templates: List[Tuple[List[bytes], int]] = []

    # -- template recording ------------------------------------------------
    def prepare(self) -> "LoadGenerator":
        """Record the replay templates (idempotent; called by :meth:`run`).

        A template is the merged, segment-encoded event stream of one
        full-logging run at ``template_scale``; trimming keeps a prefix,
        which is still a valid happens-before processing order (the
        server shards consume segments in order).
        """
        if self._templates:
            return self
        for index in range(self.templates):
            program = compile_scenario(self.spec, seed=self.seed + index,
                                       scale=self.template_scale)
            result = LiteRace(sampler="Full",
                              seed=self.seed + index).run(program)
            merged = merge_thread_logs(result.log)
            events = merged.events
            if self.max_template_events:
                events = events[:self.max_template_events]
            ordered = EventLog()
            ordered.events = list(events)
            frames = split_log(ordered, segment_events=self.segment_events,
                               compress=self.compress)
            self._templates.append((frames, len(events)))
        return self

    # -- replay ------------------------------------------------------------
    def run(self) -> LoadgenStats:
        """Drive the full trace; returns aggregate stats.

        Worker threads pull requests from a shared cursor, so a slow
        submission never stalls the rest of the fleet, and per-request
        failures are counted rather than fatal (a load generator that
        dies on the first connection reset measures nothing).
        """
        self.prepare()
        trace = generate_trace(self.spec, requests=self.requests,
                               seed=self.seed)
        stats = LoadgenStats(
            scenario=self.spec.name,
            requests=len(trace),
            concurrency=min(self.concurrency, len(trace)),
            templates=len(self._templates),
            template_events=tuple(count for _, count in self._templates),
        )
        lock = threading.Lock()
        cursor = iter(trace)

        def worker() -> None:
            while True:
                with lock:
                    item = next(cursor, None)
                if item is None:
                    return
                frames, events = self._templates[
                    item.burst % len(self._templates)]
                try:
                    client = TelemetryClient(self.address,
                                             timeout=self.timeout)
                    with client:
                        client.hello(f"{self.spec.name}/{item.op}"
                                     f"#{item.index}")
                        sent = 0
                        for frame in frames:
                            client.send_segment(frame)
                            sent += len(frame)
                        body = client.end_log(len(frames))
                    with lock:
                        stats.completed += 1
                        stats.segments += len(frames)
                        stats.bytes_sent += sent
                        stats.events += events
                        stats.races += int(body.get("races", 0))
                except Exception:
                    with lock:
                        stats.failed += 1

        started = time.monotonic()
        threads = [threading.Thread(target=worker, daemon=True)
                   for _ in range(stats.concurrency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats.elapsed = time.monotonic() - started
        return stats
