"""Composable TIR building blocks the scenario compiler lowers steps into.

Each block reproduces a pattern proven out by the hand-written workload
models (docs/workload_design.md): queue helpers follow the Dryad channel
layout (lock + semaphore event + counters, all param-relative so one
helper serves every instance), lock-update helpers follow Apache's
``update_scoreboard`` (batch-granularity critical sections), and
per-request traffic lives in *helper functions* so sampling operates at
call granularity (§7 pathology rule).

The emitters here are deliberately dumb: they translate one validated
:class:`~repro.scenarios.spec.StepSpec` into instructions against a
binding environment prepared by the compiler.  All policy (who is hot,
where races sit, how queues balance) lives in
:mod:`repro.scenarios.compile`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..tir.addr import HeapSlot, Indexed, Param
from ..tir.builder import FunctionBuilder, ProgramBuilder
from ..workloads.patterns import tls_churn
from .spec import LockSpec, ScenarioError, ScenarioSpec, StepSpec

__all__ = [
    "QUEUE_SLOTS",
    "OFF_LOCK",
    "OFF_EVENT",
    "OFF_HEAD",
    "OFF_TAIL",
    "OFF_DEPTH",
    "queue_push_name",
    "queue_pop_name",
    "lock_update_name",
    "emit_queue_helpers",
    "emit_lock_update",
    "emit_step",
    "binding_key",
]

#: Queue instance block layout (slots of 8 bytes, as in the Dryad model).
QUEUE_SLOTS = 8
OFF_LOCK = 0
OFF_EVENT = 8
OFF_HEAD = 16
OFF_TAIL = 24
OFF_DEPTH = 32
#: Queue-counter offsets main must initialize before any thread runs.
QUEUE_INIT_OFFSETS = (OFF_HEAD, OFF_TAIL, OFF_DEPTH)


def queue_push_name(region: str) -> str:
    return f"q_{region}_push"


def queue_pop_name(region: str) -> str:
    return f"q_{region}_pop"


def lock_update_name(lock: str) -> str:
    return f"{lock}_update"


def binding_key(step: StepSpec) -> str:
    """The worker-parameter binding a step needs, or "" for none.

    ``own_rw`` steps bind the thread's partition base; queue steps bind
    the selected queue-instance base.  Steps sharing a key share one
    parameter.
    """
    if step.op == "own_rw":
        return f"part:{step.target}"
    if step.op in ("queue_push", "queue_pop"):
        return f"q:{step.target}:{step.instance}"
    return ""


def emit_queue_helpers(b: ProgramBuilder, region: str) -> None:
    """Define ``q_<region>_push`` / ``q_<region>_pop`` (p0 = instance base).

    Push takes the queue lock, bumps tail and depth, releases, and signals
    the semaphore event; pop waits for a signal, then bumps head and depth
    under the lock.  Payload transfer is modelled by the pools' own
    partition/TLS traffic, so the helpers touch counters only — every
    access is lock-ordered and race-free by construction.
    """
    with b.function(queue_push_name(region), params=1) as f:
        f.lock(Param(0, OFF_LOCK))
        f.read(Param(0, OFF_TAIL))
        f.write(Param(0, OFF_TAIL))
        f.read(Param(0, OFF_DEPTH))
        f.write(Param(0, OFF_DEPTH))
        f.unlock(Param(0, OFF_LOCK))
        f.notify(Param(0, OFF_EVENT))

    with b.function(queue_pop_name(region), params=1) as f:
        f.wait(Param(0, OFF_EVENT))
        f.lock(Param(0, OFF_LOCK))
        f.read(Param(0, OFF_HEAD))
        f.write(Param(0, OFF_HEAD))
        f.read(Param(0, OFF_DEPTH))
        f.write(Param(0, OFF_DEPTH))
        f.unlock(Param(0, OFF_LOCK))
        f.compute(1)


def emit_lock_update(b: ProgramBuilder, spec: ScenarioSpec, lock: LockSpec,
                     lock_addr: int, region_bases: Dict[str, int]) -> None:
    """Define ``<lock>_update``: a properly locked RMW of the guarded heads."""
    with b.function(lock_update_name(lock.name)) as f:
        f.lock(lock_addr)
        for guarded in lock.guards:
            f.read(region_bases[guarded])
        f.compute(1)
        for guarded in lock.guards:
            f.write(region_bases[guarded])
        f.unlock(lock_addr)


def emit_step(f: FunctionBuilder, spec: ScenarioSpec, step: StepSpec,
              region_bases: Dict[str, int],
              params: Dict[str, int]) -> None:
    """Lower one step inside a request/flush helper.

    ``region_bases`` maps region names to their global base addresses;
    ``params`` maps binding keys (:func:`binding_key`) to parameter indices
    of the function being emitted.
    """
    if step.op == "tls":
        tls_churn(f, slots=step.count)
    elif step.op == "compute":
        f.compute(step.count)
    elif step.op == "io":
        f.io(step.count)
    elif step.op == "config_read":
        base = region_bases[step.target]
        region = spec.region(step.target)
        count = min(step.count, region.elements)
        if count == 1:
            f.read(base)
        else:
            with f.loop(count):
                f.read(Indexed(base, region.stride, 0))
    elif step.op == "own_rw":
        region = spec.region(step.target)
        index = params[binding_key(step)]
        count = min(step.count, region.elements)
        if count == 1:
            f.read(Param(index))
            f.write(Param(index))
        else:
            with f.loop(count):
                f.read(Indexed(Param(index), region.stride, 0))
                f.write(Indexed(Param(index), region.stride, 0))
    elif step.op == "locked_update":
        f.call(lock_update_name(step.target))
    elif step.op == "atomic":
        f.atomic_rmw(region_bases[step.target])
    elif step.op == "alloc_churn":
        f.alloc(step.count * 64, 0)
        with f.loop(step.count):
            f.write(Indexed(HeapSlot(0), 8, 0))
        f.free(0)
    elif step.op == "queue_push":
        index = params[binding_key(step)]
        for _ in range(step.count):
            f.call(queue_push_name(step.target), Param(index))
    elif step.op == "queue_pop":
        index = params[binding_key(step)]
        for _ in range(step.count):
            f.call(queue_pop_name(step.target), Param(index))
    else:  # pragma: no cover - spec validation rejects unknown ops
        raise ScenarioError(f"unknown step op {step.op!r}")


def needs_heap_slot(steps: Tuple[StepSpec, ...]) -> bool:
    """Whether a helper compiled from ``steps`` needs a frame slot."""
    return any(step.op == "alloc_churn" for step in steps)
