"""Declarative scenario specifications.

A *scenario* is a service-shaped workload described by data instead of a
hand-written builder module: thread pools, shared regions, lock
disciplines, queue wiring, planted-race placement, and a traffic profile,
all in small frozen dataclasses with a YAML-ish dict round trip.  The
compiler (:mod:`repro.scenarios.compile`) lowers a spec into a TIR program
through the composable building blocks in :mod:`repro.scenarios.blocks`,
attaching the same ``planted_races`` ground truth the hand-written
workload modules carry — so a scenario is a first-class workload the
moment it is registered.

The spec layer owns *validation*: every structural rule that keeps the
compiled program inside the workload-design invariants (no unplanted
races, queue push/pop balance, helpers-for-hot-code) is checked here or at
compile time and raises :class:`ScenarioError` with a message naming the
offending element, never a silently-wrong program.

Parameterization goes through :meth:`ScenarioSpec.derive`, which
deep-merges an override dict onto the spec's dict form — the experiment
sweeps use it to turn one scenario into a contention series::

    crowded = spec.derive({"pools": {"readers": {"threads": 16}}})
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

__all__ = [
    "ScenarioError",
    "RegionSpec",
    "LockSpec",
    "StepSpec",
    "PoolSpec",
    "RaceSpec",
    "TrafficSpec",
    "ScenarioSpec",
]


class ScenarioError(ValueError):
    """A scenario spec is structurally invalid or cannot be compiled."""


#: Step vocabulary understood by the compiler (see blocks.py for the
#: lowering of each op).
STEP_OPS = (
    "tls",            # thread-private churn (count = slots)
    "compute",        # pure computation (count = units)
    "io",             # blocking I/O (count = virtual time units)
    "config_read",    # read a main-initialized read-only region (count = elems)
    "own_rw",         # read+write the thread's private partition of a region
    "locked_update",  # properly locked RMW of a lock's guarded regions
    "atomic",         # lock-free atomic RMW on a region head
    "alloc_churn",    # alloc / write / free a scratch heap block
    "queue_push",     # push one item (lock + counters + notify)
    "queue_pop",      # pop one item (wait + lock + counters)
)

#: Queue instance selectors: which instance of a multi-instance queue
#: region a pool thread binds to.
QUEUE_SELECTORS = ("all", "own", "next")


def _tuple_of(cls, rows: Iterable[Any], what: str) -> Tuple:
    out = []
    for row in rows:
        if isinstance(row, cls):
            out.append(row)
        elif isinstance(row, Mapping):
            out.append(cls.from_dict(row))
        else:
            raise ScenarioError(f"{what}: expected {cls.__name__} or dict, "
                                f"got {type(row).__name__}")
    return tuple(out)


def _check_unique(items: Iterable[str], what: str) -> None:
    seen = set()
    for name in items:
        if name in seen:
            raise ScenarioError(f"duplicate {what} name {name!r}")
        seen.add(name)


@dataclass(frozen=True)
class RegionSpec:
    """A named shared-memory region.

    ``kind="data"`` is a flat array of ``elements`` slots; ``kind="queue"``
    is ``instances`` queue blocks (lock, event, head, tail, depth — the
    channel layout of the Dryad model).
    """

    name: str
    kind: str = "data"                # "data" | "queue"
    elements: int = 8
    stride: int = 8
    instances: int = 1               # queue regions only

    def validate(self) -> None:
        if self.kind not in ("data", "queue"):
            raise ScenarioError(f"region {self.name!r}: unknown kind "
                                f"{self.kind!r}")
        if self.elements < 1 or self.stride < 1 or self.instances < 1:
            raise ScenarioError(f"region {self.name!r}: elements, stride and "
                                f"instances must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind,
                "elements": self.elements, "stride": self.stride,
                "instances": self.instances}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegionSpec":
        return cls(**dict(data))


@dataclass(frozen=True)
class LockSpec:
    """A named lock and the data regions it guards.

    ``locked_update`` steps name the lock; the compiled helper updates the
    head slot of every guarded region inside one critical section.
    """

    name: str
    guards: Tuple[str, ...] = ()

    def validate(self) -> None:
        if not self.guards:
            raise ScenarioError(f"lock {self.name!r} guards no region")

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "guards": list(self.guards)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LockSpec":
        data = dict(data)
        data["guards"] = tuple(data.get("guards", ()))
        return cls(**data)


@dataclass(frozen=True)
class StepSpec:
    """One building-block step of a pool's request or flush body."""

    op: str
    target: str = ""                  # region or lock name (op-dependent)
    count: int = 1
    instance: str = "all"             # queue ops: "all" | "own" | "next"

    def validate(self) -> None:
        if self.op not in STEP_OPS:
            raise ScenarioError(f"unknown step op {self.op!r}; known: "
                                f"{', '.join(STEP_OPS)}")
        if self.count < 1:
            raise ScenarioError(f"step {self.op!r}: count must be >= 1")
        if self.instance not in QUEUE_SELECTORS:
            raise ScenarioError(f"step {self.op!r}: unknown queue instance "
                                f"selector {self.instance!r}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op}
        if self.target:
            out["target"] = self.target
        if self.count != 1:
            out["count"] = self.count
        if self.instance != "all":
            out["instance"] = self.instance
        return out

    @classmethod
    def from_dict(cls, data: Any) -> "StepSpec":
        # Shorthand: ["op", "target", count] or ("op",) tuples.
        if isinstance(data, (list, tuple)):
            parts = list(data)
            out = cls(op=parts[0],
                      target=parts[1] if len(parts) > 1 else "",
                      count=parts[2] if len(parts) > 2 else 1)
            return out
        return cls(**dict(data))


@dataclass(frozen=True)
class PoolSpec:
    """One service thread pool.

    Each thread runs ``requests`` scaled per-request bodies (compiled into
    a hot ``<pool>_request`` helper), grouped into chunks of ``chunk``
    requests; per chunk the thread makes its frequent-race calls and runs
    the ``flush`` steps (compiled into a ``<pool>_flush`` helper — this is
    where batch-granularity lock traffic belongs).  Threads spawn
    ``stagger`` virtual-time units apart, the structural device that keeps
    global samplers honest (docs/workload_design.md §4).
    """

    name: str
    threads: int = 4
    requests: int = 256               # per-thread requests at scale 1.0
    chunk: int = 16                   # requests per flush/race chunk
    stagger: int = 20_000
    io_per_request: int = 0
    body: Tuple[StepSpec, ...] = ()
    flush: Tuple[StepSpec, ...] = ()

    def validate(self) -> None:
        if self.threads < 1:
            raise ScenarioError(f"pool {self.name!r}: threads must be >= 1")
        if self.chunk < 1 or self.requests < self.chunk:
            raise ScenarioError(f"pool {self.name!r}: needs requests >= "
                                f"chunk >= 1")
        if not self.body:
            raise ScenarioError(f"pool {self.name!r}: empty request body")
        for step in self.body + self.flush:
            step.validate()

    def chunks(self, scale: float) -> int:
        """Chunks per thread at ``scale``, rounded to whole chunks.

        Floored at two: chunk boundaries are where frequent races and
        lock flushes happen, and a single chunk lets queue wait/lock
        edges serialize one-call-per-thread patterns that are racy at
        every realistic size.
        """
        return max(2, round(self.requests * scale / self.chunk))

    def requests_per_thread(self, scale: float) -> int:
        return self.chunks(scale) * self.chunk

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "threads": self.threads,
            "requests": self.requests, "chunk": self.chunk,
            "stagger": self.stagger, "io_per_request": self.io_per_request,
            "body": [s.to_dict() for s in self.body],
            "flush": [s.to_dict() for s in self.flush],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PoolSpec":
        data = dict(data)
        data["body"] = tuple(StepSpec.from_dict(s)
                             for s in data.get("body", ()))
        data["flush"] = tuple(StepSpec.from_dict(s)
                              for s in data.get("flush", ()))
        return cls(**data)


@dataclass(frozen=True)
class RaceSpec:
    """Placement of one planted race across a scenario's pools.

    ``rate="cold"`` races execute once per designated thread (``racers``
    threads chosen from the ends of the listed pools — the late spawns) at
    ``placement`` "start" (right after the stagger, the warmed-cold shape
    when ``warmup`` > 0) or "end" (after the request loop, the
    finalizer/teardown shape).  ``rate="frequent"`` races execute once per
    chunk in *every* thread of the listed pools.  ``hot=True`` additionally
    calls the racy helper on thread-private data once per request, turning
    the site into the hot-cold archetype that sets sampler ceilings.
    """

    name: str
    pools: Tuple[str, ...]
    rate: str = "cold"                # "cold" | "frequent"
    placement: str = "end"            # cold races: "start" | "end"
    racers: int = 2                   # cold races: designated threads
    read: bool = True
    write: bool = True
    payload_reads: int = 0
    warmup: int = 0                   # main-thread private pre-fork calls
    hot: bool = False                 # also called per-request on TLS data

    @property
    def expect_rare(self) -> bool:
        return self.rate == "cold"

    def validate(self) -> None:
        if not self.pools:
            raise ScenarioError(f"race {self.name!r}: no pools listed")
        if self.rate not in ("cold", "frequent"):
            raise ScenarioError(f"race {self.name!r}: unknown rate "
                                f"{self.rate!r}")
        if self.placement not in ("start", "end"):
            raise ScenarioError(f"race {self.name!r}: unknown placement "
                                f"{self.placement!r}")
        if self.rate == "cold" and self.racers < 2:
            raise ScenarioError(f"race {self.name!r}: cold races need >= 2 "
                                f"racers")
        if not (self.read or self.write):
            raise ScenarioError(f"race {self.name!r}: needs read and/or "
                                f"write access")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "pools": list(self.pools), "rate": self.rate,
            "placement": self.placement, "racers": self.racers,
            "read": self.read, "write": self.write,
            "payload_reads": self.payload_reads, "warmup": self.warmup,
            "hot": self.hot,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RaceSpec":
        data = dict(data)
        data["pools"] = tuple(data.get("pools", ()))
        return cls(**data)


@dataclass(frozen=True)
class TrafficSpec:
    """The scenario's traffic profile (drives the trace generator).

    ``requests`` is the nominal whole-scenario request volume at scale 1.0
    — :meth:`ScenarioSpec.scale_for_requests` maps an absolute request
    count back to a compile scale, which is how the same scenario runs at
    10 or 10k requests.  ``mix`` weights the operation kinds of generated
    traffic; ``burst`` is how many requests a load-generator connection
    carries before rolling over.
    """

    requests: int = 2048
    mix: Tuple[Tuple[str, int], ...] = (("request", 1),)
    key_space: int = 64
    burst: int = 8

    def validate(self) -> None:
        if self.requests < 1 or self.key_space < 1 or self.burst < 1:
            raise ScenarioError("traffic: requests, key_space and burst "
                                "must be positive")
        if not self.mix or any(weight < 1 for _, weight in self.mix):
            raise ScenarioError("traffic: mix needs >= 1 op with positive "
                                "weights")

    def to_dict(self) -> Dict[str, Any]:
        return {"requests": self.requests,
                "mix": [[op, weight] for op, weight in self.mix],
                "key_space": self.key_space, "burst": self.burst}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        data = dict(data)
        data["mix"] = tuple((op, weight) for op, weight in
                            data.get("mix", (("request", 1),)))
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario."""

    name: str
    title: str = ""
    description: str = ""
    regions: Tuple[RegionSpec, ...] = ()
    locks: Tuple[LockSpec, ...] = ()
    pools: Tuple[PoolSpec, ...] = ()
    races: Tuple[RaceSpec, ...] = ()
    traffic: TrafficSpec = field(default_factory=TrafficSpec)

    # -- lookups ----------------------------------------------------------
    def region(self, name: str) -> RegionSpec:
        for region in self.regions:
            if region.name == name:
                return region
        raise ScenarioError(f"{self.name}: unknown region {name!r}")

    def lock(self, name: str) -> LockSpec:
        for lock in self.locks:
            if lock.name == name:
                return lock
        raise ScenarioError(f"{self.name}: unknown lock {name!r}")

    def pool(self, name: str) -> PoolSpec:
        for pool in self.pools:
            if pool.name == name:
                return pool
        raise ScenarioError(f"{self.name}: unknown pool {name!r}")

    @property
    def total_threads(self) -> int:
        return sum(pool.threads for pool in self.pools)

    def scale_for_requests(self, requests: int) -> float:
        """The compile scale at which the scenario serves ``requests``."""
        if requests < 1:
            raise ScenarioError("requests must be >= 1")
        return requests / self.traffic.requests

    # -- validation --------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        if not self.name:
            raise ScenarioError("scenario needs a name")
        if not self.pools:
            raise ScenarioError(f"{self.name}: needs at least one pool")
        _check_unique((r.name for r in self.regions), "region")
        _check_unique((l.name for l in self.locks), "lock")
        _check_unique((p.name for p in self.pools), "pool")
        _check_unique((r.name for r in self.races), "race")
        for region in self.regions:
            region.validate()
        for lock in self.locks:
            lock.validate()
            for guarded in lock.guards:
                if self.region(guarded).kind != "data":
                    raise ScenarioError(f"lock {lock.name!r} guards "
                                        f"non-data region {guarded!r}")
        self.traffic.validate()
        for pool in self.pools:
            pool.validate()
            for step in pool.body + pool.flush:
                self._validate_step(pool, step)
        for race in self.races:
            race.validate()
            for pool_name in race.pools:
                self.pool(pool_name)
            available = sum(self.pool(p).threads for p in race.pools)
            needed = race.racers if race.rate == "cold" else 2
            if available < needed:
                raise ScenarioError(
                    f"race {race.name!r}: needs {needed} threads across "
                    f"{race.pools}, only {available} available")
        return self

    def _validate_step(self, pool: PoolSpec, step: StepSpec) -> None:
        where = f"pool {pool.name!r} step {step.op!r}"
        if step.op in ("config_read", "own_rw", "atomic"):
            if self.region(step.target).kind != "data":
                raise ScenarioError(f"{where}: target {step.target!r} must "
                                    f"be a data region")
        elif step.op in ("queue_push", "queue_pop"):
            region = self.region(step.target)
            if region.kind != "queue":
                raise ScenarioError(f"{where}: target {step.target!r} must "
                                    f"be a queue region")
            if step.instance in ("own", "next") and \
                    region.instances != pool.threads:
                raise ScenarioError(
                    f"{where}: selector {step.instance!r} needs "
                    f"{step.target!r}.instances == {pool.name!r}.threads "
                    f"({region.instances} != {pool.threads})")
        elif step.op == "locked_update":
            self.lock(step.target)

    # -- dict round trip ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "title": self.title,
            "description": self.description,
            "regions": [r.to_dict() for r in self.regions],
            "locks": [l.to_dict() for l in self.locks],
            "pools": [p.to_dict() for p in self.pools],
            "races": [r.to_dict() for r in self.races],
            "traffic": self.traffic.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        spec = cls(
            name=data.get("name", ""),
            title=data.get("title", ""),
            description=data.get("description", ""),
            regions=_tuple_of(RegionSpec, data.get("regions", ()), "regions"),
            locks=_tuple_of(LockSpec, data.get("locks", ()), "locks"),
            pools=_tuple_of(PoolSpec, data.get("pools", ()), "pools"),
            races=_tuple_of(RaceSpec, data.get("races", ()), "races"),
            traffic=TrafficSpec.from_dict(data.get("traffic", {})),
        )
        return spec.validate()

    # -- parameterization --------------------------------------------------
    def derive(self, overrides: Mapping[str, Any],
               rename: Optional[str] = None) -> "ScenarioSpec":
        """A new validated spec with ``overrides`` deep-merged in.

        Named collections (``regions``, ``locks``, ``pools``, ``races``)
        merge *by element name*: ``{"pools": {"readers": {"threads": 8}}}``
        touches only the ``readers`` pool.  Scalars replace; ``traffic``
        merges key-by-key.  ``rename`` gives the derived spec its own name
        (required before registering both as workloads).
        """
        base = self.to_dict()
        merged = _deep_merge(base, overrides)
        if rename is not None:
            merged["name"] = rename
        return ScenarioSpec.from_dict(merged)


_NAMED_LISTS = ("regions", "locks", "pools", "races")


def _deep_merge(base: Dict[str, Any],
                overrides: Mapping[str, Any]) -> Dict[str, Any]:
    out = dict(base)
    for key, value in overrides.items():
        if key in _NAMED_LISTS and isinstance(value, Mapping):
            rows = [dict(row) for row in out.get(key, [])]
            index = {row["name"]: i for i, row in enumerate(rows)}
            for name, patch in value.items():
                if not isinstance(patch, Mapping):
                    raise ScenarioError(
                        f"derive: {key}.{name} override must be a mapping")
                if name in index:
                    rows[index[name]] = _deep_merge(rows[index[name]], patch)
                else:
                    new_row = dict(patch)
                    new_row.setdefault("name", name)
                    rows.append(new_row)
            out[key] = rows
        elif key == "traffic" and isinstance(value, Mapping):
            out[key] = _deep_merge(dict(out.get(key, {})), value)
        elif isinstance(value, Mapping) and isinstance(out.get(key), dict):
            out[key] = _deep_merge(out[key], value)
        else:
            out[key] = value
    return out
