"""Unit and property tests for vector clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.detector.vectorclock import VectorClock


def vc(d):
    return VectorClock(d)


clock_dicts = st.dictionaries(st.integers(0, 5), st.integers(0, 20),
                              max_size=6)


class TestBasics:
    def test_empty_clock_reads_zero(self):
        assert vc({}).get(3) == 0

    def test_tick(self):
        c = vc({})
        c.tick(2)
        c.tick(2)
        assert c.get(2) == 2

    def test_join_takes_pointwise_max(self):
        a = vc({1: 5, 2: 1})
        a.join(vc({1: 3, 2: 7, 3: 2}))
        assert (a.get(1), a.get(2), a.get(3)) == (5, 7, 2)

    def test_copy_is_independent(self):
        a = vc({1: 1})
        b = a.copy()
        b.tick(1)
        assert a.get(1) == 1

    def test_equality_ignores_zero_entries(self):
        assert vc({1: 0, 2: 3}) == vc({2: 3})

    def test_unhashable(self):
        # Regression: clocks are mutable (tick/join mutate in place), so a
        # hashable clock silently corrupts any set/dict it is stored in the
        # moment it advances.  VectorClock once defined __hash__; it must not.
        with pytest.raises(TypeError):
            hash(vc({2: 3}))
        with pytest.raises(TypeError):
            {vc({})}


class TestOrdering:
    def test_leq_reflexive(self):
        a = vc({1: 2, 2: 3})
        assert a.leq(a)

    def test_happens_before_strict(self):
        a = vc({1: 1})
        b = vc({1: 2})
        assert a.happens_before(b)
        assert not b.happens_before(a)
        assert not a.happens_before(a)

    def test_concurrent(self):
        a = vc({1: 2, 2: 0})
        b = vc({1: 0, 2: 2})
        assert a.concurrent(b)
        assert b.concurrent(a)

    def test_not_concurrent_when_ordered(self):
        a = vc({1: 1})
        b = vc({1: 1, 2: 4})
        assert not a.concurrent(b)


class TestProperties:
    @given(clock_dicts, clock_dicts)
    def test_join_is_upper_bound(self, d1, d2):
        a, b = vc(d1), vc(d2)
        joined = a.copy()
        joined.join(b)
        assert a.leq(joined)
        assert b.leq(joined)

    @given(clock_dicts, clock_dicts)
    def test_join_commutative(self, d1, d2):
        left = vc(d1)
        left.join(vc(d2))
        right = vc(d2)
        right.join(vc(d1))
        assert left == right

    @given(clock_dicts, clock_dicts, clock_dicts)
    def test_join_associative(self, d1, d2, d3):
        a = vc(d1)
        a.join(vc(d2))
        a.join(vc(d3))
        b = vc(d2)
        b.join(vc(d3))
        c = vc(d1)
        c.join(b)
        assert a == c

    @given(clock_dicts, clock_dicts)
    def test_trichotomy_of_relations(self, d1, d2):
        a, b = vc(d1), vc(d2)
        relations = [a.happens_before(b), b.happens_before(a),
                     a.concurrent(b), a == b]
        assert sum(relations) == 1

    @given(clock_dicts, clock_dicts, clock_dicts)
    def test_leq_transitive(self, d1, d2, d3):
        a, b, c = vc(d1), vc(d2), vc(d3)
        if a.leq(b) and b.leq(c):
            assert a.leq(c)

    @given(clock_dicts)
    def test_tick_strictly_increases(self, d):
        a = vc(d)
        before = a.copy()
        a.tick(1)
        assert before.happens_before(a)
