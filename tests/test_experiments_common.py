"""Tests for the experiment-infrastructure helpers."""

from repro.experiments import EXPERIMENT_NAMES
from repro.experiments.common import detection_study, paper_note


class TestStudyCache:
    def test_same_parameters_return_cached_object(self):
        a = detection_study(scale=0.05, seeds=(1,), benchmarks=("dryad",),
                            samplers=("TL-Ad", "Full"))
        b = detection_study(scale=0.05, seeds=(1,), benchmarks=("dryad",),
                            samplers=("TL-Ad", "Full"))
        assert a is b

    def test_different_parameters_rerun(self):
        a = detection_study(scale=0.05, seeds=(1,), benchmarks=("dryad",),
                            samplers=("TL-Ad", "Full"))
        b = detection_study(scale=0.05, seeds=(2,), benchmarks=("dryad",),
                            samplers=("TL-Ad", "Full"))
        assert a is not b

    def test_generator_seeds_not_consumed_by_memo_key(self):
        # Regression: ``seeds`` used to reach the memo key via ``tuple()``
        # but the *study* via the original iterable — a generator was
        # exhausted by keying and the study silently ran zero cells.
        a = detection_study(scale=0.05,
                            seeds=(s for s in (1, 2)),
                            benchmarks=("firefox-start",),
                            samplers=("TL-Ad", "Full"))
        assert [run.seed for run in a.runs] == [1, 2]
        # ... and the generator-keyed study memoizes as its tuple twin.
        b = detection_study(scale=0.05, seeds=(1, 2),
                            benchmarks=("firefox-start",),
                            samplers=("TL-Ad", "Full"))
        assert a is b


class TestRegistry:
    def test_every_experiment_importable_with_run(self):
        import importlib

        for name in EXPERIMENT_NAMES:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run)

    def test_paper_note_format(self):
        assert paper_note("x").startswith("\n[paper] ")
