"""Tests for the Table 3 samplers."""

import pytest

from repro.core.samplers import (
    BURST_LENGTH,
    BurstySampler,
    FullSampler,
    NeverSampler,
    RandomSampler,
    SAMPLER_ORDER,
    UnColdRegionSampler,
    make_sampler,
    thread_local_adaptive,
)


def decisions(state, n, tid=0, func="f"):
    return [state.should_sample(tid, func) for _ in range(n)]


class TestBurstStructure:
    def test_first_burst_samples_everything(self):
        state = BurstySampler((0.05,), thread_local=True)
        assert all(decisions(state, BURST_LENGTH))

    def test_gap_follows_burst(self):
        state = BurstySampler((0.05,), thread_local=True, jitter=0.0)
        picks = decisions(state, 200)
        assert picks[:10] == [True] * 10
        assert not any(picks[10:200])

    def test_burst_returns_after_gap(self):
        state = BurstySampler((0.5,), thread_local=True, jitter=0.0)
        picks = decisions(state, 40)
        # rate 0.5, burst 10 -> gap 10: pattern 10 on, 10 off, ...
        assert picks[:10] == [True] * 10
        assert picks[10:20] == [False] * 10
        assert picks[20:30] == [True] * 10

    def test_rate_100_percent_never_gaps(self):
        state = BurstySampler((1.0,), thread_local=True)
        assert all(decisions(state, 500))

    def test_effective_rate_approximates_schedule(self):
        state = BurstySampler((0.05,), thread_local=True, seed=3)
        picks = decisions(state, 20_000)
        rate = sum(picks) / len(picks)
        assert 0.035 <= rate <= 0.07

    def test_jitter_varies_gaps_but_is_seeded(self):
        def gaps(seed):
            state = BurstySampler((0.05,), thread_local=True, seed=seed)
            picks = decisions(state, 2000)
            return picks

        assert gaps(1) == gaps(1)
        assert gaps(1) != gaps(2)


class TestAdaptiveBackoff:
    def test_rate_decreases_after_each_burst(self):
        state = thread_local_adaptive().make_state()
        assert state.current_rate(0, "f") == 1.0
        decisions(state, 10)   # complete first burst
        assert state.current_rate(0, "f") == 0.1

    def test_rate_floors_at_schedule_end(self):
        state = BurstySampler((1.0, 0.5, 0.1), thread_local=True, jitter=0.0)
        for _ in range(5000):
            state.should_sample(0, "f")
        assert state.current_rate(0, "f") == 0.1

    def test_floor_never_reaches_zero(self):
        state = thread_local_adaptive().make_state()
        picks = decisions(state, 60_000)
        # even deep in the run, bursts still occur at the 0.1% floor
        assert any(picks[40_000:])


class TestThreadLocality:
    def test_each_thread_starts_cold(self):
        state = thread_local_adaptive().make_state()
        decisions(state, 5000, tid=0)  # make it hot for thread 0
        assert state.should_sample(1, "f") is True  # thread 1's first call

    def test_global_sampler_shares_heat(self):
        state = BurstySampler((1.0, 0.001), thread_local=False, jitter=0.0)
        decisions(state, 5000, tid=0)
        assert state.should_sample(1, "f") is False

    def test_functions_tracked_independently(self):
        state = thread_local_adaptive().make_state()
        decisions(state, 5000, func="hot")
        assert state.should_sample(0, "cold") is True


class TestOtherSamplers:
    def test_random_rate(self):
        state = RandomSampler(0.25, seed=7)
        picks = decisions(state, 10_000)
        assert 0.22 <= sum(picks) / len(picks) <= 0.28

    def test_random_is_seeded(self):
        a = decisions(RandomSampler(0.5, seed=1), 100)
        b = decisions(RandomSampler(0.5, seed=1), 100)
        assert a == b

    def test_random_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            RandomSampler(1.5)

    def test_ucp_skips_first_ten_per_thread(self):
        state = UnColdRegionSampler(skip=10)
        picks = decisions(state, 15, tid=0)
        assert picks == [False] * 10 + [True] * 5
        # a new thread starts skipping again
        assert state.should_sample(1, "f") is False

    def test_full_sampler_has_no_dispatch_cost(self):
        state = FullSampler()
        assert state.dispatch_cost == 0
        assert all(decisions(state, 50))

    def test_never_sampler_pays_dispatch(self):
        state = NeverSampler()
        assert state.dispatch_cost == 8
        assert not any(decisions(state, 50))


class TestRegistry:
    def test_all_table3_samplers_constructible(self):
        for name in SAMPLER_ORDER:
            sampler = make_sampler(name)
            assert sampler.short_name == name
            sampler.make_state(0).should_sample(0, "f")

    def test_unknown_sampler_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("TL-Bogus")

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError):
            BurstySampler((), thread_local=True)
        with pytest.raises(ValueError):
            BurstySampler((0.0,), thread_local=True)
