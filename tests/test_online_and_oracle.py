"""Tests for the online detector and the exhaustive oracle."""

from repro.core.literace import LiteRace
from repro.detector.hb import detect_races
from repro.detector.online import OnlineRaceDetector
from repro.detector.oracle import oracle_races
from repro.eventlog.events import MemoryEvent, SyncEvent, SyncKind
from repro.workloads.synthetic import random_program, two_thread_racer

import pytest


class TestOnline:
    def test_agrees_with_offline_on_racy_addresses(self):
        """Which PC pair gets reported can differ between processing
        orders (only the first race per address is guaranteed), but the
        set of racy *addresses* is order-independent."""
        for seed in range(6):
            program = random_program(seed)
            tool = LiteRace(sampler="TL-Ad", seed=seed)
            online = OnlineRaceDetector()
            run, log = tool.profile(program, sink=online)
            offline, inconsistencies = tool.analyze_log(log)
            assert inconsistencies == 0
            assert online.report.addresses == offline.addresses

    def test_reports_are_true_races_in_both_orders(self):
        for seed in range(4):
            program = random_program(seed)
            tool = LiteRace(sampler="TL-Ad", seed=seed)
            online = OnlineRaceDetector()
            _, log = tool.profile(program, sink=online)
            offline, _ = tool.analyze_log(log)
            oracle = oracle_races(log.events)
            assert online.report.static_races <= oracle.static_races
            assert offline.static_races <= oracle.static_races

    def test_consumes_every_event(self):
        program = two_thread_racer()
        online = OnlineRaceDetector()
        _, log = LiteRace(sampler="Full", seed=2).profile(program,
                                                          sink=online)
        assert online.events_consumed == len(log.events)

    def test_analysis_budget_tracked(self):
        program = two_thread_racer()
        online = OnlineRaceDetector()
        run, _ = LiteRace(sampler="Full", seed=2).profile(program,
                                                          sink=online)
        assert online.analysis_cycles > 0
        assert isinstance(online.keeps_up_with(run.clock), bool)

    def test_keeps_up_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            OnlineRaceDetector().keeps_up_with(1000, spare_cores=0)

    def test_keeps_up_with_exact_budget_boundary(self):
        # Two memory events and one sync event cost exactly
        # 2*25 + 120 = 170 analysis cycles; the budget check must be
        # inclusive at the boundary and fail one cycle below it.
        online = OnlineRaceDetector()
        online.feed(MemoryEvent(0, 0x10, 1, True))
        online.feed(MemoryEvent(1, 0x10, 2, True))
        online.feed(SyncEvent(0, SyncKind.LOCK, ("mutex", 1), 1, 3))
        assert online.analysis_cycles == 170
        assert online.keeps_up_with(170)
        assert not online.keeps_up_with(169)

    def test_spare_cores_scale_the_budget(self):
        online = OnlineRaceDetector()
        online.feed(MemoryEvent(0, 0x10, 1, True))
        online.feed(MemoryEvent(1, 0x10, 2, True))
        online.feed(SyncEvent(0, SyncKind.LOCK, ("mutex", 1), 1, 3))
        # 170 cycles over an 85-cycle run: one spare core cannot keep up,
        # two can (exactly).
        assert not online.keeps_up_with(85)
        assert online.keeps_up_with(85, spare_cores=2)


class TestOracle:
    def mem(self, tid, pc, write, addr=0x100):
        return MemoryEvent(tid, addr, pc, write)

    def test_reports_all_unordered_pairs(self):
        # Three concurrent writers: the summarizing detector reports the
        # adjacent pairs; the oracle reports all three pairs.
        events = [self.mem(1, 1, True), self.mem(2, 2, True),
                  self.mem(3, 3, True)]
        summary = detect_races(events)
        oracle = oracle_races(events)
        assert oracle.static_races == {(1, 2), (1, 3), (2, 3)}
        assert summary.static_races <= oracle.static_races

    def test_respects_sync_ordering(self):
        lock = ("mutex", 7)
        events = [
            SyncEvent(1, SyncKind.LOCK, lock, 1, -1),
            self.mem(1, 1, True),
            SyncEvent(1, SyncKind.UNLOCK, lock, 2, -1),
            SyncEvent(2, SyncKind.LOCK, lock, 3, -1),
            self.mem(2, 2, True),
        ]
        assert oracle_races(events).num_static == 0

    def test_hb_report_always_subset_of_oracle(self):
        for seed in range(8):
            program = random_program(seed, threads=3, lock_prob=0.4)
            _, log = LiteRace(sampler="Full", seed=seed).profile(program)
            summary = detect_races(log.events)
            oracle = oracle_races(log.events)
            assert summary.static_races <= oracle.static_races
