"""Tests for the happens-before detector on hand-built event sequences."""

from repro.detector.hb import HappensBeforeDetector, detect_races
from repro.eventlog.events import MemoryEvent, SyncEvent, SyncKind


def mem(tid, addr, pc, write):
    return MemoryEvent(tid, addr, pc, write)


def sync(tid, kind, var, ts=0, pc=-1):
    return SyncEvent(tid, kind, var, ts, pc)


X = 0x1000
LOCK = ("mutex", 0x2000)
EV = ("event", 0x3000)


class TestBasicRaces:
    def test_write_write_race(self):
        report = detect_races([
            mem(1, X, 10, True),
            mem(2, X, 20, True),
        ])
        assert report.static_races == {(10, 20)}

    def test_write_read_race(self):
        report = detect_races([
            mem(1, X, 10, True),
            mem(2, X, 20, False),
        ])
        assert report.static_races == {(10, 20)}

    def test_read_write_race(self):
        report = detect_races([
            mem(1, X, 10, False),
            mem(2, X, 20, True),
        ])
        assert report.static_races == {(10, 20)}

    def test_read_read_never_races(self):
        report = detect_races([
            mem(1, X, 10, False),
            mem(2, X, 20, False),
        ])
        assert report.num_static == 0

    def test_same_thread_never_races(self):
        report = detect_races([
            mem(1, X, 10, True),
            mem(1, X, 20, True),
        ])
        assert report.num_static == 0

    def test_different_addresses_never_race(self):
        report = detect_races([
            mem(1, X, 10, True),
            mem(2, X + 8, 20, True),
        ])
        assert report.num_static == 0

    def test_occurrences_counted(self):
        events = []
        for i in range(5):
            events.append(mem(1, X, 10, True))
            events.append(mem(2, X, 20, True))
        report = detect_races(events)
        assert report.occurrences[(10, 20)] >= 5


class TestLockOrdering:
    def test_figure1_left_no_race(self):
        # t1: lock, write, unlock; t2: lock, write, unlock (after t1)
        report = detect_races([
            sync(1, SyncKind.LOCK, LOCK, 1),
            mem(1, X, 10, True),
            sync(1, SyncKind.UNLOCK, LOCK, 2),
            sync(2, SyncKind.LOCK, LOCK, 3),
            mem(2, X, 20, True),
            sync(2, SyncKind.UNLOCK, LOCK, 4),
        ])
        assert report.num_static == 0

    def test_figure1_right_race(self):
        # t2 writes without taking the lock
        report = detect_races([
            sync(1, SyncKind.LOCK, LOCK, 1),
            mem(1, X, 10, True),
            sync(1, SyncKind.UNLOCK, LOCK, 2),
            mem(2, X, 20, True),
        ])
        assert report.static_races == {(10, 20)}

    def test_different_locks_do_not_order(self):
        other = ("mutex", 0x2100)
        report = detect_races([
            sync(1, SyncKind.LOCK, LOCK, 1),
            mem(1, X, 10, True),
            sync(1, SyncKind.UNLOCK, LOCK, 2),
            sync(2, SyncKind.LOCK, other, 1),
            mem(2, X, 20, True),
            sync(2, SyncKind.UNLOCK, other, 2),
        ])
        assert report.static_races == {(10, 20)}

    def test_transitive_ordering_through_third_thread(self):
        # t1 -> t2 via LOCK, t2 -> t3 via EV; so t1's write HB t3's write.
        report = detect_races([
            mem(1, X, 10, True),
            sync(1, SyncKind.UNLOCK, LOCK, 1),
            sync(2, SyncKind.LOCK, LOCK, 2),
            sync(2, SyncKind.NOTIFY, EV, 1),
            sync(3, SyncKind.WAIT, EV, 2),
            mem(3, X, 30, True),
        ])
        assert report.num_static == 0


class TestOtherSyncKinds:
    def test_fork_orders_parent_before_child(self):
        report = detect_races([
            mem(0, X, 5, True),
            sync(0, SyncKind.FORK, ("thread", 1), 1),
            sync(1, SyncKind.THREAD_START, ("thread", 1), 2),
            mem(1, X, 15, True),
        ])
        assert report.num_static == 0

    def test_join_orders_child_before_parent(self):
        report = detect_races([
            sync(1, SyncKind.THREAD_START, ("thread", 1), 1),
            mem(1, X, 15, True),
            sync(1, SyncKind.THREAD_EXIT, ("thread", 1), 2),
            sync(0, SyncKind.JOIN, ("thread", 1), 3),
            mem(0, X, 5, True),
        ])
        assert report.num_static == 0

    def test_unjoined_sibling_races(self):
        report = detect_races([
            sync(0, SyncKind.FORK, ("thread", 1), 1),
            sync(0, SyncKind.FORK, ("thread", 2), 2),
            sync(1, SyncKind.THREAD_START, ("thread", 1), 3),
            sync(2, SyncKind.THREAD_START, ("thread", 2), 4),
            mem(1, X, 15, True),
            mem(2, X, 25, True),
        ])
        assert report.static_races == {(15, 25)}

    def test_atomic_orders_both_directions(self):
        var = ("atomic", 0x5000)
        report = detect_races([
            mem(1, X, 10, True),
            sync(1, SyncKind.ATOMIC, var, 1),
            sync(2, SyncKind.ATOMIC, var, 2),
            mem(2, X, 20, True),
        ])
        assert report.num_static == 0

    def test_notify_before_wait_orders(self):
        report = detect_races([
            mem(1, X, 10, True),
            sync(1, SyncKind.NOTIFY, EV, 1),
            sync(2, SyncKind.WAIT, EV, 2),
            mem(2, X, 20, False),
        ])
        assert report.num_static == 0


class TestAllocSync:
    PAGE = ("page", 77)

    def events(self):
        # t1 writes then frees; t2 reallocates the page and writes.
        return [
            sync(1, SyncKind.ALLOC_PAGE, self.PAGE, 1),
            mem(1, X, 10, True),
            sync(1, SyncKind.FREE_PAGE, self.PAGE, 2),
            sync(2, SyncKind.ALLOC_PAGE, self.PAGE, 3),
            mem(2, X, 20, True),
        ]

    def test_alloc_as_sync_suppresses_false_race(self):
        report = detect_races(self.events(), alloc_as_sync=True)
        assert report.num_static == 0

    def test_disabled_rule_reports_false_race(self):
        report = detect_races(self.events(), alloc_as_sync=False)
        assert report.static_races == {(10, 20)}


class TestDetectorState:
    def test_addresses_tracked(self):
        detector = HappensBeforeDetector()
        detector.feed(mem(1, X, 1, True))
        detector.feed(mem(1, X + 8, 2, True))
        assert detector.addresses_tracked == 2

    def test_write_clears_read_map(self):
        # r1, r2, then ordered writes: second write should not re-race reads
        # that the first write already subsumed.
        detector = HappensBeforeDetector()
        detector.feed(mem(1, X, 1, False))
        detector.feed(mem(1, X, 2, True))
        detector.feed(mem(1, X, 3, True))
        assert detector.report.num_static == 0

    def test_example_instance_recorded(self):
        report = detect_races([
            mem(1, X, 10, True),
            mem(2, X, 20, False),
        ])
        example = report.examples[(10, 20)]
        assert example.addr == X
        assert {example.first_tid, example.second_tid} == {1, 2}
        assert example.first_is_write or example.second_is_write
