"""Smoke target: the validation CLI is exercised end to end on every PR.

Profiles a planted-race workload with ``run --log-out``, feeds the log to
``repro validate`` (confirm + minimize + report + witnesses + suppression
export), then loads the artifacts back in-process and strict-replays a
confirmed witness to check it still races.  Also drives the inline
``run --validate`` path and checks the triage annotation.  Wired into CI
as ``make validate-smoke``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

WORKLOAD = "synthetic"
SCALE = "0.05"
SEED = "1"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _repro(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT, env=_env(), capture_output=True, text=True,
        timeout=300,
    )


def test_validate_cli_smoke(tmp_path):
    log_path = tmp_path / "run.ltrc"
    out_path = tmp_path / "validation.json"
    witness_dir = tmp_path / "witnesses"
    supp_path = tmp_path / "suppressions.txt"

    run = _repro("run", WORKLOAD, "--sampler", "Full",
                 "--seed", SEED, "--scale", SCALE,
                 "--log-out", str(log_path))
    assert run.returncode == 0, run.stderr[-4000:]
    assert log_path.exists()

    validate = _repro("validate", str(log_path),
                      "--workload", WORKLOAD,
                      "--seed", SEED, "--scale", SCALE,
                      "--minimize",
                      "--out", str(out_path),
                      "--witness-dir", str(witness_dir),
                      "--suppressions-out", str(supp_path))
    assert validate.returncode == 0, validate.stderr[-4000:]
    assert "candidate pair(s)" in validate.stdout
    assert "confirmed" in validate.stdout

    # The report round-trips and records confirmed pairs with witnesses.
    report_json = json.loads(out_path.read_text(encoding="utf-8"))
    assert report_json["workload"] == WORKLOAD
    confirmed = [entry for entry in report_json["verdicts"]
                 if entry["verdict"] == "confirmed"]
    assert confirmed, validate.stdout
    witnesses = sorted(witness_dir.glob("*.ltrt"))
    assert len(witnesses) == len(confirmed)
    assert supp_path.exists()

    # A confirmed witness must deterministically re-trigger its race on a
    # plain executor — the CLI's artifacts are proofs, not logs.
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.detector.merge import merge_thread_logs
        from repro.validate import (
            ScheduleTrace, ValidationReport, pair_raced, replay_witness,
        )
        from repro.workloads import build

        program = build(WORKLOAD, seed=int(SEED), scale=float(SCALE))
        report = ValidationReport.load(out_path)
        entry = report.confirmed[0]
        witness = report.load_witness(entry)
        assert isinstance(witness, ScheduleTrace)
        replay_log, _ = replay_witness(program, witness)
        assert pair_raced(merge_thread_logs(replay_log).events, entry.pair)
    finally:
        sys.path.remove(str(REPO_ROOT / "src"))


def test_run_validate_inline_smoke(tmp_path):
    witness_dir = tmp_path / "witnesses"
    run = _repro("run", WORKLOAD, "--sampler", "Full",
                 "--seed", SEED, "--scale", SCALE,
                 "--validate", "--budget", "3",
                 "--witness-dir", str(witness_dir))
    assert run.returncode == 0, run.stderr[-4000:]
    assert "validated: CONFIRMED" in run.stdout
    assert sorted(witness_dir.glob("*.ltrt"))
