"""Tests for instruction-set metadata and misc TIR properties."""

from repro.tir import ops
from repro.tir.ops import MEMORY_OPS, SYNC_OPS


class TestInstructionClassification:
    def test_sync_ops_cover_every_synchronizing_kind(self):
        for cls in (ops.Lock, ops.Unlock, ops.Wait, ops.Notify, ops.Fork,
                    ops.Join, ops.AtomicRMW, ops.Alloc, ops.Free):
            assert cls in SYNC_OPS

    def test_memory_ops_are_reads_and_writes(self):
        assert set(MEMORY_OPS) == {ops.Read, ops.Write}

    def test_classes_disjoint(self):
        assert not set(SYNC_OPS) & set(MEMORY_OPS)

    def test_compute_io_call_loop_are_neither(self):
        for cls in (ops.Compute, ops.Io, ops.Call, ops.Loop):
            assert cls not in SYNC_OPS
            assert cls not in MEMORY_OPS


class TestIdentitySemantics:
    def test_instructions_compare_by_identity(self):
        a = ops.Read(100)
        b = ops.Read(100)
        assert a != b
        assert a == a

    def test_pc_defaults_to_unassigned(self):
        assert ops.Write(1).pc == -1

    def test_defaults(self):
        assert ops.Compute().n == 1
        assert ops.Wait(1).consume is True
        assert ops.Lock(1).via_cas is False
        assert ops.Fork("f").args == ()
        assert ops.Fork("f").tid_slot is None
