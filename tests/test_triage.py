"""Tests for the triage-report renderer."""

from repro.core.literace import LiteRace
from repro.core.triage import render_triage, triage
from repro.workloads.synthetic import two_thread_racer


def analyzed(synchronized=False):
    program = two_thread_racer(synchronized=synchronized)
    return program, LiteRace(sampler="Full", seed=1).run(program)


class TestTriage:
    def test_symbolizes_race_sites(self):
        program, result = analyzed()
        races = triage(program, result.report,
                       result.run.nonstack_memory_ops)
        assert len(races) == 1
        assert races[0].first.startswith("writer+")
        assert races[0].kinds == "write-write"

    def test_sorted_by_occurrence(self):
        program, result = analyzed()
        races = triage(program, result.report,
                       result.run.nonstack_memory_ops)
        counts = [race.occurrences for race in races]
        assert counts == sorted(counts, reverse=True)

    def test_headline_contains_classification(self):
        program, result = analyzed()
        races = triage(program, result.report,
                       result.run.nonstack_memory_ops)
        assert "write-write" in races[0].headline()


class TestRender:
    def test_report_with_races(self):
        program, result = analyzed()
        text = render_triage(program, result)
        assert "1 static data race(s)" in text
        assert "writer+" in text
        assert "coverage" in text and "overhead" in text

    def test_clean_report_warns_about_sampling(self):
        program, result = analyzed(synchronized=True)
        text = render_triage(program, result)
        assert "No data races detected" in text
        assert "not a proof of absence" in text

    def test_custom_title(self):
        program, result = analyzed()
        text = render_triage(program, result, title="My run")
        assert text.splitlines()[0] == "My run"

    def test_torn_timestamps_flagged(self):
        from repro.workloads.synthetic import cas_lock_program

        program = cas_lock_program(1, threads=4, iterations=200)
        result = LiteRace(sampler="Full", seed=1,
                          atomic_timestamps=False).run(program)
        text = render_triage(program, result)
        assert "WARNING" in text
