"""Tests for the declarative scenario subsystem.

Covers the spec layer (validation, dict round trip, ``derive``), the
compiler's structural safety checks (queue balance, region role
disjointness), the registry integration, the two scenario-level design
invariants — build determinism (same spec + seed → byte-identical encoded
log) and ground truth (Full logging finds exactly the planted races, via
the FlatDetector the tool runs on) — and the traffic generator.
"""

import dataclasses

import pytest

from repro import workloads
from repro.core.literace import LiteRace
from repro.detector.flat import FlatDetector
from repro.eventlog.encode import encode_log
from repro.eventlog.events import SyncEvent
from repro.scenarios import (CATALOG, ScenarioError, ScenarioSpec,
                             compile_scenario, designated_racers, scenario,
                             scenario_names)
from repro.scenarios.spec import (LockSpec, PoolSpec, RaceSpec, RegionSpec,
                                  StepSpec, TrafficSpec)
from repro.scenarios.traffic import bursts, generate_trace

SCENARIOS = scenario_names()


def _minimal_spec(**overrides) -> ScenarioSpec:
    """A small two-pool spec used as the editing base for error tests."""
    base = ScenarioSpec(
        name="mini",
        regions=(RegionSpec("table", elements=4),
                 RegionSpec("stats", elements=2)),
        locks=(LockSpec("stats_lock", guards=("stats",)),),
        pools=(
            PoolSpec("front", threads=2, requests=32, chunk=8,
                     body=(StepSpec("config_read", "table", 2),
                           StepSpec("tls")),
                     flush=(StepSpec("locked_update", "stats_lock"),)),
            PoolSpec("back", threads=2, requests=32, chunk=8,
                     body=(StepSpec("compute", count=2),)),
        ),
        races=(RaceSpec("init_flag", pools=("front", "back"),
                        rate="cold", placement="start"),),
    )
    return dataclasses.replace(base, **overrides) if overrides else base


class TestSpecValidation:
    def test_minimal_spec_validates(self):
        _minimal_spec().validate()

    def test_unknown_step_op_rejected(self):
        with pytest.raises(ScenarioError, match="unknown step op"):
            StepSpec("teleport").validate()

    def test_duplicate_pool_name_rejected(self):
        spec = _minimal_spec()
        twin = dataclasses.replace(spec,
                                   pools=spec.pools + (spec.pools[0],))
        with pytest.raises(ScenarioError, match="duplicate pool"):
            twin.validate()

    def test_lock_must_guard_something(self):
        with pytest.raises(ScenarioError, match="guards no region"):
            LockSpec("lonely").validate()

    def test_lock_cannot_guard_queue_region(self):
        spec = _minimal_spec(
            regions=(RegionSpec("table", elements=4),
                     RegionSpec("stats", kind="queue")))
        with pytest.raises(ScenarioError, match="non-data region"):
            spec.validate()

    def test_cold_race_needs_two_racers(self):
        with pytest.raises(ScenarioError, match=">= 2"):
            RaceSpec("solo", pools=("front",), racers=1).validate()

    def test_race_needs_enough_threads(self):
        spec = _minimal_spec(
            races=(RaceSpec("crowded", pools=("front",), racers=5),))
        with pytest.raises(ScenarioError, match="only 2 available"):
            spec.validate()

    def test_race_pool_must_exist(self):
        spec = _minimal_spec(
            races=(RaceSpec("ghost", pools=("nowhere",)),))
        with pytest.raises(ScenarioError, match="unknown pool"):
            spec.validate()

    def test_queue_selector_requires_matching_instances(self):
        spec = _minimal_spec(
            regions=(RegionSpec("table", elements=4),
                     RegionSpec("stats", elements=2),
                     RegionSpec("q", kind="queue", instances=3)),
            pools=(
                PoolSpec("front", threads=2, requests=32, chunk=8,
                         body=(StepSpec("queue_push", "q", instance="own"),
                               StepSpec("queue_pop", "q", instance="next"))),
                PoolSpec("back", threads=2, requests=32, chunk=8,
                         body=(StepSpec("compute"),)),
            ))
        with pytest.raises(ScenarioError, match="instances =="):
            spec.validate()

    def test_step_region_kind_checked(self):
        spec = _minimal_spec(
            regions=(RegionSpec("table", kind="queue"),
                     RegionSpec("stats", elements=2)))
        with pytest.raises(ScenarioError, match="must be a data region"):
            spec.validate()


class TestDictRoundTrip:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_catalog_round_trips(self, name):
        spec = scenario(name)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_step_list_shorthand(self):
        step = StepSpec.from_dict(["config_read", "table", 6])
        assert step == StepSpec("config_read", "table", 6)

    def test_from_dict_validates(self):
        data = _minimal_spec().to_dict()
        data["pools"][0]["chunk"] = 0
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict(data)


class TestDerive:
    def test_named_merge_touches_one_pool(self):
        base = scenario("kv-store")
        derived = base.derive({"pools": {"readers": {"threads": 12}}})
        assert derived.pool("readers").threads == 12
        assert derived.pool("writers") == base.pool("writers")
        assert derived.pool("readers").body == base.pool("readers").body

    def test_rename_gives_new_identity(self):
        derived = scenario("kv-store").derive({}, rename="kv-store-wide")
        assert derived.name == "kv-store-wide"

    def test_traffic_merges_key_by_key(self):
        base = scenario("kv-store")
        derived = base.derive({"traffic": {"burst": 4}})
        assert derived.traffic.burst == 4
        assert derived.traffic.mix == base.traffic.mix

    def test_derive_validates_result(self):
        with pytest.raises(ScenarioError):
            scenario("kv-store").derive(
                {"pools": {"readers": {"threads": 0}}})

    def test_base_spec_unchanged(self):
        base = scenario("work-steal")
        base.derive({"pools": {"workers": {"threads": 8}},
                     "regions": {"deques": {"instances": 8}}})
        assert base.pool("workers").threads == 4


class TestCompileChecks:
    def test_queue_imbalance_rejected(self):
        spec = _minimal_spec(
            regions=(RegionSpec("table", elements=4),
                     RegionSpec("stats", elements=2),
                     RegionSpec("q", kind="queue")),
            pools=(
                PoolSpec("front", threads=2, requests=32, chunk=8,
                         body=(StepSpec("queue_push", "q"),)),
                PoolSpec("back", threads=2, requests=32, chunk=8,
                         body=(StepSpec("compute"),)),
            ))
        with pytest.raises(ScenarioError, match="pushes vs"):
            compile_scenario(spec, scale=0.25)

    def test_region_role_mixing_rejected(self):
        # "table" is config-read by front; guarding it too would let a
        # locked writer race every unsynchronized read.
        spec = _minimal_spec(
            locks=(LockSpec("stats_lock", guards=("stats", "table")),))
        with pytest.raises(ScenarioError, match="exactly one access"):
            compile_scenario(spec, scale=0.25)

    def test_two_locks_one_region_rejected(self):
        spec = _minimal_spec(
            locks=(LockSpec("stats_lock", guards=("stats",)),
                   LockSpec("other_lock", guards=("stats",))))
        with pytest.raises(ScenarioError, match="two locks"):
            compile_scenario(spec, scale=0.25)

    def test_read_only_race_rejected(self):
        spec = _minimal_spec(
            races=(RaceSpec("reader", pools=("front", "back"),
                            write=False),))
        with pytest.raises(ScenarioError, match="write access"):
            compile_scenario(spec, scale=0.25)

    def test_designated_racers_are_latest_spawns(self):
        spec = scenario("kv-store")
        race = next(r for r in spec.races if r.name == "shard_init")
        racers = designated_racers(spec, race)
        # Two racers drawn round-robin from the back of each listed pool.
        assert racers == {("readers", 5), ("writers", 1)}
        assert all(r.racers == len(designated_racers(spec, r))
                   for r in spec.races if r.rate == "cold")


class TestRegistryIntegration:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_scenarios_are_workloads(self, name):
        assert name in workloads.names()
        spec = workloads.get(name)
        assert "scenario" in spec.tags
        assert not spec.in_race_eval and not spec.in_overhead_eval

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_registry_build_matches_direct_compile(self, name):
        via_registry = workloads.build(name, seed=1, scale=0.05)
        direct = compile_scenario(scenario(name), seed=1, scale=0.05)
        assert via_registry.num_functions == direct.num_functions
        assert ({k for p in via_registry.planted_races for k in p.keys}
                == {k for p in direct.planted_races for k in p.keys})

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario("nope")

    def test_catalog_presentation_order(self):
        assert SCENARIOS == ["kv-store", "web-server", "pipeline",
                             "work-steal"]


@pytest.mark.parametrize("name", SCENARIOS)
class TestDeterminism:
    def test_same_spec_and_seed_byte_identical_log(self, name):
        """Two independent compiles + runs of the same (spec, seed) must
        serialize to the same bytes — the reproducibility contract the
        loadgen templates and the validation engine rely on."""
        logs = []
        for _ in range(2):
            program = compile_scenario(scenario(name), seed=3, scale=0.02)
            result = LiteRace(sampler="Full", seed=3).run(program)
            logs.append(encode_log(result.log))
        assert logs[0] == logs[1]

    def test_seed_changes_interleaving_not_ground_truth(self, name):
        keys = []
        for seed in (1, 2):
            program = compile_scenario(scenario(name), seed=seed,
                                       scale=0.02)
            keys.append({k for p in program.planted_races for k in p.keys})
        assert keys[0] == keys[1]


@pytest.mark.parametrize("name", SCENARIOS)
class TestGroundTruth:
    def test_full_logging_finds_exactly_the_planted_races(self, name):
        program = compile_scenario(scenario(name), seed=2, scale=0.05)
        result = LiteRace(sampler="Full", seed=2).run(program)
        planted = {k for p in program.planted_races for k in p.keys}
        assert result.report.static_races == planted

    def test_flat_detector_replays_the_same_verdict(self, name):
        """The batched FlatDetector (the server-side hot path) must agree
        with the online verdict on the same event stream."""
        program = compile_scenario(scenario(name), seed=2, scale=0.02)
        result = LiteRace(sampler="Full", seed=2).run(program)
        replay = FlatDetector("fasttrack").feed_all(result.log.events)
        planted = {k for p in program.planted_races for k in p.keys}
        assert replay.report.static_races == planted

    def test_archetype_coverage(self, name):
        """Every scenario plants all four §3.4 archetypes."""
        spec = scenario(name)
        assert any(r.rate == "cold" and r.placement == "start" and r.warmup
                   for r in spec.races)
        assert any(r.rate == "cold" and r.placement == "end"
                   for r in spec.races)
        assert any(r.rate == "frequent" for r in spec.races)
        assert any(r.hot for r in spec.races)

    def test_sync_traffic_present(self, name):
        """Scenarios are service-shaped: the compiled run must contain
        real synchronization, not just straight-line memory traffic."""
        program = compile_scenario(scenario(name), seed=1, scale=0.02)
        result = LiteRace(sampler="Full", seed=1).run(program)
        assert any(isinstance(e, SyncEvent) for e in result.log.events)


class TestTraffic:
    def test_trace_is_deterministic(self):
        spec = scenario("kv-store")
        assert generate_trace(spec, 64, seed=5) == \
            generate_trace(spec, 64, seed=5)

    def test_seed_changes_trace(self):
        spec = scenario("kv-store")
        assert generate_trace(spec, 64, seed=1) != \
            generate_trace(spec, 64, seed=2)

    def test_items_respect_profile(self):
        spec = scenario("web-server")
        ops = {op for op, _ in spec.traffic.mix}
        trace = generate_trace(spec, 200, seed=1)
        assert len(trace) == 200
        for item in trace:
            assert item.op in ops
            assert 0 <= item.key < spec.traffic.key_space

    def test_bursts_group_by_session(self):
        spec = scenario("kv-store")
        trace = generate_trace(spec, 20, seed=1)  # burst=8 -> 8+8+4
        groups = list(bursts(trace))
        assert [len(g) for g in groups] == [8, 8, 4]
        assert [g[0].burst for g in groups] == [0, 1, 2]

    def test_scale_for_requests(self):
        spec = scenario("kv-store")
        assert spec.scale_for_requests(spec.traffic.requests) == 1.0
        assert spec.scale_for_requests(spec.traffic.requests // 2) == 0.5
        with pytest.raises(ScenarioError):
            spec.scale_for_requests(0)
