"""The engine's determinism guarantee, proven at the artifact byte level.

The contract (docs/experiment_engine.md): for a fixed (scale, seeds,
samplers) matrix, the rendered artifacts are byte-identical across
``jobs=1``, ``jobs=4``, and a warm-cache rerun — and independent of the
order cells are submitted or completed.  These tests exercise a small
matrix (scale=0.1, seeds=(1, 2)) end to end.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments import common, engine, figure4, table3

SCALE = 0.1
SEEDS = (1, 2)
BENCHMARKS = ("apache-1", "firefox-start")


@pytest.fixture
def cold_cache(tmp_path):
    """A private empty persistent cache; restores engine config after."""
    previous = engine.configure(cache_dir=str(tmp_path / "cache"))
    common.clear_memo()
    yield str(tmp_path / "cache")
    engine.configure(**previous)
    common.clear_memo()


def _render_artifacts(jobs: int) -> tuple:
    """Table 3 + Figure 4 for the small matrix, bypassing the in-process
    memo so every call really exercises the engine."""
    common.clear_memo()
    kwargs = dict(scale=SCALE, seeds=SEEDS, benchmarks=BENCHMARKS, jobs=jobs)
    return table3.run(**kwargs), figure4.run(**kwargs)


class TestArtifactByteIdentity:
    def test_serial_parallel_and_warm_cache_agree(self, cold_cache):
        serial = _render_artifacts(jobs=1)
        executed_serial = engine.execution_count()

        parallel = _render_artifacts(jobs=4)
        assert parallel == serial

        executed_before_warm = engine.execution_count()
        warm = _render_artifacts(jobs=4)
        assert warm == serial
        # The warm rerun was served entirely from the persistent cache.
        assert engine.execution_count() == executed_before_warm
        # ... and the first two passes actually ran cells (once each, the
        # second pass having hit the cache the first one filled).
        assert executed_serial >= len(BENCHMARKS) * len(SEEDS)
        assert executed_before_warm == executed_serial

    def test_artifacts_contain_expected_matrix(self, cold_cache):
        table, figure = _render_artifacts(jobs=2)
        assert "Table 3" in table
        assert "Figure 4" in figure
        for sampler in ("TL-Ad", "UCP"):
            assert sampler in table and sampler in figure


class TestSubmissionOrderIndependence:
    def test_shuffled_submission_same_results(self, cold_cache):
        cells = engine.detection_cells(BENCHMARKS, SEEDS, SCALE)
        shuffled = cells[:]
        random.Random(0xC0FFEE).shuffle(shuffled)
        assert shuffled != cells  # the shuffle must actually permute

        canonical = engine.run_cells(cells, jobs=2, use_cache=False)
        permuted = engine.run_cells(shuffled, jobs=2, use_cache=False)

        # Same mapping, and the merged iteration order is the canonical
        # cell-key order both times — submission order is invisible.
        assert canonical == permuted
        assert list(canonical) == list(permuted)
        assert list(canonical) == sorted(cells, key=engine.Cell.sort_key)

    def test_study_assembly_order_matches_serial_path(self, cold_cache):
        study = engine.parallel_detection_study(
            scale=SCALE, seeds=SEEDS, benchmarks=BENCHMARKS, jobs=2)
        observed = [(run.benchmark, run.seed) for run in study.runs]
        expected = [(b, s) for b in BENCHMARKS for s in SEEDS]
        assert observed == expected


class TestWarmCacheRegeneratesEverything:
    """Acceptance: warm-cache regeneration of all eight artifacts performs
    zero workload executions (run-counter hook)."""

    def test_zero_executions_for_all_eight_artifacts(self, cold_cache):
        from repro.experiments import (figure5, figure6, table1, table2,
                                       table4, table5)

        modules = (table1, table2, table3, table4, table5,
                   figure4, figure5, figure6)

        def render_all():
            common.clear_memo()
            kwargs = dict(scale=0.05, seeds=(1,), jobs=2)
            return tuple(module.run(**kwargs) for module in modules)

        first = render_all()
        assert engine.execution_count() > 0

        baseline = engine.execution_count()
        second = render_all()
        assert second == first
        assert engine.execution_count() == baseline, \
            "warm-cache regeneration must execute zero workloads"
