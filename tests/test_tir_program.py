"""Tests for Program/Function validation and PC assignment."""

import pytest

from repro.tir import ops
from repro.tir.builder import ProgramBuilder
from repro.tir.program import Function, Program, ProgramError


def build_single(body, name="f", entry="f", **func_kwargs):
    return Program([Function(name, tuple(body), **func_kwargs)], entry=entry)


class TestFinalize:
    def test_pcs_are_unique_and_dense(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.compute(1)
            with f.loop(3):
                f.read(0x100)
                f.write(0x108)
            f.compute(2)
        program = b.build(entry="f")
        pcs = [instr.pc for instr in program.function("f").instructions()]
        assert sorted(pcs) == list(range(len(pcs)))

    def test_instr_at_roundtrip(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.read(0x100)
        program = b.build(entry="f")
        for instr in program.function("f").instructions():
            assert program.instr_at(instr.pc) is instr

    def test_static_size_counts_loop_bodies(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            with f.loop(1000):
                f.read(0x100)
        program = b.build(entry="f")
        # loop + read = 2 static instructions regardless of trip count
        assert program.static_size == 2

    def test_planted_races_default_empty(self):
        program = build_single([ops.Compute(1)])
        assert program.planted_races == ()


class TestValidation:
    def test_missing_entry(self):
        with pytest.raises(ProgramError, match="entry"):
            Program([Function("f", (ops.Compute(1),))], entry="nope")

    def test_duplicate_function_names(self):
        funcs = [Function("f", (ops.Compute(1),)),
                 Function("f", (ops.Compute(1),))]
        with pytest.raises(ProgramError, match="duplicate"):
            Program(funcs, entry="f")

    def test_undefined_callee(self):
        with pytest.raises(ProgramError, match="undefined function"):
            build_single([ops.Call("ghost")])

    def test_wrong_arity(self):
        callee = Function("callee", (ops.Compute(1),), num_params=2)
        caller = Function("caller", (ops.Call("callee", (1,)),))
        with pytest.raises(ProgramError, match="params"):
            Program([callee, caller], entry="caller")

    def test_fork_arity_checked(self):
        child = Function("child", (ops.Compute(1),), num_params=1)
        parent = Function("parent", (ops.Fork("child", ()),))
        with pytest.raises(ProgramError, match="params"):
            Program([child, parent], entry="parent")

    def test_join_slot_out_of_range(self):
        with pytest.raises(ProgramError, match="slot"):
            build_single([ops.Join(0)])  # no slots declared

    def test_alloc_slot_out_of_range(self):
        with pytest.raises(ProgramError, match="slot"):
            build_single([ops.Alloc(64, 3)], num_slots=2)

    def test_alloc_size_positive(self):
        with pytest.raises(ProgramError, match="positive"):
            build_single([ops.Alloc(0, 0)], num_slots=1)

    def test_negative_compute(self):
        with pytest.raises(ProgramError, match="Compute"):
            build_single([ops.Compute(-1)])

    def test_negative_io(self):
        with pytest.raises(ProgramError, match="Io"):
            build_single([ops.Io(-5)])

    def test_negative_loop_count(self):
        with pytest.raises(ProgramError, match="Loop count"):
            build_single([ops.Loop(-1, (ops.Compute(1),))])

    def test_empty_loop_body(self):
        with pytest.raises(ProgramError, match="empty"):
            build_single([ops.Loop(3, ())])

    def test_valid_program_passes(self):
        program = build_single([ops.Compute(1), ops.Read(0x100)])
        assert program.num_functions == 1


class TestSymbolize:
    def test_function_of_pc(self):
        b = ProgramBuilder()
        with b.function("first") as f:
            f.read(1)
        with b.function("second") as f:
            f.write(2)
        program = b.build(entry="first")
        read_pc = program.function("first").body[0].pc
        write_pc = program.function("second").body[0].pc
        assert program.function_of_pc(read_pc) == "first"
        assert program.function_of_pc(write_pc) == "second"

    def test_symbolize_format(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.compute(1)
            f.write(2)
        program = b.build(entry="f")
        pc = program.function("f").body[1].pc
        assert program.symbolize(pc) == "f+1 (Write)"

    def test_symbolize_unknown_pc(self):
        b = ProgramBuilder()
        with b.function("f") as f:
            f.compute(1)
        program = b.build(entry="f")
        assert program.symbolize(-1) == "pc-1"
        assert program.symbolize(999) == "pc999"
