"""Executions are deterministic functions of (program, scheduler seed).

The validation engine's whole contract — record a run, replay it, get the
same races — rests on this: two executions with identically-configured
schedulers must produce byte-identical encoded logs and the same race
report.  These tests pin that property for every scheduler policy, using
``fresh()`` to obtain pristine instances (schedulers carry mutable
decision state, so *reusing* an instance across runs is exactly the bug
``fresh()`` exists to avoid).
"""

import pytest

from repro.core.harness import ProfilingHarness
from repro.core.samplers import make_sampler
from repro.detector.hb import detect_races
from repro.detector.merge import merge_thread_logs
from repro.eventlog.encode import encode_log
from repro.runtime.chaos import ChaosScheduler
from repro.runtime.executor import Executor
from repro.runtime.scheduler import RandomInterleaver, RoundRobinScheduler
from repro.workloads.synthetic import two_thread_racer

POLICIES = [
    pytest.param(RandomInterleaver(seed=7, switch_prob=0.3),
                 id="random-interleaver"),
    pytest.param(RoundRobinScheduler(quantum=3), id="round-robin"),
    pytest.param(ChaosScheduler(seed=5, change_points=3,
                                expected_steps=2_000), id="chaos"),
]


def _execute(program, scheduler, sampler="Full"):
    harness = ProfilingHarness(make_sampler(sampler))
    executor = Executor(program, scheduler=scheduler, harness=harness)
    run = executor.run()
    return run, harness.log


@pytest.mark.parametrize("scheduler", POLICIES)
def test_same_seed_byte_identical_logs(scheduler):
    program = two_thread_racer()
    run1, log1 = _execute(program, scheduler.fresh())
    run2, log2 = _execute(program, scheduler.fresh())
    assert run1.steps == run2.steps
    assert encode_log(log1) == encode_log(log2)


@pytest.mark.parametrize("scheduler", POLICIES)
def test_same_seed_equal_race_reports(scheduler):
    program = two_thread_racer()
    _, log1 = _execute(program, scheduler.fresh())
    _, log2 = _execute(program, scheduler.fresh())
    report1 = detect_races(merge_thread_logs(log1).events)
    report2 = detect_races(merge_thread_logs(log2).events)
    assert report1.occurrences == report2.occurrences
    assert report1.examples == report2.examples
    assert report1.addresses == report2.addresses


@pytest.mark.parametrize("scheduler", POLICIES)
def test_sampled_runs_equally_deterministic(scheduler):
    # Samplers and the timestamp tracker are seeded too — determinism must
    # survive the full production configuration, not just Full logging.
    program = two_thread_racer()
    _, log1 = _execute(program, scheduler.fresh(), sampler="TL-Ad")
    _, log2 = _execute(program, scheduler.fresh(), sampler="TL-Ad")
    assert encode_log(log1) == encode_log(log2)


def test_fresh_returns_pristine_equivalent():
    # A used scheduler's fresh() copy behaves like a brand-new instance.
    used = RandomInterleaver(seed=11, switch_prob=0.4)
    for _ in range(50):
        used.next_thread(None, [0, 1, 2])
    replica = used.fresh()
    pristine = RandomInterleaver(seed=11, switch_prob=0.4)
    picks_replica = [replica.next_thread(None, [0, 1, 2])
                     for _ in range(100)]
    picks_pristine = [pristine.next_thread(None, [0, 1, 2])
                      for _ in range(100)]
    assert picks_replica == picks_pristine
