"""Tests for the simulated address-space layout."""

from repro.layout import (
    GLOBALS_BASE,
    HEAP_BASE,
    PAGE_SIZE,
    TLS_BASE,
    TLS_SIZE,
    is_stack_addr,
    page_of,
    tls_base_for,
)


class TestRegions:
    def test_regions_are_ordered_and_disjoint(self):
        assert 0 < GLOBALS_BASE < HEAP_BASE < TLS_BASE

    def test_globals_not_stack(self):
        assert not is_stack_addr(GLOBALS_BASE)
        assert not is_stack_addr(GLOBALS_BASE + 123456)

    def test_heap_not_stack(self):
        assert not is_stack_addr(HEAP_BASE)
        assert not is_stack_addr(TLS_BASE - 1)

    def test_tls_is_stack(self):
        assert is_stack_addr(TLS_BASE)
        assert is_stack_addr(tls_base_for(7) + 100)


class TestTlsBases:
    def test_distinct_per_thread(self):
        bases = {tls_base_for(t) for t in range(100)}
        assert len(bases) == 100

    def test_spacing(self):
        assert tls_base_for(1) - tls_base_for(0) == TLS_SIZE

    def test_regions_do_not_overlap_for_many_threads(self):
        assert tls_base_for(0) + TLS_SIZE <= tls_base_for(1)


class TestPages:
    def test_page_of_zero(self):
        assert page_of(0) == 0

    def test_page_boundaries(self):
        assert page_of(PAGE_SIZE - 1) == 0
        assert page_of(PAGE_SIZE) == 1
        assert page_of(PAGE_SIZE * 10 + 5) == 10
