"""Tests for the interleaving schedulers."""

from repro.runtime.chaos import ChaosScheduler
from repro.runtime.scheduler import RandomInterleaver, RoundRobinScheduler

import pytest


def _stream(scheduler, steps=200, threads=4):
    """Drive a scheduler and return its decision stream.

    Two phases, because different policies hide seed collisions behind
    different blind spots: a fixed runnable set exposes quantum/RNG
    differences (a cycling set would truncate every round-robin quantum
    to the same effective length), then a cycling set exposes priority
    *orders* (a fixed set shows only the constant top pick of a
    ChaosScheduler).
    """
    current = None
    picks = []
    for _ in range(steps):
        current = scheduler.next_thread(current, [0, 1, 2])
        picks.append(current)
    for step in range(steps):
        runnable = [(step + offset) % threads for offset in range(3)]
        current = scheduler.next_thread(current, runnable)
        picks.append(current)
    return picks


class TestRandomInterleaver:
    def test_same_seed_same_sequence(self):
        def drive(seed):
            s = RandomInterleaver(seed)
            current = None
            picks = []
            for _ in range(200):
                current = s.next_thread(current, [0, 1, 2])
                picks.append(current)
            return picks

        assert drive(42) == drive(42)
        assert drive(42) != drive(43)

    def test_low_switch_prob_means_long_runs(self):
        s = RandomInterleaver(0, switch_prob=0.01)
        current = 0
        switches = 0
        for _ in range(1000):
            nxt = s.next_thread(current, [0, 1])
            if nxt != current:
                switches += 1
            current = nxt
        assert switches < 100

    def test_blocked_current_forces_switch(self):
        s = RandomInterleaver(0, switch_prob=0.0)
        # current not in runnable -> must pick someone runnable
        assert s.next_thread(5, [1, 2]) in (1, 2)

    def test_every_runnable_eventually_scheduled(self):
        s = RandomInterleaver(7, switch_prob=0.5)
        seen = set()
        current = None
        for _ in range(500):
            current = s.next_thread(current, [0, 1, 2, 3])
            seen.add(current)
        assert seen == {0, 1, 2, 3}

    def test_invalid_switch_prob(self):
        with pytest.raises(ValueError):
            RandomInterleaver(0, switch_prob=1.5)

    def test_fork_seed_derives_new_policy(self):
        s = RandomInterleaver(1, switch_prob=0.2)
        child = s.fork_seed(3)
        assert isinstance(child, RandomInterleaver)
        assert child.switch_prob == 0.2
        assert child.seed != s.seed


class TestRoundRobin:
    def test_quantum_respected(self):
        s = RoundRobinScheduler(quantum=3)
        picks = []
        current = None
        for _ in range(9):
            current = s.next_thread(current, [0, 1, 2])
            picks.append(current)
        assert picks == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_wraps_around(self):
        s = RoundRobinScheduler(quantum=1)
        picks = []
        current = None
        for _ in range(6):
            current = s.next_thread(current, [0, 1, 2])
            picks.append(current)
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_blocked(self):
        s = RoundRobinScheduler(quantum=2)
        assert s.next_thread(0, [2, 5]) in (2, 5)

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)


class TestForkSeed:
    """The validator forks one child per attempt and relies on every
    child exploring a different interleaving — distinct indices must
    yield pairwise-distinct decision streams, and no child may replicate
    its parent."""

    PARENTS = [
        pytest.param(RandomInterleaver(seed=1, switch_prob=0.2),
                     id="random-interleaver"),
        pytest.param(RoundRobinScheduler(quantum=2), id="round-robin"),
        pytest.param(ChaosScheduler(seed=3, change_points=8,
                                    expected_steps=200), id="chaos"),
    ]

    @pytest.mark.parametrize("parent", PARENTS)
    def test_distinct_indices_distinct_streams(self, parent):
        streams = [_stream(parent.fresh().fork_seed(i)) for i in range(6)]
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert streams[i] != streams[j], (
                    f"fork_seed({i}) and fork_seed({j}) produced the same "
                    f"decision stream")

    @pytest.mark.parametrize("parent", PARENTS)
    def test_no_child_replicates_parent(self, parent):
        parent_stream = _stream(parent.fresh())
        for index in range(4):
            child_stream = _stream(parent.fresh().fork_seed(index))
            assert child_stream != parent_stream, (
                f"fork_seed({index}) reproduced the parent's stream")

    @pytest.mark.parametrize("parent", PARENTS)
    def test_fork_is_deterministic(self, parent):
        assert (_stream(parent.fresh().fork_seed(2))
                == _stream(parent.fresh().fork_seed(2)))
