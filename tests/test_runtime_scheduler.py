"""Tests for the interleaving schedulers."""

from repro.runtime.scheduler import RandomInterleaver, RoundRobinScheduler

import pytest


class TestRandomInterleaver:
    def test_same_seed_same_sequence(self):
        def drive(seed):
            s = RandomInterleaver(seed)
            current = None
            picks = []
            for _ in range(200):
                current = s.next_thread(current, [0, 1, 2])
                picks.append(current)
            return picks

        assert drive(42) == drive(42)
        assert drive(42) != drive(43)

    def test_low_switch_prob_means_long_runs(self):
        s = RandomInterleaver(0, switch_prob=0.01)
        current = 0
        switches = 0
        for _ in range(1000):
            nxt = s.next_thread(current, [0, 1])
            if nxt != current:
                switches += 1
            current = nxt
        assert switches < 100

    def test_blocked_current_forces_switch(self):
        s = RandomInterleaver(0, switch_prob=0.0)
        # current not in runnable -> must pick someone runnable
        assert s.next_thread(5, [1, 2]) in (1, 2)

    def test_every_runnable_eventually_scheduled(self):
        s = RandomInterleaver(7, switch_prob=0.5)
        seen = set()
        current = None
        for _ in range(500):
            current = s.next_thread(current, [0, 1, 2, 3])
            seen.add(current)
        assert seen == {0, 1, 2, 3}

    def test_invalid_switch_prob(self):
        with pytest.raises(ValueError):
            RandomInterleaver(0, switch_prob=1.5)

    def test_fork_seed_derives_new_policy(self):
        s = RandomInterleaver(1, switch_prob=0.2)
        child = s.fork_seed(3)
        assert isinstance(child, RandomInterleaver)
        assert child.switch_prob == 0.2
        assert child.seed != s.seed


class TestRoundRobin:
    def test_quantum_respected(self):
        s = RoundRobinScheduler(quantum=3)
        picks = []
        current = None
        for _ in range(9):
            current = s.next_thread(current, [0, 1, 2])
            picks.append(current)
        assert picks == [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_wraps_around(self):
        s = RoundRobinScheduler(quantum=1)
        picks = []
        current = None
        for _ in range(6):
            current = s.next_thread(current, [0, 1, 2])
            picks.append(current)
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_blocked(self):
        s = RoundRobinScheduler(quantum=2)
        assert s.next_thread(0, [2, 5]) in (2, 5)

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)
