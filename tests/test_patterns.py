"""Tests for the workload race-pattern kit."""

from repro.core.literace import LiteRace
from repro.tir.builder import ProgramBuilder
from repro.workloads.patterns import RacePlan, RacyHelper, racy_access

import pytest


def build_with_helper(**kwargs):
    b = ProgramBuilder("kit")
    plan = RacePlan()
    helper = RacyHelper(b, plan, "site", **kwargs)
    return b, plan, helper


class TestRacePlanKeys:
    def test_rw_site_has_two_keys(self):
        b, plan, _ = build_with_helper()
        program = plan.attach(b.build(entry="site"))
        (race,) = program.planted_races
        assert len(race.keys) == 2  # (r,w) and (w,w)

    def test_write_only_site_has_one_key(self):
        b, plan, _ = build_with_helper(read=False)
        program = plan.attach(b.build(entry="site"))
        (race,) = program.planted_races
        assert len(race.keys) == 1

    def test_self_pairs_disabled_drops_same_instr_keys(self):
        b = ProgramBuilder("x")
        plan = RacePlan()
        with b.function("f1") as f:
            w1 = f.write(b.global_addr("shared"))
        with b.function("f2") as f:
            w2 = f.write(b.global_addr("shared"))
        plan.site("cross", [w1, w2], expect_rare=True, self_pairs=False)
        program = plan.attach(b.build(entry="f1"))
        (race,) = program.planted_races
        assert race.keys == ((w1.pc, w2.pc),)

    def test_read_only_site_rejected(self):
        b = ProgramBuilder("x")
        with b.function("f") as f:
            with pytest.raises(ValueError):
                racy_access(f, 100, read=False, write=False)


class TestRacyHelperCalls:
    def assemble(self, caller_emits):
        """Two threads run a main that performs ``caller_emits``."""
        b = ProgramBuilder("kit")
        plan = RacePlan()
        helper = RacyHelper(b, plan, "site")
        with b.function("worker") as f:
            caller_emits(f, helper)
        with b.function("main", slots=2) as f:
            f.fork("worker", tid_slot=0)
            f.fork("worker", tid_slot=1)
            f.join(0)
            f.join(1)
        return plan.attach(b.build(entry="main"))

    def run_full(self, program):
        return LiteRace(sampler="Full", seed=3).run(program).report

    def test_shared_calls_race(self):
        program = self.assemble(lambda f, h: h.call_shared(f))
        report = self.run_full(program)
        planted = {k for p in program.planted_races for k in p.keys}
        assert report.static_races == planted

    def test_private_calls_do_not_race(self):
        # Both threads use the SAME tag — they share the private address —
        # so use per-call distinct tags through TLS instead.
        program = self.assemble(lambda f, h: h.call_tls(f, 64))
        assert self.run_full(program).num_static == 0

    def test_registered_false_plants_nothing(self):
        b = ProgramBuilder("kit")
        plan = RacePlan()
        RacyHelper(b, plan, "site", registered=False)
        program = plan.attach(b.build(entry="site"))
        assert program.planted_races == ()

    def test_private_addr_distinct_from_shared(self):
        b, _, helper = build_with_helper()
        assert helper.private_addr("a") != helper.shared
        assert helper.private_addr("a") != helper.private_addr("b")
        assert helper.private_addr("a") == helper.private_addr("a")
