"""Tests for thread/frame state not covered via the executor."""

import pytest

from repro.layout import tls_base_for
from repro.runtime.thread_state import Frame, ThreadState, ThreadStatus


class TestThreadState:
    def test_initial_state(self):
        thread = ThreadState(3, "worker")
        assert thread.status is ThreadStatus.RUNNABLE
        assert thread.tls_base == tls_base_for(3)
        assert not thread.finished
        assert thread.joiners == []

    def test_finished_property(self):
        thread = ThreadState(0, "main")
        thread.status = ThreadStatus.FINISHED
        assert thread.finished


class TestFrame:
    def test_slots_initialized_to_zero(self):
        frame = Frame(ThreadState(0, "f"), "f", (), 3)
        assert frame.slots == [0, 0, 0]

    def test_params_exposed(self):
        frame = Frame(ThreadState(0, "f"), "f", (7, 8), 0)
        assert frame.params == (7, 8)

    def test_loop_depth_tracking(self):
        frame = Frame(ThreadState(0, "f"), "f", (), 0)
        assert frame.loop_depth == 0
        frame.push_loop()
        frame.push_loop()
        assert frame.loop_depth == 2
        frame.pop_loop()
        assert frame.loop_depth == 1

    def test_loop_index_out_of_range(self):
        frame = Frame(ThreadState(0, "f"), "f", (), 0)
        with pytest.raises(IndexError):
            frame.loop_index(0)
