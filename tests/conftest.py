"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.literace import LiteRace, run_baseline
from repro.runtime.scheduler import RandomInterleaver
from repro.tir.builder import ProgramBuilder
from repro.workloads.synthetic import two_thread_racer


@pytest.fixture(autouse=True, scope="session")
def _isolated_artifact_cache(tmp_path_factory):
    """Point the experiment engine's persistent cache at a session tmpdir.

    Tests must never read entries a *previous* checkout wrote to the real
    ``~/.cache/repro`` (a code change there would go unnoticed), and must
    never pollute it either.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-artifact-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture
def racer_program():
    """Figure 1 right-hand side: two threads, one unsynchronized write."""
    return two_thread_racer(synchronized=False)


@pytest.fixture
def locked_program():
    """Figure 1 left-hand side: the same writes, properly locked."""
    return two_thread_racer(synchronized=True)


def run_full(program, seed=1, **kwargs):
    """Full-logging run + offline analysis (shared helper)."""
    return LiteRace(sampler="Full", seed=seed, **kwargs).run(program)


def simple_two_thread(body_builder, threads=2, name="test-prog"):
    """Build a program whose worker body is emitted by ``body_builder(f)``."""
    b = ProgramBuilder(name)
    with b.function("worker") as f:
        body_builder(f, b)
    with b.function("main", slots=threads) as f:
        for t in range(threads):
            f.fork("worker", tid_slot=t)
        for t in range(threads):
            f.join(t)
    return b.build(entry="main")
