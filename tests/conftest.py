"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.literace import LiteRace, run_baseline
from repro.runtime.scheduler import RandomInterleaver
from repro.tir.builder import ProgramBuilder
from repro.workloads.synthetic import two_thread_racer


@pytest.fixture
def racer_program():
    """Figure 1 right-hand side: two threads, one unsynchronized write."""
    return two_thread_racer(synchronized=False)


@pytest.fixture
def locked_program():
    """Figure 1 left-hand side: the same writes, properly locked."""
    return two_thread_racer(synchronized=True)


def run_full(program, seed=1, **kwargs):
    """Full-logging run + offline analysis (shared helper)."""
    return LiteRace(sampler="Full", seed=seed, **kwargs).run(program)


def simple_two_thread(body_builder, threads=2, name="test-prog"):
    """Build a program whose worker body is emitted by ``body_builder(f)``."""
    b = ProgramBuilder(name)
    with b.function("worker") as f:
        body_builder(f, b)
    with b.function("main", slots=threads) as f:
        for t in range(threads):
            f.fork("worker", tid_slot=t)
        for t in range(threads):
            f.join(t)
    return b.build(entry="main")
