"""Tests for the analysis layer (detection study, overhead study, tables)."""

import math

import pytest

from repro.analysis.detection import run_detection_study
from repro.analysis.overhead import run_overhead_study
from repro.analysis.tables import (
    bar_chart,
    format_percent,
    format_slowdown,
    format_table,
)


class TestDetectionStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_detection_study(
            benchmarks=["dryad"], samplers=("TL-Ad", "Rnd10", "Full"),
            seeds=(1, 2), scale=0.05,
        )

    def test_runs_per_seed(self, study):
        assert len(study.runs_for("dryad")) == 2

    def test_full_sampler_detects_everything(self, study):
        assert study.detection_rate("dryad", "Full") == 1.0

    def test_rates_bounded(self, study):
        for sampler in ("TL-Ad", "Rnd10"):
            rate = study.detection_rate("dryad", sampler)
            assert 0.0 <= rate <= 1.0

    def test_esr_ordering(self, study):
        assert study.esr("dryad", "TL-Ad") < study.esr("dryad", "Full")

    def test_weighted_esr_of_full_is_one(self, study):
        assert study.weighted_esr("Full") == pytest.approx(1.0)

    def test_race_counts_median(self, study):
        total, rare, freq = study.race_counts("dryad")
        assert total == rare + freq
        assert total >= 1

    def test_average_rates(self, study):
        avg = study.average_detection_rate("TL-Ad")
        assert 0.0 <= avg <= 1.0

    def test_unknown_race_class_rejected(self, study):
        with pytest.raises(ValueError):
            study.runs[0].reference("bogus")


class TestOverheadStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_overhead_study(benchmarks=["lkrhash", "apache-1"],
                                  seeds=(1,), scale=0.05)

    def test_row_per_benchmark(self, rows):
        assert [r.benchmark for r in rows] == ["lkrhash", "apache-1"]

    def test_slowdowns_ordered(self, rows):
        for row in rows:
            assert 1.0 <= row.dispatch_only_slowdown
            assert row.dispatch_only_slowdown <= row.sync_logging_slowdown
            assert row.sync_logging_slowdown <= row.literace_slowdown + 1e-9
            assert row.literace_slowdown < row.full_logging_slowdown

    def test_sync_heavy_benchmark_pays_more(self, rows):
        lkrhash, apache = rows
        assert lkrhash.literace_slowdown > apache.literace_slowdown

    def test_decomposition_positive(self, rows):
        for row in rows:
            assert row.frac_dispatch > 0
            assert row.frac_sync_log > 0
            assert row.frac_memory_log >= 0

    def test_log_rates_positive(self, rows):
        for row in rows:
            assert row.literace_mb_per_s > 0
            assert row.full_mb_per_s > 0


class TestTables:
    def test_format_percent(self):
        assert format_percent(0.715) == "71.5%"
        assert format_percent(float("nan")) == "-"

    def test_format_slowdown(self):
        assert format_slowdown(2.5) == "2.50x"
        assert format_slowdown(float("nan")) == "-"

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["x", "y"], ["long", "z"]],
                             title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len({len(l) for l in lines[3:4]}) == 1

    def test_bar_chart_scales_to_peak(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        a_line, b_line = chart.splitlines()
        assert b_line.count("#") == 10
        assert a_line.count("#") == 5

    def test_bar_chart_validates_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_handles_nan(self):
        chart = bar_chart(["a"], [float("nan")])
        assert "-" in chart
