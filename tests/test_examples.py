"""The example scripts must run end to end (at tiny scale)."""

import runpy
import sys

import pytest

EXAMPLES = "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(f"{EXAMPLES}/{name}", run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "RACE at pcs" in out
    assert "races             : none" in out


def test_detector_comparison(capsys):
    run_example("detector_comparison.py")
    out = capsys.readouterr().out
    assert "false" in out


def test_sampling_knob(capsys):
    run_example("sampling_knob.py", ["0.05"])
    out = capsys.readouterr().out
    assert "Full logging" in out


def test_cold_region_hypothesis(capsys):
    run_example("cold_region_hypothesis.py", ["0.05"])
    out = capsys.readouterr().out
    assert "effective sampling rates" in out


def test_online_detector(capsys):
    run_example("online_detector.py", ["0.05"])
    out = capsys.readouterr().out
    assert "agree on racy addresses: True" in out


def test_deployment_coverage(capsys):
    run_example("deployment_coverage.py", ["0.05", "3"])
    out = capsys.readouterr().out
    assert "cumulative races" in out
    assert "deployments" in out
