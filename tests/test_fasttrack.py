"""Tests for the FastTrack epoch-optimized detector."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.literace import LiteRace
from repro.detector.fasttrack import FastTrackDetector, fasttrack_races
from repro.detector.hb import detect_races
from repro.detector.oracle import oracle_races
from repro.eventlog.events import MemoryEvent, SyncEvent, SyncKind
from repro.workloads.synthetic import random_program


X = 0x1000
LOCK = ("mutex", 0x2000)


def mem(tid, pc, write, addr=X):
    return MemoryEvent(tid, addr, pc, write)


def sync(tid, kind, var, ts=0):
    return SyncEvent(tid, kind, var, ts, -1)


class TestBasics:
    def test_write_write_race(self):
        report = fasttrack_races([mem(1, 1, True), mem(2, 2, True)])
        assert report.static_races == {(1, 2)}

    def test_read_write_race(self):
        report = fasttrack_races([mem(1, 1, False), mem(2, 2, True)])
        assert report.static_races == {(1, 2)}

    def test_write_read_race(self):
        report = fasttrack_races([mem(1, 1, True), mem(2, 2, False)])
        assert report.static_races == {(1, 2)}

    def test_lock_ordering_respected(self):
        report = fasttrack_races([
            sync(1, SyncKind.LOCK, LOCK, 1),
            mem(1, 1, True),
            sync(1, SyncKind.UNLOCK, LOCK, 2),
            sync(2, SyncKind.LOCK, LOCK, 3),
            mem(2, 2, True),
        ])
        assert report.num_static == 0

    def test_shared_read_then_racing_write(self):
        # two ordered-with-each-other? no: concurrent readers, then a
        # writer concurrent with both -> both read-write races surface
        events = [
            mem(1, 1, False),
            mem(2, 2, False),
            mem(3, 3, True),
        ]
        report = fasttrack_races(events)
        assert report.static_races == {(1, 3), (2, 3)}


class TestEpochMachinery:
    def test_same_epoch_reads_take_fast_path(self):
        detector = FastTrackDetector()
        for _ in range(100):
            detector.feed(mem(1, 1, False))
        assert detector.fast_path_hits >= 99
        assert detector.escalations == 0

    def test_concurrent_reads_escalate(self):
        detector = FastTrackDetector()
        detector.feed(mem(1, 1, False))
        detector.feed(mem(2, 2, False))
        assert detector.escalations == 1
        assert detector.shared_addresses == 1

    def test_write_collapses_shared_state(self):
        detector = FastTrackDetector()
        detector.feed(mem(1, 1, False))
        detector.feed(mem(2, 2, False))
        detector.feed(mem(1, 3, True))
        assert detector.shared_addresses == 0

    def test_ordered_reads_stay_in_epoch_mode(self):
        detector = FastTrackDetector()
        detector.feed_all([
            mem(1, 1, False),
            sync(1, SyncKind.UNLOCK, LOCK, 1),
            sync(2, SyncKind.LOCK, LOCK, 2),
            mem(2, 2, False),
        ])
        assert detector.escalations == 0


class TestEquivalence:
    params = st.fixed_dictionaries({
        "seed": st.integers(0, 5000),
        "threads": st.integers(2, 4),
        "helpers": st.integers(2, 5),
        "calls_per_thread": st.integers(5, 30),
        "lock_prob": st.floats(0.0, 1.0),
    })

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=params, sched_seed=st.integers(0, 500))
    def test_same_racy_addresses_as_reference(self, params, sched_seed):
        program = random_program(**params)
        _, log = LiteRace(sampler="Full", seed=sched_seed).profile(program)
        assert fasttrack_races(log.events).addresses == \
            detect_races(log.events).addresses

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(params=params, sched_seed=st.integers(0, 500))
    def test_subset_of_oracle(self, params, sched_seed):
        program = random_program(**params)
        _, log = LiteRace(sampler="Full", seed=sched_seed).profile(program)
        assert fasttrack_races(log.events).static_races <= \
            oracle_races(log.events).static_races

    def test_fast_path_dominates_on_real_workload(self):
        from repro import workloads

        program = workloads.build("dryad", seed=1, scale=0.05)
        _, log = LiteRace(sampler="Full", seed=1).profile(program)
        detector = FastTrackDetector()
        detector.feed_all(log.events)
        memory_events = sum(1 for e in log.events
                            if isinstance(e, MemoryEvent))
        assert detector.fast_path_hits > 0.8 * memory_events
