"""Batched-vs-streaming parity for the columnar segment path.

The telemetry workers now decode ``LTRS`` frames straight into
:class:`~repro.eventlog.segment.SegmentColumns` and feed them to the
batched detector — per-event objects never exist on the hot path.  These
tests pin the contract that makes that safe:

* columns are a lossless view: ``decode_segment_columns(...).to_events()``
  equals ``decode_segment(...)`` for any stream, compressed or not;
* detector state is path-independent: columnar ``feed_batch`` over wire
  frames produces byte-identical reports to event-at-a-time ``feed`` —
  including events that took the v1 (per-thread-section) format detour;
* corrupt payloads **raise** instead of mis-detecting: truncation, trailing
  bytes, bad kind/domain codes, and damaged zlib payloads all fail loudly
  on the columnar path, exactly like the object path.
"""

from __future__ import annotations

import pytest
import struct
import zlib
from hypothesis import given, settings, strategies as st

from repro.detector.flat import FlatDetector
from repro.detector.hb import HappensBeforeDetector
from repro.eventlog.encode import decode_log, encode_log
from repro.eventlog.events import MemoryEvent, SyncEvent, SyncKind
from repro.eventlog.log import EventLog
from repro.eventlog.segment import (
    FLAG_ZLIB,
    SEGMENT_MAGIC,
    SEGMENT_VERSION,
    _SEG_HEADER,
    SegmentBatcher,
    columns_from_events,
    concat_columns,
    decode_segment,
    decode_segment_columns,
    decode_segment_columns_numpy,
    encode_segment,
)
from repro.numpy_support import HAVE_NUMPY

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy unavailable (or REPRO_NO_NUMPY=1)")

_DOMAINS = ("mutex", "event", "thread", "atomic", "page")

memory_events = st.builds(
    MemoryEvent,
    tid=st.integers(0, 7),
    addr=st.integers(0, 0xFFFF_FFFF),
    pc=st.integers(-1, 0xFFFF_FFFE),
    is_write=st.booleans(),
)
sync_events = st.builds(
    SyncEvent,
    tid=st.integers(0, 7),
    kind=st.sampled_from(list(SyncKind)),
    var=st.tuples(st.sampled_from(_DOMAINS), st.integers(0, 0xFFFF_FFFF)),
    timestamp=st.integers(0, 0xFFFF_FFFF),
    pc=st.integers(-1, 0xFFFF_FFFE),
)
event_streams = st.lists(st.one_of(memory_events, sync_events), max_size=60)

#: Collision-rich streams so parity tests actually exercise race recording.
racy_streams = st.lists(
    st.one_of(
        st.builds(MemoryEvent, tid=st.integers(0, 3),
                  addr=st.integers(0, 7), pc=st.integers(0, 20),
                  is_write=st.booleans()),
        st.builds(SyncEvent, tid=st.integers(0, 3),
                  kind=st.sampled_from([SyncKind.LOCK, SyncKind.UNLOCK,
                                        SyncKind.ALLOC_PAGE,
                                        SyncKind.FREE_PAGE]),
                  var=st.tuples(st.sampled_from(_DOMAINS),
                                st.integers(0, 2)),
                  timestamp=st.integers(0, 50), pc=st.integers(0, 20)),
    ), max_size=80)


def report_key(detector):
    report = detector.report
    return (dict(report.occurrences), dict(report.examples),
            set(report.addresses))


def make_log(events):
    log = EventLog()
    for event in events:
        if isinstance(event, SyncEvent):
            log.append_sync(event.tid, event.kind, event.var,
                            event.timestamp, event.pc)
        else:
            log.append_memory(event.tid, event.addr, event.pc,
                              event.is_write)
    return log


class TestColumnsAreLossless:
    @settings(max_examples=60, deadline=None)
    @given(events=event_streams, compress=st.booleans())
    def test_columns_to_events_equals_object_decode(self, events, compress):
        frame = encode_segment(events, compress=compress)
        via_objects, end_a = decode_segment(frame)
        cols, end_b = decode_segment_columns(frame)
        assert end_a == end_b == len(frame)
        assert cols.to_events() == via_objects
        assert cols.count == len(events)
        assert cols.memory_count == sum(
            1 for e in events if isinstance(e, MemoryEvent))
        assert cols.sync_count == cols.count - cols.memory_count

    @settings(max_examples=40, deadline=None)
    @given(events=event_streams)
    def test_columns_from_events_round_trip(self, events):
        assert columns_from_events(events).to_events() == events


class TestDetectorParity:
    @settings(max_examples=40, deadline=None)
    @given(events=racy_streams, compress=st.booleans())
    def test_wire_columns_match_per_event_feed(self, events, compress):
        frame = encode_segment(events, compress=compress)
        cols, _ = decode_segment_columns(frame)
        batched = FlatDetector("hb")
        batched.feed_batch(cols)
        streamed = HappensBeforeDetector()
        for event in decode_segment(frame)[0]:
            streamed.feed(event)
        assert report_key(batched) == report_key(streamed)
        assert batched.events_processed == streamed.events_processed

    @settings(max_examples=25, deadline=None)
    @given(events=racy_streams)
    def test_v1_log_detour_matches(self, events):
        # Events that travelled through the v1 per-thread-section format
        # come back grouped by thread; both paths must agree on *that*
        # stream (the v1 order), proving the columnar ramp handles
        # in-memory object streams identically to per-event feed.
        decoded = decode_log(encode_log(make_log(events), version=1))
        v1_events = decoded.events
        batched = FlatDetector("hb")
        batched.feed_batch(columns_from_events(v1_events))
        streamed = HappensBeforeDetector().feed_all(v1_events)
        assert report_key(batched) == report_key(streamed)


class TestCorruptionRaises:
    def frame(self, compress=False):
        if compress:
            # Redundant enough that zlib genuinely shrinks the payload
            # (tiny incompressible segments keep the flag unset).
            events = [MemoryEvent(0, 0x10, 1, True)] * 60
        else:
            events = [MemoryEvent(0, 0x10, 1, True),
                      SyncEvent(1, SyncKind.LOCK, ("mutex", 2), 1, 3),
                      MemoryEvent(1, 0x10, 2, False)]
        return encode_segment(events, compress=compress)

    def test_truncated_payload(self):
        frame = self.frame()
        with pytest.raises(ValueError):
            decode_segment_columns(frame[:-4])

    def test_truncated_event_record(self):
        # Shrink the payload but fix up the header length so only the
        # per-record bounds check can catch it.
        frame = bytearray(self.frame())
        magic, version, flags, count, payload_len = _SEG_HEADER.unpack_from(
            frame, 0)
        cut = _SEG_HEADER.pack(magic, version, flags, count, payload_len - 3)
        frame[:_SEG_HEADER.size] = cut
        with pytest.raises((ValueError, struct.error)):
            decode_segment_columns(bytes(frame[:-3]))

    def test_trailing_bytes(self):
        frame = bytearray(self.frame())
        magic, version, flags, count, payload_len = _SEG_HEADER.unpack_from(
            frame, 0)
        # Claim one event fewer than the payload actually holds.
        frame[:_SEG_HEADER.size] = _SEG_HEADER.pack(magic, version, flags,
                                                    count - 1, payload_len)
        with pytest.raises(ValueError, match="trailing"):
            decode_segment_columns(bytes(frame))

    def test_bad_sync_kind_code(self):
        frame = bytearray(self.frame())
        # The sync record starts after the header + one memory record.
        sync_at = _SEG_HEADER.size + 13
        assert frame[sync_at] >= 2
        frame[sync_at] = 0xFF
        with pytest.raises(ValueError, match="kind"):
            decode_segment_columns(bytes(frame))

    def test_bad_domain_code(self):
        frame = bytearray(self.frame())
        sync_at = _SEG_HEADER.size + 13
        frame[sync_at + 1] = 0xEE
        with pytest.raises(ValueError, match="domain"):
            decode_segment_columns(bytes(frame))

    def test_damaged_zlib_payload(self):
        frame = bytearray(self.frame(compress=True) )
        if not _SEG_HEADER.unpack_from(frame, 0)[2] & FLAG_ZLIB:
            pytest.skip("stream too small to compress")
        frame[_SEG_HEADER.size + 2] ^= 0xFF
        with pytest.raises((zlib.error, ValueError)):
            decode_segment_columns(bytes(frame))

    def test_bad_magic(self):
        frame = bytearray(self.frame())
        frame[:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            decode_segment_columns(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(self.frame())
        magic, _, flags, count, payload_len = _SEG_HEADER.unpack_from(frame, 0)
        frame[:_SEG_HEADER.size] = _SEG_HEADER.pack(magic, 99, flags, count,
                                                    payload_len)
        with pytest.raises(ValueError, match="version"):
            decode_segment_columns(bytes(frame))


@needs_numpy
class TestNumpyDecodeParity:
    """The vectorized decoder is a drop-in for the list decoder."""

    @settings(max_examples=50, deadline=None)
    @given(events=event_streams, compress=st.booleans())
    def test_decodes_identically(self, events, compress):
        frame = encode_segment(events, compress=compress)
        cols, end_a = decode_segment_columns(frame)
        fast, end_b = decode_segment_columns_numpy(frame)
        assert end_a == end_b == len(frame)
        assert fast.to_events() == cols.to_events() == events

    def test_sync_dense_delegation(self):
        # syncs*8 > count sends the frame to the list decoder; the result
        # must be indistinguishable from the numpy one either way.
        events = [SyncEvent(t % 4, SyncKind.LOCK, ("mutex", t % 3), t, t)
                  for t in range(40)]
        frame = encode_segment(events)
        assert decode_segment_columns_numpy(frame)[0].to_events() == events

    @settings(max_examples=30, deadline=None)
    @given(events=event_streams)
    def test_corruption_verdicts_agree(self, events):
        # Bit-flip a byte anywhere in the frame: both decoders must agree
        # on *whether* the frame is rejected (messages may differ).
        frame = bytearray(encode_segment(events))
        if len(frame) <= _SEG_HEADER.size:
            return
        frame[_SEG_HEADER.size + (len(events) * 7) %
              (len(frame) - _SEG_HEADER.size)] ^= 0xFF
        frame = bytes(frame)
        try:
            cols, _ = decode_segment_columns(frame)
            outcome = cols.to_events()
        except ValueError:
            outcome = ValueError
        try:
            fast, _ = decode_segment_columns_numpy(frame)
            fast_outcome = fast.to_events()
        except ValueError:
            fast_outcome = ValueError
        assert fast_outcome == outcome


class TestSegmentBatcher:
    """Superframe decode is invisible relative to per-frame decode."""

    def encode_stream(self, events, *, per_frame=7, compress=False):
        return [encode_segment(events[i:i + per_frame], compress=compress)
                for i in range(0, max(len(events), 1), per_frame)]

    @settings(max_examples=40, deadline=None)
    @given(events=event_streams, compress=st.booleans(),
           target=st.sampled_from([1, 5, 16, 4096]))
    def test_batches_are_lossless(self, events, compress, target):
        frames = self.encode_stream(events, compress=compress)
        batches = []
        with SegmentBatcher(batches.append, target_events=target) as batcher:
            stream = b"".join(frames)
            offset = 0
            counts = []
            while offset < len(stream):
                count, offset = batcher.push(stream, offset)
                counts.append(count)
        assert sum(counts) == len(events)
        replayed = [e for batch in batches for e in batch.to_events()]
        assert replayed == events

    def test_auto_flush_at_target(self):
        events = [MemoryEvent(0, a, 1, True) for a in range(30)]
        batches = []
        batcher = SegmentBatcher(batches.append, target_events=10)
        for frame in self.encode_stream(events, per_frame=5):
            batcher.push(frame)
        # 30 events at target 10 → three auto-flushes, nothing pending.
        assert [b.count for b in batches] == [10, 10, 10]
        batcher.flush()
        assert len(batches) == 3

    def test_detector_parity_with_per_frame_decode(self):
        events = []
        for i in range(200):
            events.append(MemoryEvent(i % 3, i % 5, i, i % 2 == 0))
            if i % 9 == 0:
                events.append(SyncEvent(i % 3, SyncKind.UNLOCK,
                                        ("mutex", i % 2), i, i))
        frames = self.encode_stream(events, per_frame=13)
        batched = FlatDetector("hb")
        with SegmentBatcher(batched.feed_batch, target_events=50) as batcher:
            for frame in frames:
                batcher.push(frame)
        per_frame = FlatDetector("hb")
        for frame in frames:
            per_frame.feed_batch(decode_segment_columns(frame)[0])
        assert report_key(batched) == report_key(per_frame)
        assert batched.events_processed == per_frame.events_processed

    def test_push_rejects_truncated_frame(self):
        frame = encode_segment([MemoryEvent(0, 1, 2, True)] * 4)
        batches = []
        batcher = SegmentBatcher(batches.append)
        with pytest.raises(ValueError):
            batcher.push(frame[:-5])
        # The bad frame was never buffered; the batcher stays usable.
        batcher.push(frame)
        batcher.flush()
        assert len(batches) == 1 and batches[0].count == 4

    def test_flush_salvages_around_poisoned_frame(self):
        good_a = [MemoryEvent(0, 1, 2, True),
                  SyncEvent(0, SyncKind.LOCK, ("mutex", 1), 1, 3)]
        bad = [MemoryEvent(1, 2, 3, False),
               SyncEvent(1, SyncKind.UNLOCK, ("mutex", 1), 2, 4)]
        good_b = [MemoryEvent(2, 3, 4, True)]
        frames = [encode_segment(s) for s in (good_a, bad, good_b)]
        # Poison the middle frame's sync kind code — passes the push-time
        # size checks, fails the flush-time decode.
        poisoned = bytearray(frames[1])
        poisoned[_SEG_HEADER.size + 13] = 0xFF
        frames[1] = bytes(poisoned)
        batches = []
        batcher = SegmentBatcher(batches.append, target_events=4096)
        for frame in frames:
            batcher.push(frame)
        with pytest.raises(ValueError, match="kind"):
            batcher.flush()
        # Exactly the poisoned frame was dropped; its neighbors survived.
        assert [e for b in batches for e in b.to_events()] == good_a + good_b
        # The error consumed the buffer — a second flush is a no-op.
        batcher.flush()
        assert sum(b.count for b in batches) == 3

    def test_concat_columns_mixed_sources(self):
        events = ([MemoryEvent(0, a, 1, False) for a in range(6)]
                  + [SyncEvent(1, SyncKind.FORK, ("thread", 1), 5, 9)])
        frame = encode_segment(events)
        parts = [decode_segment_columns(frame)[0]]
        if HAVE_NUMPY:
            parts.append(decode_segment_columns_numpy(frame)[0])
        else:
            parts.append(decode_segment_columns(frame)[0])
        merged = concat_columns(parts)
        assert merged.to_events() == events + events
        assert merged.count == 2 * len(events)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            SegmentBatcher(lambda cols: None, target_events=0)
