"""Batched-vs-streaming parity for the columnar segment path.

The telemetry workers now decode ``LTRS`` frames straight into
:class:`~repro.eventlog.segment.SegmentColumns` and feed them to the
batched detector — per-event objects never exist on the hot path.  These
tests pin the contract that makes that safe:

* columns are a lossless view: ``decode_segment_columns(...).to_events()``
  equals ``decode_segment(...)`` for any stream, compressed or not;
* detector state is path-independent: columnar ``feed_batch`` over wire
  frames produces byte-identical reports to event-at-a-time ``feed`` —
  including events that took the v1 (per-thread-section) format detour;
* corrupt payloads **raise** instead of mis-detecting: truncation, trailing
  bytes, bad kind/domain codes, and damaged zlib payloads all fail loudly
  on the columnar path, exactly like the object path.
"""

from __future__ import annotations

import pytest
import struct
import zlib
from hypothesis import given, settings, strategies as st

from repro.detector.flat import FlatDetector
from repro.detector.hb import HappensBeforeDetector
from repro.eventlog.encode import decode_log, encode_log
from repro.eventlog.events import MemoryEvent, SyncEvent, SyncKind
from repro.eventlog.log import EventLog
from repro.eventlog.segment import (
    FLAG_ZLIB,
    SEGMENT_MAGIC,
    SEGMENT_VERSION,
    _SEG_HEADER,
    columns_from_events,
    decode_segment,
    decode_segment_columns,
    encode_segment,
)

_DOMAINS = ("mutex", "event", "thread", "atomic", "page")

memory_events = st.builds(
    MemoryEvent,
    tid=st.integers(0, 7),
    addr=st.integers(0, 0xFFFF_FFFF),
    pc=st.integers(-1, 0xFFFF_FFFE),
    is_write=st.booleans(),
)
sync_events = st.builds(
    SyncEvent,
    tid=st.integers(0, 7),
    kind=st.sampled_from(list(SyncKind)),
    var=st.tuples(st.sampled_from(_DOMAINS), st.integers(0, 0xFFFF_FFFF)),
    timestamp=st.integers(0, 0xFFFF_FFFF),
    pc=st.integers(-1, 0xFFFF_FFFE),
)
event_streams = st.lists(st.one_of(memory_events, sync_events), max_size=60)

#: Collision-rich streams so parity tests actually exercise race recording.
racy_streams = st.lists(
    st.one_of(
        st.builds(MemoryEvent, tid=st.integers(0, 3),
                  addr=st.integers(0, 7), pc=st.integers(0, 20),
                  is_write=st.booleans()),
        st.builds(SyncEvent, tid=st.integers(0, 3),
                  kind=st.sampled_from([SyncKind.LOCK, SyncKind.UNLOCK,
                                        SyncKind.ALLOC_PAGE,
                                        SyncKind.FREE_PAGE]),
                  var=st.tuples(st.sampled_from(_DOMAINS),
                                st.integers(0, 2)),
                  timestamp=st.integers(0, 50), pc=st.integers(0, 20)),
    ), max_size=80)


def report_key(detector):
    report = detector.report
    return (dict(report.occurrences), dict(report.examples),
            set(report.addresses))


def make_log(events):
    log = EventLog()
    for event in events:
        if isinstance(event, SyncEvent):
            log.append_sync(event.tid, event.kind, event.var,
                            event.timestamp, event.pc)
        else:
            log.append_memory(event.tid, event.addr, event.pc,
                              event.is_write)
    return log


class TestColumnsAreLossless:
    @settings(max_examples=60, deadline=None)
    @given(events=event_streams, compress=st.booleans())
    def test_columns_to_events_equals_object_decode(self, events, compress):
        frame = encode_segment(events, compress=compress)
        via_objects, end_a = decode_segment(frame)
        cols, end_b = decode_segment_columns(frame)
        assert end_a == end_b == len(frame)
        assert cols.to_events() == via_objects
        assert cols.count == len(events)
        assert cols.memory_count == sum(
            1 for e in events if isinstance(e, MemoryEvent))
        assert cols.sync_count == cols.count - cols.memory_count

    @settings(max_examples=40, deadline=None)
    @given(events=event_streams)
    def test_columns_from_events_round_trip(self, events):
        assert columns_from_events(events).to_events() == events


class TestDetectorParity:
    @settings(max_examples=40, deadline=None)
    @given(events=racy_streams, compress=st.booleans())
    def test_wire_columns_match_per_event_feed(self, events, compress):
        frame = encode_segment(events, compress=compress)
        cols, _ = decode_segment_columns(frame)
        batched = FlatDetector("hb")
        batched.feed_batch(cols)
        streamed = HappensBeforeDetector()
        for event in decode_segment(frame)[0]:
            streamed.feed(event)
        assert report_key(batched) == report_key(streamed)
        assert batched.events_processed == streamed.events_processed

    @settings(max_examples=25, deadline=None)
    @given(events=racy_streams)
    def test_v1_log_detour_matches(self, events):
        # Events that travelled through the v1 per-thread-section format
        # come back grouped by thread; both paths must agree on *that*
        # stream (the v1 order), proving the columnar ramp handles
        # in-memory object streams identically to per-event feed.
        decoded = decode_log(encode_log(make_log(events), version=1))
        v1_events = decoded.events
        batched = FlatDetector("hb")
        batched.feed_batch(columns_from_events(v1_events))
        streamed = HappensBeforeDetector().feed_all(v1_events)
        assert report_key(batched) == report_key(streamed)


class TestCorruptionRaises:
    def frame(self, compress=False):
        if compress:
            # Redundant enough that zlib genuinely shrinks the payload
            # (tiny incompressible segments keep the flag unset).
            events = [MemoryEvent(0, 0x10, 1, True)] * 60
        else:
            events = [MemoryEvent(0, 0x10, 1, True),
                      SyncEvent(1, SyncKind.LOCK, ("mutex", 2), 1, 3),
                      MemoryEvent(1, 0x10, 2, False)]
        return encode_segment(events, compress=compress)

    def test_truncated_payload(self):
        frame = self.frame()
        with pytest.raises(ValueError):
            decode_segment_columns(frame[:-4])

    def test_truncated_event_record(self):
        # Shrink the payload but fix up the header length so only the
        # per-record bounds check can catch it.
        frame = bytearray(self.frame())
        magic, version, flags, count, payload_len = _SEG_HEADER.unpack_from(
            frame, 0)
        cut = _SEG_HEADER.pack(magic, version, flags, count, payload_len - 3)
        frame[:_SEG_HEADER.size] = cut
        with pytest.raises((ValueError, struct.error)):
            decode_segment_columns(bytes(frame[:-3]))

    def test_trailing_bytes(self):
        frame = bytearray(self.frame())
        magic, version, flags, count, payload_len = _SEG_HEADER.unpack_from(
            frame, 0)
        # Claim one event fewer than the payload actually holds.
        frame[:_SEG_HEADER.size] = _SEG_HEADER.pack(magic, version, flags,
                                                    count - 1, payload_len)
        with pytest.raises(ValueError, match="trailing"):
            decode_segment_columns(bytes(frame))

    def test_bad_sync_kind_code(self):
        frame = bytearray(self.frame())
        # The sync record starts after the header + one memory record.
        sync_at = _SEG_HEADER.size + 13
        assert frame[sync_at] >= 2
        frame[sync_at] = 0xFF
        with pytest.raises(ValueError, match="kind"):
            decode_segment_columns(bytes(frame))

    def test_bad_domain_code(self):
        frame = bytearray(self.frame())
        sync_at = _SEG_HEADER.size + 13
        frame[sync_at + 1] = 0xEE
        with pytest.raises(ValueError, match="domain"):
            decode_segment_columns(bytes(frame))

    def test_damaged_zlib_payload(self):
        frame = bytearray(self.frame(compress=True) )
        if not _SEG_HEADER.unpack_from(frame, 0)[2] & FLAG_ZLIB:
            pytest.skip("stream too small to compress")
        frame[_SEG_HEADER.size + 2] ^= 0xFF
        with pytest.raises((zlib.error, ValueError)):
            decode_segment_columns(bytes(frame))

    def test_bad_magic(self):
        frame = bytearray(self.frame())
        frame[:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            decode_segment_columns(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(self.frame())
        magic, _, flags, count, payload_len = _SEG_HEADER.unpack_from(frame, 0)
        frame[:_SEG_HEADER.size] = _SEG_HEADER.pack(magic, 99, flags, count,
                                                    payload_len)
        with pytest.raises(ValueError, match="version"):
            decode_segment_columns(bytes(frame))
