"""Differential harness: the flat batched detector vs the references.

The flat-clock hot path (:class:`repro.detector.flat.FlatDetector`) rewrites
the correctness core of the project, so its contract is *byte-identical*
output, not statistical agreement: on any event stream, the batched
detector must produce exactly the reference detector's ``RaceReport``
(occurrence counts, example instances, racy addresses) and diagnostics
(fast-path hits, escalations, events processed) for the same algorithm.

Three layers of evidence:

* every registered workload, profiled with the Full sampler (dense logs,
  real sync structure) — byte-identical reports on all 12;
* hypothesis-randomized streams — interleaved sync/memory traffic over all
  sync kinds including page alloc/free, both ``alloc_as_sync`` modes, and
  the per-event ``feed`` shim;
* directed edge cases — read-shared escalation, collapse back to epochs,
  and re-escalation, where FastTrack's state machine has its corners.

One deliberate non-assertion: FastTrack and HB may report *different PC
pairs* (FastTrack's same-epoch read fast path can skip a write-race check
that HB performs, so neither race-key set contains the other).  The
order-independent invariant both must share is the set of racy addresses.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import workloads
from repro.core.literace import LiteRace
from repro.detector.fasttrack import FastTrackDetector
from repro.detector.flat import FlatDetector
from repro.detector.hb import HappensBeforeDetector
from repro.eventlog.events import MemoryEvent, SyncEvent, SyncKind
from repro.eventlog.segment import columns_from_events
from repro.numpy_support import HAVE_NUMPY

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy unavailable (or REPRO_NO_NUMPY=1)")

#: Per-workload cap: differential equivalence on a prefix is still exact
#: (both sides consume the same events), and it bounds tier-1 runtime.
MAX_EVENTS = 60_000

WORKLOADS = list(workloads.names())


def report_key(detector):
    report = detector.report
    return (dict(report.occurrences), dict(report.examples),
            set(report.addresses))


def reference_for(algorithm, alloc_as_sync=True):
    if algorithm == "fasttrack":
        return FastTrackDetector(alloc_as_sync=alloc_as_sync)
    return HappensBeforeDetector(alloc_as_sync=alloc_as_sync)


def assert_flat_matches(events, algorithm, alloc_as_sync=True):
    """The core differential check, returning both detectors."""
    reference = reference_for(algorithm, alloc_as_sync).feed_all(events)
    flat = FlatDetector(algorithm, alloc_as_sync=alloc_as_sync)
    flat.feed_batch(columns_from_events(events))
    assert report_key(flat) == report_key(reference)
    if algorithm == "fasttrack":
        assert flat.fast_path_hits == reference.fast_path_hits
        assert flat.escalations == reference.escalations
    else:
        assert flat.events_processed == reference.events_processed
    return reference, flat


@pytest.fixture(scope="module")
def workload_logs():
    logs = {}
    for name in WORKLOADS:
        program = workloads.build(name, seed=1, scale=0.05)
        _, log = LiteRace(sampler="Full", seed=1).profile(program)
        logs[name] = log.events[:MAX_EVENTS]
    return logs


class TestAllWorkloads:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_byte_identical_reports(self, workload_logs, name):
        events = workload_logs[name]
        ft_ref, ft_flat = assert_flat_matches(events, "fasttrack")
        hb_ref, hb_flat = assert_flat_matches(events, "hb")
        # Across algorithms the racy-address set is the shared invariant.
        assert ft_ref.report.addresses == hb_ref.report.addresses
        assert ft_flat.report.addresses == hb_flat.report.addresses

    def test_workload_set_is_complete(self):
        # The acceptance bar is "all 12 hand-written workloads plus the
        # 4 scenario-compiled ones"; fail loudly if the registry changes
        # shape rather than silently testing fewer.
        assert len(WORKLOADS) == 16


# -- randomized streams ------------------------------------------------------

_SYNC_CHOICES = [
    (SyncKind.LOCK, "mutex"), (SyncKind.UNLOCK, "mutex"),
    (SyncKind.WAIT, "event"), (SyncKind.NOTIFY, "event"),
    (SyncKind.FORK, "thread"), (SyncKind.JOIN, "thread"),
    (SyncKind.THREAD_START, "thread"), (SyncKind.THREAD_EXIT, "thread"),
    (SyncKind.ATOMIC, "atomic"),
    (SyncKind.ALLOC_PAGE, "page"), (SyncKind.FREE_PAGE, "page"),
]


@st.composite
def event_streams(draw, max_events=300):
    """Interleaved sync/memory streams over a small, collision-rich space.

    Few addresses and few PCs force the interesting paths: same-epoch hits,
    read-shared escalation, collapse on ordered writes, and repeated race
    recording on the same PC pair.
    """
    n = draw(st.integers(0, max_events))
    events = []
    ts = 0
    for _ in range(n):
        tid = draw(st.integers(0, 3))
        if draw(st.booleans()) and draw(st.integers(0, 2)) == 0:
            kind, domain = draw(st.sampled_from(_SYNC_CHOICES))
            ts += 1
            events.append(SyncEvent(tid, kind, (domain,
                                                draw(st.integers(0, 2))),
                                    ts, draw(st.integers(0, 40))))
        else:
            events.append(MemoryEvent(tid, draw(st.integers(0, 7)),
                                      draw(st.integers(0, 40)),
                                      draw(st.booleans())))
    return events


class TestRandomizedStreams:
    @settings(max_examples=60, deadline=None)
    @given(events=event_streams(), alloc=st.booleans())
    def test_fasttrack_byte_identical(self, events, alloc):
        assert_flat_matches(events, "fasttrack", alloc_as_sync=alloc)

    @settings(max_examples=60, deadline=None)
    @given(events=event_streams(), alloc=st.booleans())
    def test_hb_byte_identical(self, events, alloc):
        assert_flat_matches(events, "hb", alloc_as_sync=alloc)

    @settings(max_examples=30, deadline=None)
    @given(events=event_streams(max_events=120))
    def test_racy_addresses_agree_across_algorithms(self, events):
        ft = FastTrackDetector().feed_all(events)
        hb = HappensBeforeDetector().feed_all(events)
        assert ft.report.addresses == hb.report.addresses

    @settings(max_examples=25, deadline=None)
    @given(events=event_streams(max_events=150))
    def test_feed_shim_matches_reference(self, events):
        for algorithm in ("fasttrack", "hb"):
            reference = reference_for(algorithm).feed_all(events)
            shim = FlatDetector(algorithm)
            for event in events:
                shim.feed(event)
            assert report_key(shim) == report_key(reference)

    @settings(max_examples=25, deadline=None)
    @given(events=event_streams(max_events=150),
           split=st.integers(0, 150))
    def test_batch_boundaries_are_invisible(self, events, split):
        # Feeding one batch or two must be indistinguishable: detector
        # state carries across feed_batch calls exactly.
        whole = FlatDetector("fasttrack")
        whole.feed_batch(columns_from_events(events))
        halved = FlatDetector("fasttrack")
        halved.feed_batch(columns_from_events(events[:split]))
        halved.feed_batch(columns_from_events(events[split:]))
        assert report_key(whole) == report_key(halved)
        assert whole.fast_path_hits == halved.fast_path_hits
        assert whole.escalations == halved.escalations


# -- directed FastTrack state-machine edges ----------------------------------

def mem(tid, addr, pc, write):
    return MemoryEvent(tid, addr, pc, write)


def sync(tid, kind, ident, ts, pc=0):
    return SyncEvent(tid, kind, ("mutex", ident), ts, pc)


class TestEscalationEdges:
    def test_read_shared_escalation_and_counters(self):
        # Two unordered readers escalate the read epoch to a read map.
        events = [mem(0, 0x10, 1, False), mem(1, 0x10, 2, False)]
        ref, flat = assert_flat_matches(events, "fasttrack")
        assert flat.escalations == 1

    def test_write_collapses_read_map(self):
        # Escalate, order everything via a lock handoff, then write: the
        # ordered write collapses the read map back to epoch state, and a
        # later unordered read must escalate again.
        events = [
            mem(0, 0x10, 1, False),
            mem(1, 0x10, 2, False),          # escalate
            sync(1, SyncKind.UNLOCK, 9, 1),
            sync(0, SyncKind.LOCK, 9, 2),
            mem(0, 0x10, 3, True),           # ordered write: collapse
            mem(2, 0x10, 4, False),          # unordered read vs that write
            mem(0, 0x10, 5, False),          # second reader: escalate again
        ]
        ref, flat = assert_flat_matches(events, "fasttrack")
        assert flat.escalations == 2

    def test_same_epoch_fast_paths_counted(self):
        events = [mem(0, 0x10, 1, True)] + [mem(0, 0x10, 2, True)] * 5 \
            + [mem(0, 0x10, 3, False)] * 3
        ref, flat = assert_flat_matches(events, "fasttrack")
        assert flat.fast_path_hits == ref.fast_path_hits > 0

    def test_alloc_free_reset_vs_plain_sync(self):
        # ALLOC_PAGE/FREE_PAGE are both acquire and release; with
        # alloc_as_sync off they are skipped entirely.  Both modes must
        # match their reference byte for byte.
        events = [
            sync(0, SyncKind.ALLOC_PAGE, 1, 1),
            mem(0, 0x40, 1, True),
            sync(0, SyncKind.FREE_PAGE, 1, 2),
            sync(1, SyncKind.ALLOC_PAGE, 1, 3),
            mem(1, 0x40, 2, True),
        ]
        for alloc in (True, False):
            assert_flat_matches(events, "fasttrack", alloc_as_sync=alloc)
            assert_flat_matches(events, "hb", alloc_as_sync=alloc)


# -- numpy kernel vs pure-Python loop ----------------------------------------

def run_flat(events, algorithm, use_numpy, *, alloc_as_sync=True,
             batch_size=None, shard=None):
    """Feed ``events`` through a FlatDetector with an explicit kernel."""
    detector = FlatDetector(algorithm, alloc_as_sync=alloc_as_sync,
                            use_numpy=use_numpy)
    if batch_size is None:
        chunks = [events]
    else:
        chunks = [events[i:i + batch_size]
                  for i in range(0, len(events), batch_size)]
    for chunk in chunks:
        cols = columns_from_events(chunk)
        if shard is None:
            detector.feed_batch(cols)
        else:
            shard_id, num_shards, block_shift = shard
            detector.feed_batch(cols, shard_id=shard_id,
                                num_shards=num_shards,
                                block_shift=block_shift)
    return detector


def assert_kernels_agree(events, algorithm, *, alloc_as_sync=True,
                         batch_size=None, shard=None):
    """numpy kernel and pure loop: byte-identical reports AND counters."""
    numpy_side = run_flat(events, algorithm, True,
                          alloc_as_sync=alloc_as_sync,
                          batch_size=batch_size, shard=shard)
    pure_side = run_flat(events, algorithm, False,
                         alloc_as_sync=alloc_as_sync,
                         batch_size=batch_size, shard=shard)
    assert numpy_side.kernel == "numpy"
    assert pure_side.kernel == "pure"
    assert report_key(numpy_side) == report_key(pure_side)
    assert numpy_side.events_processed == pure_side.events_processed
    assert numpy_side.fast_path_hits == pure_side.fast_path_hits
    assert numpy_side.escalations == pure_side.escalations
    return numpy_side, pure_side


@needs_numpy
class TestKernelEquivalence:
    """The tentpole contract: the vectorized pre-filter is invisible."""

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("algorithm", ["fasttrack", "hb"])
    def test_workloads_byte_identical(self, workload_logs, name, algorithm):
        events = workload_logs[name][:20_000]
        assert_kernels_agree(events, algorithm, batch_size=4096)

    @settings(max_examples=30, deadline=None)
    @given(events=event_streams(), alloc=st.booleans(),
           batch=st.sampled_from([None, 7, 50, 300]))
    def test_randomized_streams(self, events, alloc, batch):
        for algorithm in ("fasttrack", "hb"):
            assert_kernels_agree(events, algorithm, alloc_as_sync=alloc,
                                 batch_size=batch)

    @settings(max_examples=20, deadline=None)
    @given(events=event_streams(max_events=200),
           num_shards=st.sampled_from([1, 2, 4]))
    def test_shard_filter_equivalence(self, events, num_shards):
        # Per shard, both kernels agree; across shards, the union of the
        # reports equals the unsharded report's racy-address set.
        whole, _ = assert_kernels_agree(events, "hb")
        union = set()
        for shard_id in range(num_shards):
            np_side, _ = assert_kernels_agree(
                events, "hb", shard=(shard_id, num_shards, 2))
            union |= set(np_side.report.addresses)
        assert union == set(whole.report.addresses)

    def test_kernel_swallows_private_runs(self):
        # A sanity check that the kernel actually engages: after the first
        # batch assigns thread slots, long thread-private runs must be
        # absorbed before the slow loop.
        events = [mem(0, 0x100, 1, True) for _ in range(512)] \
            + [mem(1, 0x200, 2, False) for _ in range(512)]
        numpy_side, _ = assert_kernels_agree(events * 2, "fasttrack",
                                             batch_size=1024)
        kernel = numpy_side._kernel
        assert kernel.swallowed_events > 900

    def test_epoch_collision_at_segment_edges(self):
        # Release ticks between batches: thread 0's clock advances at a
        # batch boundary, so the same-slot epoch seen by the next batch's
        # pre-filter differs from the shadow by exactly one tick.  Any
        # off-by-one in the release-interval bookkeeping shows up here.
        events = []
        for round_no in range(6):
            events.extend(mem(0, 0x10, 1, True) for _ in range(5))
            events.append(sync(0, SyncKind.UNLOCK, 1, 2 * round_no + 1))
            events.extend(mem(0, 0x10, 2, False) for _ in range(5))
            events.append(sync(1, SyncKind.LOCK, 1, 2 * round_no + 2))
        for batch in (5, 6, 11, None):
            assert_kernels_agree(events, "fasttrack", batch_size=batch)
            assert_kernels_agree(events, "hb", batch_size=batch)

    def test_shard_mask_block_boundaries(self):
        # Addresses straddling block edges: with block_shift=6, addresses
        # 63 and 64 are different blocks; an off-by-one in the vectorized
        # (addr >> shift) % num_shards mask silently drops or duplicates
        # the boundary access.
        edge_addrs = [0, 1, 63, 64, 65, 127, 128, 191, 192, 255]
        events = []
        for i, addr in enumerate(edge_addrs * 8):
            events.append(mem(i % 3, addr, addr & 0x3F, i % 2 == 0))
        for num_shards in (2, 3, 4):
            per_shard_counts = []
            for shard_id in range(num_shards):
                np_side, _ = assert_kernels_agree(
                    events, "hb", shard=(shard_id, num_shards, 6))
                per_shard_counts.append(np_side.events_processed)
            # Every memory event lands on exactly one shard.
            assert sum(per_shard_counts) == len(events)

    def test_mixed_kernel_and_fallback_sequences(self):
        # Alternating sharded and unsharded feeds on one detector forces
        # the kernel's shadow-dirty fallback path between batches.
        events = [mem(t, a, a + 1, w) for t in (0, 1)
                  for a in (0x10, 0x40, 0x80) for w in (True, False)] * 10
        numpy_side = FlatDetector("hb", use_numpy=True)
        pure_side = FlatDetector("hb", use_numpy=False)
        for start in range(0, len(events), 17):
            cols = columns_from_events(events[start:start + 17])
            if (start // 17) % 2:
                numpy_side.feed_batch(cols, shard_id=0, num_shards=1,
                                      block_shift=6)
                pure_side.feed_batch(cols, shard_id=0, num_shards=1,
                                     block_shift=6)
            else:
                numpy_side.feed_batch(cols)
                pure_side.feed_batch(cols)
        assert report_key(numpy_side) == report_key(pure_side)
        assert numpy_side.events_processed == pure_side.events_processed

    def test_use_numpy_flag_validation(self):
        assert FlatDetector("hb", use_numpy=True).kernel == "numpy"
        assert FlatDetector("hb", use_numpy=False).kernel == "pure"
        assert FlatDetector("hb").kernel == "numpy"
