"""The persistent artifact cache: keying, corruption, bypass, atomicity."""

from __future__ import annotations

import glob
import os
import pickle
import threading

import pytest

from repro.experiments import engine
from repro.runtime.cost import DEFAULT_COST_MODEL

#: A deliberately tiny cell so each (re)compute costs milliseconds.
CELL = engine.Cell(kind="detection", benchmark="firefox-start", seed=1,
                   scale=0.02, samplers=("TL-Ad", "Full"), switch_prob=0.05)


@pytest.fixture
def cache(tmp_path):
    previous = engine.configure(cache_dir=str(tmp_path))
    yield str(tmp_path)
    engine.configure(**previous)


def _cache_files(directory):
    return sorted(glob.glob(os.path.join(directory, "*.pkl")))


class TestCacheKey:
    def test_stable_for_identical_parameters(self):
        assert engine.cell_fingerprint(CELL) == engine.cell_fingerprint(CELL)

    @pytest.mark.parametrize("changed", [
        dict(scale=0.03),
        dict(seed=2),
        dict(samplers=("TL-Ad",)),
        dict(samplers=("TL-Fx", "Full")),
        dict(benchmark="apache-1"),
        dict(switch_prob=0.1),
        dict(kind="overhead", samplers=(), switch_prob=0.0),
    ])
    def test_changes_with_cell_parameters(self, changed):
        import dataclasses
        other = dataclasses.replace(CELL, **changed)
        assert engine.cell_fingerprint(other) != engine.cell_fingerprint(CELL)

    def test_changes_with_cost_model_constants(self):
        retuned = DEFAULT_COST_MODEL.with_overrides(log_memory=113)
        assert engine.cell_fingerprint(CELL, retuned) \
            != engine.cell_fingerprint(CELL, DEFAULT_COST_MODEL)

    def test_sampler_order_is_significant(self):
        import dataclasses
        swapped = dataclasses.replace(CELL, samplers=("Full", "TL-Ad"))
        assert engine.cell_fingerprint(swapped) \
            != engine.cell_fingerprint(CELL)


class TestHitMissBehavior:
    def test_second_run_is_a_hit(self, cache):
        stats = engine.EngineStats()
        first = engine.run_cells([CELL], stats=stats)
        assert (stats.computed, stats.cache_hits) == (1, 0)

        stats = engine.EngineStats()
        second = engine.run_cells([CELL], stats=stats)
        assert (stats.computed, stats.cache_hits) == (0, 1)
        assert second == first

    def test_duplicate_cells_computed_once(self, cache):
        stats = engine.EngineStats()
        engine.run_cells([CELL, CELL, CELL], use_cache=False, stats=stats)
        assert stats.total == 1
        assert stats.computed == 1

    def test_no_cache_bypasses_reads_and_writes(self, cache):
        engine.run_cells([CELL])  # populate
        assert len(_cache_files(cache)) == 1

        stats = engine.EngineStats()
        engine.run_cells([CELL], use_cache=False, stats=stats)
        assert stats.computed == 1  # recomputed despite the valid entry
        assert len(_cache_files(cache)) == 1  # and nothing new written


class TestCorruptEntries:
    @pytest.mark.parametrize("corruption", [
        b"",                       # truncated to nothing
        b"not a pickle at all",    # garbage bytes
        pickle.dumps(object)[:5],  # torn pickle
    ])
    def test_corrupt_file_falls_back_to_recompute(self, cache, corruption):
        reference = engine.run_cells([CELL])[CELL]
        path, = _cache_files(cache)
        with open(path, "wb") as handle:
            handle.write(corruption)

        stats = engine.EngineStats()
        result = engine.run_cells([CELL], stats=stats)[CELL]
        assert stats.computed == 1  # the corrupt entry was not trusted
        assert result == reference

        # ... and the entry was healed for the next reader.
        stats = engine.EngineStats()
        engine.run_cells([CELL], stats=stats)
        assert stats.cache_hits == 1

    def test_unreadable_cache_dir_degrades_gracefully(self, tmp_path):
        previous = engine.configure(
            cache_dir=str(tmp_path / "file-in-the-way"))
        try:
            # A *file* where the cache dir should be: writes fail, reads
            # miss, results still come back.
            (tmp_path / "file-in-the-way").write_text("occupied")
            result = engine.run_cells([CELL])[CELL]
            assert result.benchmark == "firefox-start"
        finally:
            engine.configure(**previous)


class TestAtomicWrites:
    def test_concurrent_writers_never_tear(self, cache):
        result = engine.run_cells([CELL], use_cache=False)[CELL]
        path = os.path.join(cache,
                            engine.cell_fingerprint(CELL) + ".pkl")

        barrier = threading.Barrier(8)

        def write():
            barrier.wait()
            for _ in range(25):
                engine._store_result(path, result)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Whatever interleaving happened, the entry is complete and valid.
        stats = engine.EngineStats()
        assert engine.run_cells([CELL], stats=stats)[CELL] == result
        assert stats.cache_hits == 1
        # No temp-file litter left behind.
        assert glob.glob(os.path.join(cache, "*.tmp")) == []

    def test_write_goes_through_rename(self, cache, monkeypatch):
        replaced = []
        real_replace = os.replace

        def spying_replace(src, dst):
            replaced.append((src, dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        engine.run_cells([CELL])
        assert any(dst.endswith(".pkl") for _, dst in replaced), \
            "cache writes must use the temp-file + rename pattern"
