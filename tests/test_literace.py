"""End-to-end tests for the LiteRace facade."""

import pytest

from repro.core.literace import LiteRace, run_baseline, run_marked
from repro.core.samplers import SAMPLER_ORDER, make_sampler
from repro.workloads.synthetic import random_program, two_thread_racer


class TestRun:
    def test_finds_the_figure1_race(self, racer_program):
        result = LiteRace(sampler="TL-Ad", seed=1).run(racer_program)
        planted = {k for p in racer_program.planted_races for k in p.keys}
        assert result.report.static_races == planted

    def test_no_race_when_locked(self, locked_program):
        result = LiteRace(sampler="Full", seed=1).run(locked_program)
        assert result.report.num_static == 0

    def test_result_fields_consistent(self, racer_program):
        result = LiteRace(sampler="Full", seed=1).run(racer_program)
        assert result.log_bytes > 0
        assert result.slowdown >= 1.0
        assert result.merge_inconsistencies == 0
        assert 0.0 <= result.effective_sampling_rate <= 1.0
        assert result.log_mb_per_second >= 0.0

    def test_all_samplers_accepted_by_name(self, racer_program):
        for name in SAMPLER_ORDER + ("Full", "Never"):
            result = LiteRace(sampler=name, seed=1).run(racer_program)
            assert result.run.threads_created == 3

    def test_sampler_object_accepted(self, racer_program):
        sampler = make_sampler("TL-Ad")
        result = LiteRace(sampler=sampler, seed=1).run(racer_program)
        assert result.run.instrumented_calls > 0

    def test_same_seed_reproduces_everything(self):
        program = random_program(3)

        def once():
            result = LiteRace(sampler="TL-Ad", seed=9).run(program)
            return (result.run.clock, len(result.log),
                    sorted(result.report.occurrences.items()))

        assert once() == once()

    def test_different_seeds_differ(self):
        program = random_program(3)
        a = LiteRace(sampler="TL-Ad", seed=1).run(program)
        b = LiteRace(sampler="TL-Ad", seed=2).run(program)
        assert a.run.steps != b.run.steps or a.log.events != b.log.events


class TestInstrumentFacade:
    def test_instrument_returns_versions(self, racer_program):
        rewritten = LiteRace().instrument(racer_program)
        assert rewritten.num_dispatch_sites == racer_program.num_functions


class TestBaselineAndMarked:
    def test_baseline_has_no_instrumentation(self, racer_program):
        result = run_baseline(racer_program, seed=1)
        assert result.instrumentation_cycles == 0
        assert result.slowdown == 1.0

    def test_marked_run_logs_everything(self, racer_program):
        marked = run_marked(racer_program, ["TL-Ad", "Rnd10"], seed=1)
        assert marked.log.memory_count == marked.run.memory_ops

    def test_marked_sampler_log_extraction(self, racer_program):
        marked = run_marked(racer_program, ["Full"], seed=1)
        sub = marked.sampler_log("Full")
        assert sub.memory_count == marked.log.memory_count
        assert marked.sampler_memory_count("Full") == marked.log.memory_count

    def test_invalid_sampler_name_raises(self, racer_program):
        with pytest.raises(ValueError):
            LiteRace(sampler="NoSuch").run(racer_program)
