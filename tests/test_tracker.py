"""Tests for the hashed-counter timestamp tracker (§4.2)."""

import pytest

from repro.core.tracker import NUM_COUNTERS, TimestampTracker


VAR = ("mutex", 0x1000)
OTHER = ("mutex", 0x2000)


class TestAtomicMode:
    def test_timestamps_strictly_increase_per_var(self):
        tracker = TimestampTracker()
        stamps = [tracker.stamp(VAR) for _ in range(100)]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 100

    def test_atomic_ops_also_monotone(self):
        tracker = TimestampTracker()
        stamps = [tracker.stamp(("atomic", 5), may_tear=True)
                  for _ in range(100)]
        assert stamps == sorted(stamps)

    def test_counter_index_stable_across_instances(self):
        a = TimestampTracker().counter_index(VAR)
        b = TimestampTracker().counter_index(VAR)
        assert a == b

    def test_counter_index_in_range(self):
        tracker = TimestampTracker()
        for i in range(200):
            assert 0 <= tracker.counter_index(("mutex", i)) < NUM_COUNTERS

    def test_vars_spread_over_counters(self):
        tracker = TimestampTracker()
        indexes = {tracker.counter_index(("mutex", i)) for i in range(500)}
        assert len(indexes) > NUM_COUNTERS // 2

    def test_single_counter_mode(self):
        tracker = TimestampTracker(num_counters=1)
        a = tracker.stamp(VAR)
        b = tracker.stamp(OTHER)
        assert b == a + 1  # everything shares one counter

    def test_stamps_issued_counter(self):
        tracker = TimestampTracker()
        for _ in range(7):
            tracker.stamp(VAR)
        assert tracker.stamps_issued == 7


class TestTornMode:
    def test_inversions_happen_only_for_tearable_ops(self):
        tracker = TimestampTracker(atomic=False, race_prob=1.0, seed=1)
        a = [tracker.stamp(VAR) for _ in range(50)]
        assert a == sorted(a)  # plain sync ops still fine
        assert tracker.inversions == 0

    def test_torn_stamps_invert_order(self):
        tracker = TimestampTracker(num_counters=1, atomic=False,
                                   race_prob=1.0, seed=1)
        first = tracker.stamp(("atomic", 1), may_tear=True)
        second = tracker.stamp(("atomic", 1), may_tear=True)
        assert second < first  # the inversion
        assert tracker.inversions >= 1

    def test_atomic_flag_suppresses_tearing(self):
        tracker = TimestampTracker(atomic=True, race_prob=1.0, seed=1)
        stamps = [tracker.stamp(("atomic", 1), may_tear=True)
                  for _ in range(50)]
        assert stamps == sorted(stamps)
        assert tracker.inversions == 0

    def test_torn_mode_is_seeded(self):
        def run(seed):
            t = TimestampTracker(atomic=False, race_prob=0.5, seed=seed)
            return [t.stamp(("atomic", 1), may_tear=True) for _ in range(50)]

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestValidation:
    def test_counter_count_positive(self):
        with pytest.raises(ValueError):
            TimestampTracker(num_counters=0)

    def test_race_prob_range(self):
        with pytest.raises(ValueError):
            TimestampTracker(race_prob=2.0)
