"""Tests for the in-memory event log and its wire encoding."""

import pytest

from repro.eventlog.encode import (
    MEMORY_EVENT_BYTES,
    SYNC_EVENT_BYTES,
    decode_log,
    encode_log,
    encoded_size,
)
from repro.eventlog.events import MemoryEvent, SyncEvent, SyncKind
from repro.eventlog.log import EventLog


def sample_log():
    log = EventLog()
    log.append_sync(0, SyncKind.THREAD_START, ("thread", 0), 1, -1)
    log.append_memory(0, 0x1000, 5, True, mask=0b101)
    log.append_memory(1, 0x2000, 6, False, mask=0b010)
    log.append_sync(1, SyncKind.LOCK, ("mutex", 0x3000), 2, 7)
    log.append_sync(1, SyncKind.ALLOC_PAGE, ("page", 42), 3, 8)
    return log


class TestEventLog:
    def test_counts(self):
        log = sample_log()
        assert log.memory_count == 2
        assert log.sync_count == 3
        assert len(log) == 5

    def test_per_thread_preserves_order(self):
        streams = sample_log().per_thread()
        assert [type(e).__name__ for e in streams[1]] == [
            "MemoryEvent", "SyncEvent", "SyncEvent"]

    def test_mask_counts(self):
        log = sample_log()
        assert log.memory_logged_by(0) == 1
        assert log.memory_logged_by(1) == 1
        assert log.memory_logged_by(2) == 1
        assert log.memory_logged_by(3) == 0

    def test_filtered_keeps_all_sync(self):
        sub = sample_log().filtered(0)
        assert sub.sync_count == 3
        assert sub.memory_count == 1

    def test_filtered_memory_selection(self):
        sub = sample_log().filtered(1)
        addrs = [e.addr for e in sub.events if isinstance(e, MemoryEvent)]
        assert addrs == [0x2000]

    def test_sync_vars_in_first_seen_order(self):
        vars_seen = sample_log().sync_vars()
        assert vars_seen[0] == ("thread", 0)
        assert ("page", 42) in vars_seen

    def test_event_properties(self):
        acquire = SyncEvent(0, SyncKind.LOCK, ("mutex", 1), 1, 0)
        release = SyncEvent(0, SyncKind.UNLOCK, ("mutex", 1), 2, 0)
        both = SyncEvent(0, SyncKind.ATOMIC, ("atomic", 1), 3, 0)
        assert acquire.is_acquire and not acquire.is_release
        assert release.is_release and not release.is_acquire
        assert both.is_acquire and both.is_release


class TestEncoding:
    def test_round_trip_per_thread_streams(self):
        log = sample_log()
        decoded = decode_log(encode_log(log))
        original = log.per_thread()
        restored = decoded.per_thread()
        assert set(original) == set(restored)
        for tid in original:
            for a, b in zip(original[tid], restored[tid]):
                if isinstance(a, MemoryEvent):
                    assert (a.tid, a.addr, a.pc, a.is_write) == \
                        (b.tid, b.addr, b.pc, b.is_write)
                else:
                    assert a == b

    def test_encoded_size_matches_actual_bytes(self):
        log = sample_log()
        assert encoded_size(log) == len(encode_log(log))

    def test_event_sizes_documented(self):
        log = EventLog()
        base = encoded_size(log)
        log.append_memory(0, 1, 2, True)
        with_mem = encoded_size(log)
        log.append_sync(0, SyncKind.LOCK, ("mutex", 1), 1, 2)
        with_sync = encoded_size(log)
        # First event also pays the thread-section header.
        assert with_sync - with_mem == SYNC_EVENT_BYTES
        assert with_mem - base > MEMORY_EVENT_BYTES

    def test_negative_pc_round_trips(self):
        log = EventLog()
        log.append_sync(0, SyncKind.THREAD_EXIT, ("thread", 0), 9, -1)
        decoded = decode_log(encode_log(log))
        assert decoded.events[0].pc == -1

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            decode_log(b"XXXX" + b"\x00" * 10)

    def test_trailing_garbage_rejected(self):
        data = encode_log(sample_log()) + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            decode_log(data)

    def test_masks_are_not_on_the_wire(self):
        # Masks are an in-memory experiment artifact; decoding yields the
        # default mask.
        log = EventLog()
        log.append_memory(0, 1, 2, True, mask=0b1010)
        decoded = decode_log(encode_log(log))
        assert decoded.events[0].mask == 1

    def test_all_sync_kinds_encode(self):
        log = EventLog()
        domains = {
            SyncKind.LOCK: "mutex", SyncKind.UNLOCK: "mutex",
            SyncKind.WAIT: "event", SyncKind.NOTIFY: "event",
            SyncKind.FORK: "thread", SyncKind.JOIN: "thread",
            SyncKind.THREAD_START: "thread", SyncKind.THREAD_EXIT: "thread",
            SyncKind.ATOMIC: "atomic",
            SyncKind.ALLOC_PAGE: "page", SyncKind.FREE_PAGE: "page",
        }
        for index, (kind, domain) in enumerate(domains.items()):
            log.append_sync(0, kind, (domain, index), index, index)
        decoded = decode_log(encode_log(log))
        assert [e.kind for e in decoded.events] == list(domains)


class TestStore:
    def test_save_and_load(self, tmp_path):
        from repro.eventlog.store import load_log, save_log

        log = sample_log()
        path = tmp_path / "log.ltrc"
        written = save_log(log, path)
        assert written == path.stat().st_size
        loaded = load_log(path)
        assert loaded.sync_count == log.sync_count
        assert loaded.memory_count == log.memory_count

    def test_save_is_atomic(self, tmp_path):
        from repro.eventlog.store import save_log

        path = tmp_path / "log.ltrc"
        save_log(sample_log(), path)
        assert not (tmp_path / "log.ltrc.tmp").exists()

    def test_v2_save_load_round_trip(self, tmp_path):
        from repro.eventlog.store import load_log, save_log

        log = sample_log()
        path = tmp_path / "log.ltrc"
        written = save_log(log, path, version=2, compress=True)
        assert written == path.stat().st_size
        loaded = load_log(path)
        assert loaded.sync_count == log.sync_count
        assert loaded.memory_count == log.memory_count

    def test_failed_encode_leaves_no_temp_file(self, tmp_path):
        from repro.eventlog.store import save_log

        log = EventLog()
        log.append_sync(0, SyncKind.LOCK, ("no-such-domain", 1), 1, 0)
        path = tmp_path / "log.ltrc"
        with pytest.raises(KeyError):
            save_log(log, path)
        assert not path.exists()
        assert not (tmp_path / "log.ltrc.tmp").exists()

    def test_failed_rename_leaves_no_temp_file(self, tmp_path):
        from repro.eventlog.store import save_log

        # The destination is a non-empty directory, so the final
        # os.replace must fail after the temp file was fully written.
        path = tmp_path / "log.ltrc"
        path.mkdir()
        (path / "occupied").write_text("x")
        with pytest.raises(OSError):
            save_log(sample_log(), path)
        assert not (tmp_path / "log.ltrc.tmp").exists()

    def test_streaming_writer_failure_leaves_no_temp_file(self, tmp_path):
        from repro.eventlog.writer import StreamingLogWriter

        path = tmp_path / "log.ltrc"
        path.mkdir()
        (path / "occupied").write_text("x")
        writer = StreamingLogWriter(path)
        writer.feed(sample_log().events[0])
        with pytest.raises(OSError):
            writer.close()
        assert not (tmp_path / "log.ltrc.tmp").exists()
