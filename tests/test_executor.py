"""Tests for the TIR interpreter: semantics, blocking, accounting."""

import pytest

from repro.eventlog.events import SyncKind
from repro.layout import HEAP_BASE, tls_base_for
from repro.runtime.cost import CostModel
from repro.runtime.executor import (
    DeadlockError,
    ExecutionLimitError,
    Executor,
    Harness,
)
from repro.runtime.scheduler import RandomInterleaver, RoundRobinScheduler
from repro.runtime.sync import SyncError
from repro.tir.addr import HeapSlot, Indexed, Param, Tls
from repro.tir.builder import ProgramBuilder


class RecordingHarness(Harness):
    """Logs every hook invocation; always picks the instrumented copy."""

    def __init__(self, instrumented=True):
        self.instrumented = instrumented
        self.entries = []
        self.exits = 0
        self.memory = []
        self.sync = []

    def enter_function(self, tid, func_name):
        self.entries.append((tid, func_name))
        return self.instrumented, 8

    def exit_function(self, tid):
        self.exits += 1

    def memory_event(self, tid, addr, pc, is_write):
        self.memory.append((tid, addr, pc, is_write))
        return 5

    def sync_event(self, tid, kind, var, pc, active_threads):
        self.sync.append((tid, kind, var))
        return 3


def run_program(build, harness=None, seed=0, scheduler=None, **kwargs):
    b = ProgramBuilder("t")
    build(b)
    program = b.build(entry="main")
    executor = Executor(program,
                        scheduler=scheduler or RandomInterleaver(seed),
                        harness=harness, **kwargs)
    return executor, executor.run()


class TestBasics:
    def test_counts_memory_and_compute(self):
        def build(b):
            with b.function("main") as f:
                f.read(b.global_addr("x"))
                f.write(b.global_addr("x"))
                f.compute(10)

        _, result = run_program(build)
        assert result.memory_ops == 2
        assert result.nonstack_memory_ops == 2
        assert result.baseline_cycles >= 12

    def test_tls_not_counted_as_nonstack(self):
        def build(b):
            with b.function("main") as f:
                f.read(Tls(0))
                f.write(b.global_addr("x"))

        _, result = run_program(build)
        assert result.memory_ops == 2
        assert result.nonstack_memory_ops == 1

    def test_loop_repeats_body(self):
        def build(b):
            with b.function("main") as f:
                with f.loop(7):
                    f.read(b.global_addr("x"))

        _, result = run_program(build)
        assert result.memory_ops == 7

    def test_loop_count_from_param(self):
        def build(b):
            with b.function("child", params=1) as f:
                with f.loop(Param(0)):
                    f.read(b.global_addr("x"))
            with b.function("main") as f:
                f.call("child", 5)

        _, result = run_program(build)
        assert result.memory_ops == 5

    def test_indexed_addresses_walk_array(self):
        seen = RecordingHarness()

        def build(b):
            base = b.global_array("arr", 4, 8)
            b._base = base
            with b.function("main") as f:
                with f.loop(4):
                    f.write(Indexed(base, 8, 0))

        _, result = run_program(build, harness=seen)
        addrs = [a for (_, a, _, _) in seen.memory]
        assert addrs == [addrs[0] + 8 * i for i in range(4)]

    def test_io_counts_as_time_not_instructions(self):
        def build(b):
            with b.function("main") as f:
                f.io(1234)

        _, result = run_program(build)
        assert result.io_cycles == 1234
        assert result.clock >= 1234
        assert result.memory_ops == 0

    def test_io_duration_from_param(self):
        def build(b):
            with b.function("child", params=1) as f:
                f.io(Param(0))
            with b.function("main") as f:
                f.call("child", 777)

        _, result = run_program(build)
        assert result.io_cycles == 777

    def test_max_steps_guard(self):
        def build(b):
            with b.function("main") as f:
                with f.loop(10_000):
                    f.compute(1)

        with pytest.raises(ExecutionLimitError):
            run_program(build, max_steps=100)


class TestThreads:
    def test_fork_join_runs_children(self):
        def build(b):
            x = b.global_addr("x")
            with b.function("child") as f:
                f.write(x)
            with b.function("main", slots=3) as f:
                for t in range(3):
                    f.fork("child", tid_slot=t)
                for t in range(3):
                    f.join(t)

        _, result = run_program(build)
        assert result.threads_created == 4
        assert result.memory_ops == 3

    def test_fork_args_reach_child(self):
        seen = RecordingHarness()

        def build(b):
            with b.function("child", params=1) as f:
                f.write(Param(0))
            with b.function("main", slots=1) as f:
                f.fork("child", 0x5555, tid_slot=0)
                f.join(0)

        run_program(build, harness=seen)
        assert (1, 0x5555, seen.memory[0][2], True) in seen.memory

    def test_tls_is_per_thread(self):
        seen = RecordingHarness()

        def build(b):
            with b.function("child") as f:
                f.write(Tls(0))
            with b.function("main", slots=2) as f:
                f.fork("child", tid_slot=0)
                f.fork("child", tid_slot=1)
                f.join(0)
                f.join(1)

        run_program(build, harness=seen)
        tls_addrs = {a for (_, a, _, _) in seen.memory}
        assert tls_addrs == {tls_base_for(1), tls_base_for(2)}

    def test_join_after_child_finished_is_fine(self):
        def build(b):
            with b.function("child") as f:
                f.compute(1)
            with b.function("main", slots=1) as f:
                f.fork("child", tid_slot=0)
                with f.loop(50):
                    f.compute(5)
                f.join(0)

        _, result = run_program(build)
        assert result.threads_created == 2

    def test_deadlock_detected(self):
        def build(b):
            lock = b.global_addr("l")
            with b.function("main") as f:
                f.lock(lock)
                f.lock(b.global_addr("l2"))
                # child never unlocks l; main can't be here — simpler:
            # a thread waiting on an event nobody signals
        def build2(b):
            ev = b.global_addr("ev")
            with b.function("main") as f:
                f.wait(ev)

        with pytest.raises(DeadlockError):
            run_program(build2)

    def test_unlock_of_unheld_mutex_raises(self):
        def build(b):
            with b.function("main") as f:
                f.unlock(b.global_addr("l"))

        with pytest.raises(SyncError):
            run_program(build)


class TestMutexSemantics:
    def test_critical_sections_exclude(self):
        # With exclusion, the interleaving inside the critical section is
        # irrelevant; the run completes without SyncError from handoff.
        def build(b):
            lock = b.global_addr("l")
            x = b.global_addr("x")
            with b.function("child") as f:
                with f.loop(20):
                    with f.critical(lock):
                        f.read(x)
                        f.write(x)
            with b.function("main", slots=3) as f:
                for t in range(3):
                    f.fork("child", tid_slot=t)
                for t in range(3):
                    f.join(t)

        _, result = run_program(build, seed=5)
        assert result.sync_ops >= 120  # 20 iterations * 2 * 3 threads

    def test_cas_lock_also_excludes(self):
        seen = RecordingHarness()

        def build(b):
            lock = b.global_addr("l")
            with b.function("child") as f:
                f.lock(lock, via_cas=True)
                f.compute(3)
                f.unlock(lock, via_cas=True)
            with b.function("main", slots=2) as f:
                f.fork("child", tid_slot=0)
                f.fork("child", tid_slot=1)
                f.join(0)
                f.join(1)

        run_program(build, harness=seen, seed=3)
        kinds = {k for (_, k, _) in seen.sync}
        assert SyncKind.ATOMIC in kinds
        assert SyncKind.LOCK not in kinds  # profiler sees only raw CAS


class TestEventsAndHeap:
    def test_wait_notify_orders(self):
        def build(b):
            ev = b.global_addr("ev")
            with b.function("producer") as f:
                f.compute(5)
                f.notify(ev)
            with b.function("consumer") as f:
                f.wait(ev)
                f.compute(1)
            with b.function("main", slots=2) as f:
                f.fork("consumer", tid_slot=0)
                f.fork("producer", tid_slot=1)
                f.join(0)
                f.join(1)

        _, result = run_program(build, seed=9)
        assert result.threads_created == 3

    def test_alloc_free_emit_page_sync(self):
        seen = RecordingHarness()

        def build(b):
            with b.function("main", slots=1) as f:
                f.alloc(64, 0)
                f.write(HeapSlot(0))
                f.free(0)

        run_program(build, harness=seen)
        kinds = [k for (_, k, _) in seen.sync]
        assert SyncKind.ALLOC_PAGE in kinds
        assert SyncKind.FREE_PAGE in kinds
        heap_writes = [a for (_, a, _, w) in seen.memory if w]
        assert heap_writes == [HEAP_BASE]

    def test_thread_lifecycle_sync_events(self):
        seen = RecordingHarness()

        def build(b):
            with b.function("child") as f:
                f.compute(1)
            with b.function("main", slots=1) as f:
                f.fork("child", tid_slot=0)
                f.join(0)

        run_program(build, harness=seen)
        kinds = [k for (_, k, _) in seen.sync]
        for expected in (SyncKind.THREAD_START, SyncKind.FORK,
                         SyncKind.JOIN, SyncKind.THREAD_EXIT):
            assert expected in kinds


class TestHarnessIntegration:
    def test_dispatch_called_per_function_entry(self):
        seen = RecordingHarness()

        def build(b):
            with b.function("leaf") as f:
                f.compute(1)
            with b.function("main") as f:
                with f.loop(5):
                    f.call("leaf")

        run_program(build, harness=seen)
        assert seen.entries.count((0, "leaf")) == 5
        assert seen.exits == len(seen.entries)

    def test_uninstrumented_copy_skips_memory_logging(self):
        seen = RecordingHarness(instrumented=False)

        def build(b):
            with b.function("main") as f:
                f.read(b.global_addr("x"))

        _, result = run_program(build, harness=seen)
        assert seen.memory == []
        assert result.sampled_memory_ops == 0
        assert result.memory_ops == 1

    def test_cost_buckets_accumulate(self):
        seen = RecordingHarness()

        def build(b):
            with b.function("main") as f:
                f.read(b.global_addr("x"))
                f.lock(b.global_addr("l"))
                f.unlock(b.global_addr("l"))

        _, result = run_program(build, harness=seen)
        assert result.dispatch_cycles == 8      # one entry (main)
        assert result.memory_log_cycles == 5    # one read
        # lock + unlock + thread_start/exit sync hooks
        assert result.sync_log_cycles == 3 * len(seen.sync)

    def test_slowdown_vs_baseline(self):
        def build(b):
            with b.function("main") as f:
                with f.loop(100):
                    f.read(b.global_addr("x"))

        _, bare = run_program(build)
        _, instrumented = run_program(build, harness=RecordingHarness())
        assert bare.slowdown == 1.0
        assert instrumented.slowdown > 1.0
        assert instrumented.baseline_cycles == bare.baseline_cycles


class TestDeterminism:
    def test_same_seed_identical_run(self, racer_program):
        def execute(seed):
            h = RecordingHarness()
            Executor(racer_program, scheduler=RandomInterleaver(seed),
                     harness=h).run()
            return h.memory, h.sync

        assert execute(11) == execute(11)

    def test_round_robin_also_works(self, racer_program):
        result = Executor(racer_program,
                          scheduler=RoundRobinScheduler(quantum=3)).run()
        assert result.threads_created == 3


class TestStickyEvents:
    def test_manual_reset_event_admits_all_waiters(self):
        def build(b):
            ev = b.global_addr("ev")
            with b.function("waiter") as f:
                f.wait(ev, consume=False)
                f.compute(1)
            with b.function("main", slots=3) as f:
                for t in range(3):
                    f.fork("waiter", tid_slot=t)
                f.compute(10)
                f.notify(ev)
                for t in range(3):
                    f.join(t)

        _, result = run_program(build, seed=3)
        assert result.threads_created == 4

    def test_signal_before_wait_passes_immediately(self):
        def build(b):
            ev = b.global_addr("ev")
            with b.function("main") as f:
                f.notify(ev)
                f.wait(ev, consume=False)
                f.wait(ev, consume=False)  # sticky: still signaled

        _, result = run_program(build)
        assert result.sync_ops >= 3


class TestContendedCasLock:
    def test_mutual_exclusion_under_contention(self):
        def build(b):
            lock = b.global_addr("lock")
            with b.function("child") as f:
                with f.loop(30):
                    f.lock(lock, via_cas=True)
                    f.compute(2)
                    f.unlock(lock, via_cas=True)
            with b.function("main", slots=4) as f:
                for t in range(4):
                    f.fork("child", tid_slot=t)
                for t in range(4):
                    f.join(t)

        _, result = run_program(build, seed=8)
        # 4 threads * 30 iterations * 2 CAS ops, plus lifecycle events
        assert result.sync_ops >= 240


class TestNestedLoopAddressing:
    def test_three_level_nesting(self):
        seen = RecordingHarness()

        def build(b):
            base = b.global_array("grid", 64, 1)
            with b.function("main") as f:
                with f.loop(2):
                    with f.loop(2):
                        with f.loop(2):
                            f.write(Indexed(
                                Indexed(Indexed(base, 4, 2), 2, 1), 1, 0))

        run_program(build, harness=seen)
        offsets = sorted(a - seen.memory[0][1] for (_, a, _, _)
                         in seen.memory)
        assert offsets == [0, 1, 2, 3, 4, 5, 6, 7]
