"""Tests for the static race-freedom analysis (:mod:`repro.staticpass`).

Unit tests pin down each sub-analysis (thread-escape, must-lockset,
read-only sharing) on purpose-built programs; the end-to-end tests assert
the soundness contract on every bundled workload: a planted race is never
classified safe, and a Full-logging run with pruning on reports exactly
the races the un-pruned oracle reports.
"""

import pytest

from repro.core.instrument import instrument
from repro.core.literace import LiteRace
from repro.staticpass import Verdict, analyze
from repro.tir.addr import HeapSlot, Param, Tls
from repro.tir.builder import ProgramBuilder
from repro.workloads.patterns import RacePlan, RacyHelper
from repro import workloads


def two_workers(b, worker="worker", args=((), ())):
    """Emit a main that forks ``worker`` once per args tuple and joins."""
    with b.function("main", slots=len(args)) as f:
        for slot, a in enumerate(args):
            f.fork(worker, *a, tid_slot=slot)
        for slot in range(len(args)):
            f.join(slot)
    return b.build(entry="main")


class TestEscape:
    def test_tls_accesses_are_thread_local(self):
        b = ProgramBuilder("tls")
        with b.function("worker") as f:
            r = f.read(Tls(0))
            w = f.write(Tls(0))
        report = analyze(two_workers(b))
        assert report.verdicts[r.pc] == Verdict.THREAD_LOCAL
        assert report.verdicts[w.pc] == Verdict.THREAD_LOCAL

    def test_no_forks_means_everything_safe(self):
        b = ProgramBuilder("solo")
        x = b.global_addr("x")
        with b.function("main") as f:
            f.write(x)
            f.read(x)
        report = analyze(b.build(entry="main"))
        assert all(v.safe for v in report.verdicts.values())
        assert not report.candidate_pairs

    def test_shared_write_in_two_threads_may_race(self):
        b = ProgramBuilder("shared")
        x = b.global_addr("x")
        with b.function("worker") as f:
            w = f.write(x)
        report = analyze(two_workers(b))
        assert report.verdicts[w.pc] == Verdict.MAY_RACE
        assert (w.pc, w.pc) in report.candidate_pairs

    def test_fork_ordered_initialization_is_safe(self):
        # main writes the table before any fork: the FORK edge orders the
        # write before every worker read, so neither side may race.
        b = ProgramBuilder("init")
        x = b.global_addr("x")
        with b.function("worker") as f:
            r = f.read(x)
        with b.function("main", slots=2) as f:
            w = f.write(x)
            f.fork("worker", tid_slot=0)
            f.fork("worker", tid_slot=1)
            f.join(0)
            f.join(1)
        report = analyze(b.build(entry="main"))
        assert report.verdicts[w.pc].safe
        assert report.verdicts[r.pc].safe

    def test_write_between_forks_is_not_ordered(self):
        b = ProgramBuilder("mid")
        x = b.global_addr("x")
        with b.function("worker") as f:
            r = f.read(x)
        with b.function("main", slots=2) as f:
            f.fork("worker", tid_slot=0)
            w = f.write(x)  # concurrent with worker 0
            f.fork("worker", tid_slot=1)
            f.join(0)
            f.join(1)
        report = analyze(b.build(entry="main"))
        assert report.verdicts[w.pc] == Verdict.MAY_RACE
        assert report.verdicts[r.pc] == Verdict.MAY_RACE

    def test_fork_in_loop_races_against_itself(self):
        b = ProgramBuilder("pool")
        x = b.global_addr("x")
        with b.function("worker") as f:
            w = f.write(x)
        with b.function("main") as f:
            with f.loop(4):
                f.fork("worker")
        report = analyze(b.build(entry="main"))
        assert report.verdicts[w.pc] == Verdict.MAY_RACE
        assert (w.pc, w.pc) in report.candidate_pairs

    def test_fresh_heap_block_is_thread_local(self):
        b = ProgramBuilder("fresh")
        with b.function("worker", slots=1) as f:
            f.alloc(64, 0)
            w = f.write(HeapSlot(0))
            r = f.read(HeapSlot(0, 8))
            f.free(0)
        report = analyze(two_workers(b))
        assert report.verdicts[w.pc].safe
        assert report.verdicts[r.pc].safe

    def test_escaped_heap_block_may_race(self):
        b = ProgramBuilder("escaped")
        with b.function("worker", params=1) as f:
            w = f.write(Param(0))
        with b.function("main", slots=2) as f:
            f.alloc(64, 0)
            f.fork("worker", HeapSlot(0), tid_slot=0)
            f.fork("worker", HeapSlot(0), tid_slot=1)
            f.join(0)
            f.join(1)
            f.free(0)
        report = analyze(b.build(entry="main"))
        assert report.verdicts[w.pc] == Verdict.MAY_RACE


class TestLockset:
    def make_locked(self, via_cas=False):
        b = ProgramBuilder("locked")
        x = b.global_addr("x")
        lk = b.global_addr("lk")
        with b.function("worker") as f:
            f.lock(lk, via_cas=via_cas)
            r = f.read(x)
            w = f.write(x)
            f.unlock(lk, via_cas=via_cas)
        return two_workers(b), r, w

    def test_consistently_locked_update_is_lock_dominated(self):
        program, r, w = self.make_locked()
        report = analyze(program)
        assert report.verdicts[r.pc] == Verdict.LOCK_DOMINATED
        assert report.verdicts[w.pc] == Verdict.LOCK_DOMINATED

    def test_cas_built_lock_still_counts(self):
        program, r, w = self.make_locked(via_cas=True)
        report = analyze(program)
        assert report.verdicts[r.pc] == Verdict.LOCK_DOMINATED
        assert report.verdicts[w.pc] == Verdict.LOCK_DOMINATED

    def test_one_sided_locking_may_race(self):
        b = ProgramBuilder("one-sided")
        x = b.global_addr("x")
        lk = b.global_addr("lk")
        with b.function("worker") as f:
            f.lock(lk)
            w1 = f.write(x)
            f.unlock(lk)
        with b.function("rogue") as f:
            w2 = f.write(x)
        with b.function("main", slots=2) as f:
            f.fork("worker", tid_slot=0)
            f.fork("rogue", tid_slot=1)
            f.join(0)
            f.join(1)
        report = analyze(b.build(entry="main"))
        assert report.verdicts[w1.pc] == Verdict.MAY_RACE
        assert report.verdicts[w2.pc] == Verdict.MAY_RACE
        low, high = sorted((w1.pc, w2.pc))
        assert (low, high) in report.candidate_pairs

    def test_atomic_rmw_confers_no_exclusion(self):
        b = ProgramBuilder("rmw")
        x = b.global_addr("x")
        with b.function("worker") as f:
            f.atomic_rmw(x)
            w = f.write(x)
        report = analyze(two_workers(b))
        assert report.verdicts[w.pc] == Verdict.MAY_RACE

    def test_lock_per_object_relative_tokens(self):
        # Two threads update different objects through one helper; the
        # helper's param footprint covers both objects (so they *conflict*
        # statically), but lock(Param(0)) at a fixed offset from the data
        # is a common lock on every aliasing instance.
        b = ProgramBuilder("rel")
        o1 = b.global_addr("o1")
        o2 = b.global_addr("o2")
        with b.function("upd", params=1) as f:
            f.lock(Param(0))
            r = f.read(Param(0, 8))
            w = f.write(Param(0, 8))
            f.unlock(Param(0))
        with b.function("worker", params=1) as f:
            with f.loop(4):
                f.call("upd", Param(0))
        program = two_workers(b, args=((o1,), (o2,)))
        report = analyze(program)
        assert report.verdicts[r.pc] == Verdict.LOCK_DOMINATED
        assert report.verdicts[w.pc] == Verdict.LOCK_DOMINATED

    def test_unknown_release_in_callee_clears_locksets(self):
        # A callee that may release an unresolvable lock address forces the
        # analysis to drop every held token across the call — the access
        # after the call is no longer provably protected.
        b = ProgramBuilder("chaos")
        x = b.global_addr("x")
        lk = b.global_addr("lk")
        o1 = b.global_addr("o1")
        o2 = b.global_addr("o2")
        with b.function("maybe_release", params=1) as f:
            f.unlock(Param(0))
        with b.function("worker", params=1) as f:
            f.lock(lk)
            f.call("maybe_release", Param(0))
            w = f.write(x)
            f.unlock(lk)
        program = two_workers(b, args=((o1,), (o2,)))
        report = analyze(program)
        assert report.verdicts[w.pc] == Verdict.MAY_RACE

    def test_lock_inside_loop_does_not_cover_code_after_it(self):
        b = ProgramBuilder("loop-lock")
        x = b.global_addr("x")
        lk = b.global_addr("lk")
        with b.function("worker") as f:
            with f.loop(3):
                f.lock(lk)
                inner = f.write(x)
                f.unlock(lk)
            outer = f.write(x)
        report = analyze(two_workers(b))
        assert report.verdicts[inner.pc] == Verdict.MAY_RACE  # races outer
        assert report.verdicts[outer.pc] == Verdict.MAY_RACE


class TestReadOnly:
    def test_shared_reads_are_read_only(self):
        b = ProgramBuilder("table")
        t = b.global_addr("t")
        with b.function("worker") as f:
            r = f.read(t)
        report = analyze(two_workers(b))
        assert report.verdicts[r.pc] == Verdict.READ_ONLY

    def test_adding_a_writer_demotes_the_readers(self):
        b = ProgramBuilder("table")
        t = b.global_addr("t")
        with b.function("worker") as f:
            r = f.read(t)
            w = f.write(t)
        report = analyze(two_workers(b))
        assert report.verdicts[r.pc] == Verdict.MAY_RACE
        assert report.verdicts[w.pc] == Verdict.MAY_RACE


class TestReportAndPruning:
    def racy_program(self):
        b = ProgramBuilder("mix")
        x = b.global_addr("x")
        with b.function("worker") as f:
            self.racy = f.write(x)
            self.local = f.write(Tls(0))
            self.lock = f.lock(x + 64)
            f.unlock(x + 64)
        return two_workers(b)

    def test_prune_set_excludes_may_race(self):
        program = self.racy_program()
        report = analyze(program)
        prune = report.prune_set()
        assert self.racy.pc not in prune
        assert self.local.pc in prune
        assert report.num_pruned == len(prune)
        assert report.num_memory_pcs == 2

    def test_instrument_rejects_sync_pcs_in_prune_set(self):
        program = self.racy_program()
        with pytest.raises(ValueError, match="sync ops"):
            instrument(program, prune_pcs=frozenset({self.lock.pc}))

    def test_instrument_accepts_the_analysis_prune_set(self):
        program = self.racy_program()
        rewritten = instrument(program,
                               prune_pcs=analyze(program).prune_set())
        assert rewritten.num_pruned_sites == 1

    def test_render_mentions_the_essentials(self):
        report = analyze(self.racy_program())
        text = report.render()
        assert "mix" in text
        assert "candidate racy pairs" in text
        assert "prunable sites" in text

    def test_histogram_counts_every_site(self):
        report = analyze(self.racy_program())
        assert sum(report.histogram().values()) == report.num_memory_pcs


class TestEndToEnd:
    @pytest.mark.parametrize("name", workloads.race_eval_names())
    def test_planted_races_never_classified_safe(self, name):
        program = workloads.build(name, seed=1, scale=0.05)
        report = analyze(program)
        assert report.check_planted(program) == []

    def test_racy_helper_sites_never_safe(self):
        b = ProgramBuilder("helper")
        plan = RacePlan()
        helper = RacyHelper(b, plan, "h")
        with b.function("worker") as f:
            helper.call_shared(f)
        with b.function("main", slots=2) as f:
            helper.call_private(f, "warm")  # hot on private data
            f.fork("worker", tid_slot=0)
            f.fork("worker", tid_slot=1)
            f.join(0)
            f.join(1)
        program = plan.attach(b.build(entry="main"))
        report = analyze(program)
        assert report.check_planted(program) == []

    def test_pruned_full_run_reports_identical_races(self):
        program = workloads.build("apache-1", seed=1, scale=0.05)
        oracle = LiteRace(sampler="Full", seed=1).run(program)
        pruned = LiteRace(sampler="Full", seed=1,
                          static_prune=True).run(program)
        assert pruned.report.static_races == oracle.report.static_races
        assert pruned.run.pruned_memory_ops > 0
        # every executed memory op is either logged or counted as pruned
        assert (pruned.log.memory_count + pruned.run.pruned_memory_ops
                == oracle.log.memory_count)
        assert pruned.static_report is not None
        assert oracle.static_report is None

    def test_cli_staticpass_all(self):
        from repro.__main__ import main
        assert main(["staticpass", "--all", "--scale", "0.05"]) == 0

    def test_cli_staticpass_check(self):
        from repro.__main__ import main
        assert main(["staticpass", "synthetic", "--check",
                     "--scale", "0.2"]) == 0
