"""Smoke tests for the bench harness and the committed BENCH trajectory.

``make bench-smoke`` (and tier-1, via this file) runs the real harness at
tiny scale: every stream generator, both timed sides, the equivalence gate,
the server worker loop, the online flush-size sweep, and the schema
validator all execute.  Numbers from a smoke run are meaningless — only the
shape is asserted here.

The committed ``BENCH_detector.json`` at the repo root is also validated,
so a PR can't land a hand-edited or schema-drifted trajectory file.
"""

import json
import pathlib

import pytest

from repro import bench

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SMOKE_EVENTS = 2_000


@pytest.fixture(scope="module")
def smoke_entry():
    return bench.run_bench(events_per_stream=SMOKE_EVENTS, repeats=1,
                           segment_events=256)


class TestHarness:
    def test_streams_are_deterministic(self):
        for name in bench.STREAMS:
            assert bench.build_stream(name, 500) == \
                bench.build_stream(name, 500)

    def test_smoke_run_passes_schema(self, smoke_entry):
        assert bench.validate_entry(smoke_entry) == []

    def test_smoke_run_covers_every_stream(self, smoke_entry):
        assert set(smoke_entry["streams"]) == set(bench.STREAMS)
        for row in smoke_entry["streams"].values():
            assert row["events"] == SMOKE_EVENTS
            assert row["memory_events"] + row["sync_events"] == SMOKE_EVENTS
            assert row["reference_events_per_sec"] > 0
            assert row["flat_events_per_sec"] > 0

    def test_entry_records_active_kernel(self, smoke_entry):
        from repro.detector.vectorized import kernel_name
        assert smoke_entry["kernel"] == kernel_name()

    def test_server_section_populated(self, smoke_entry):
        server = smoke_entry["server"]
        assert server["segments"] > 0
        assert server["segments_per_sec"] > 0

    def test_online_sweep_covers_every_size(self, smoke_entry):
        online = smoke_entry["online"]
        assert set(online["events_per_sec"]) == \
            {str(size) for size in bench.ONLINE_SWEEP_SIZES}
        assert online["best_flush_events"] in bench.ONLINE_SWEEP_SIZES
        best = online["events_per_sec"][str(online["best_flush_events"])]
        assert best == max(online["events_per_sec"].values())

    def test_write_rejects_invalid_entry(self, tmp_path, smoke_entry):
        broken = dict(smoke_entry)
        del broken["streams"]
        with pytest.raises(ValueError):
            bench.write_bench(broken, str(tmp_path / "broken.json"))

    def test_write_and_reload(self, tmp_path, smoke_entry):
        path = tmp_path / "BENCH_detector.json"
        bench.write_bench(smoke_entry, str(path))
        reloaded = json.loads(path.read_text())
        assert bench.validate_bench(reloaded) == []
        assert len(reloaded["trajectory"]) == 1

    def test_write_appends_to_trajectory(self, tmp_path, smoke_entry):
        path = tmp_path / "BENCH_detector.json"
        bench.write_bench(smoke_entry, str(path))
        bench.write_bench(smoke_entry, str(path))
        reloaded = json.loads(path.read_text())
        assert bench.validate_bench(reloaded) == []
        assert len(reloaded["trajectory"]) == 2

    def test_write_migrates_schema1_file(self, tmp_path, smoke_entry):
        # A pre-trajectory file becomes the first entry instead of being
        # overwritten: history survives the schema bump.
        old = {
            "schema": 1,
            "bench": "detector",
            "generated": "2026-01-01",
            "config": dict(smoke_entry["config"]),
            "streams": json.loads(json.dumps(smoke_entry["streams"])),
            "geomean_speedup": 2.5,
            "server": dict(smoke_entry["server"]),
        }
        path = tmp_path / "BENCH_detector.json"
        path.write_text(json.dumps(old))
        bench.write_bench(smoke_entry, str(path))
        reloaded = json.loads(path.read_text())
        assert bench.validate_bench(reloaded) == []
        first, second = reloaded["trajectory"]
        assert first["kernel"] == "pure"
        assert first["geomean_speedup"] == 2.5
        assert "online" not in first
        assert second["geomean_speedup"] == smoke_entry["geomean_speedup"]


class TestValidator:
    def _doc(self, entry):
        return {"schema": bench.SCHEMA_VERSION, "bench": "detector",
                "trajectory": [json.loads(json.dumps(entry))]}

    def test_rejects_non_object(self):
        assert bench.validate_bench([]) != []

    def test_rejects_wrong_schema_version(self, smoke_entry):
        doc = self._doc(smoke_entry)
        doc["schema"] = 999
        assert any("schema" in p for p in bench.validate_bench(doc))

    def test_rejects_empty_trajectory(self):
        doc = {"schema": bench.SCHEMA_VERSION, "bench": "detector",
               "trajectory": []}
        assert any("trajectory" in p for p in bench.validate_bench(doc))

    def test_rejects_missing_stream_field(self, smoke_entry):
        doc = self._doc(smoke_entry)
        del doc["trajectory"][0]["streams"]["private_mixed"]["speedup"]
        assert any("speedup" in p for p in bench.validate_bench(doc))

    def test_rejects_missing_server_field(self, smoke_entry):
        doc = self._doc(smoke_entry)
        del doc["trajectory"][0]["server"]["segments_per_sec"]
        assert any("server" in p for p in bench.validate_bench(doc))

    def test_rejects_bad_kernel(self, smoke_entry):
        doc = self._doc(smoke_entry)
        doc["trajectory"][0]["kernel"] = "cython"
        assert any("kernel" in p for p in bench.validate_bench(doc))


class TestCommittedTrajectory:
    def test_bench_detector_json_exists_and_validates(self):
        path = REPO_ROOT / "BENCH_detector.json"
        assert path.exists(), "BENCH_detector.json missing at repo root"
        doc = json.loads(path.read_text())
        assert bench.validate_bench(doc) == []

    def test_committed_numbers_meet_the_bar(self):
        # The acceptance criteria: every entry keeps the PR 6 bar (>= 2x
        # over the per-event reference on every stream), and the latest
        # entry — the vectorized kernel — beats the committed 3.21x
        # geomean.  This asserts the *committed* trajectory, not this
        # machine's timing, so it is stable under CI noise.
        doc = json.loads((REPO_ROOT / "BENCH_detector.json").read_text())
        for entry in doc["trajectory"]:
            assert entry["geomean_speedup"] >= 2.0
            for name, row in entry["streams"].items():
                assert row["speedup"] >= 2.0, f"stream {name} below 2x"
        latest = doc["trajectory"][-1]
        assert latest["geomean_speedup"] > 3.21
        assert latest["kernel"] == "numpy"
